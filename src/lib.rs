#![warn(missing_docs)]

//! # B2BObjects
//!
//! A Rust reproduction of the distributed object middleware described in
//! *"Distributed Object Middleware to Support Dependable Information Sharing
//! between Organisations"* (Cook, Shrivastava, Wheater — DSN 2002).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — the middleware itself: the non-repudiable state
//!   coordination protocol, connection/disconnection protocols, the
//!   [`core::B2BObject`] trait and [`core::controller`] API.
//! * [`crypto`] — signatures, hashing, time-stamping, certificates.
//! * [`net`] — transports: in-process threaded, deterministic simulated
//!   (with fault injection and a Dolev-Yao intruder) and TCP over OS
//!   sockets ([`net::tcp`]) for crossing process and host boundaries.
//! * [`evidence`] — non-repudiation logs, evidence verification and the
//!   offline arbiter for dispute resolution.
//! * [`apps`] — proof-of-concept applications: Tic-Tac-Toe, order
//!   processing, a distributed auction, a shared whiteboard and
//!   trusted-agent (TTP) interposition.
//! * [`telemetry`] — deterministic observability: a mergeable metrics
//!   registry and the protocol flight recorder (span/event tracing over
//!   virtual time).
//!
//! See the `examples/` directory for runnable scenarios, starting with
//! `quickstart.rs`.

pub use b2b_apps as apps;
pub use b2b_core as core;
pub use b2b_crypto as crypto;
pub use b2b_evidence as evidence;
pub use b2b_net as net;
pub use b2b_telemetry as telemetry;
