//! Minimal offline stand-in for the `hex` crate.
//!
//! Implements the subset of the API used by this workspace: [`encode`] and
//! [`decode`]. Vendored because the build environment has no access to a
//! crates.io registry.

/// Error returned by [`decode`] on malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FromHexError {
    /// A character outside `[0-9a-fA-F]` was found at the given offset.
    InvalidHexCharacter {
        /// The offending character.
        c: char,
        /// Byte offset of the offending character.
        index: usize,
    },
    /// The input length was not even.
    OddLength,
}

impl std::fmt::Display for FromHexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FromHexError::InvalidHexCharacter { c, index } => {
                write!(f, "invalid hex character {c:?} at position {index}")
            }
            FromHexError::OddLength => write!(f, "odd number of hex digits"),
        }
    }
}

impl std::error::Error for FromHexError {}

const HEX_CHARS: &[u8; 16] = b"0123456789abcdef";

/// Encodes `data` as a lowercase hex string.
pub fn encode<T: AsRef<[u8]>>(data: T) -> String {
    let bytes = data.as_ref();
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX_CHARS[(b >> 4) as usize] as char);
        out.push(HEX_CHARS[(b & 0x0f) as usize] as char);
    }
    out
}

fn val(c: u8, index: usize) -> Result<u8, FromHexError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(FromHexError::InvalidHexCharacter {
            c: c as char,
            index,
        }),
    }
}

/// Decodes a hex string (upper or lower case) into bytes.
pub fn decode<T: AsRef<[u8]>>(data: T) -> Result<Vec<u8>, FromHexError> {
    let bytes = data.as_ref();
    if bytes.len() % 2 != 0 {
        return Err(FromHexError::OddLength);
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = val(pair[0], i * 2)?;
        let lo = val(pair[1], i * 2 + 1)?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff];
        let s = encode(data);
        assert_eq!(s, "00017f80ff");
        assert_eq!(decode(&s).unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("abc"), Err(FromHexError::OddLength));
        assert!(matches!(
            decode("zz"),
            Err(FromHexError::InvalidHexCharacter { c: 'z', index: 0 })
        ));
    }

    #[test]
    fn accepts_uppercase() {
        assert_eq!(decode("DEADBEEF").unwrap(), [0xde, 0xad, 0xbe, 0xef]);
    }
}
