//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module subset used by this workspace is provided
//! (`unbounded`, `bounded`, `Sender`, `Receiver`, the recv/send error
//! enums), implemented over `std::sync::mpsc` (whose `Sender` is `Sync`
//! since Rust 1.72, matching crossbeam's sharing semantics for our use;
//! bounded channels map onto `mpsc::sync_channel`). Vendored because the
//! build environment has no crates.io registry.

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The (bounded) channel is at capacity.
        Full(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The channel stayed at capacity past the timeout.
        Timeout(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Flavor<T> {
        fn clone(&self) -> Self {
            match self {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Flavor<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`; on a bounded channel this blocks until a slot
        /// frees up, on an unbounded channel it never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Flavor::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }

        /// Sends `value` without ever blocking; on a bounded channel at
        /// capacity the value comes back as [`TrySendError::Full`].
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                Flavor::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }

        /// Sends `value`, giving up after `timeout` if the channel stays
        /// full.
        ///
        /// `std::sync::mpsc` has no native timed send, so the bounded
        /// flavour polls `try_send` with a short sleep — adequate for a
        /// backpressure stall window, not for microsecond precision.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = std::time::Instant::now() + timeout;
            let mut value = value;
            loop {
                match self.try_send(value) {
                    Ok(()) => return Ok(()),
                    Err(TrySendError::Disconnected(v)) => {
                        return Err(SendTimeoutError::Disconnected(v));
                    }
                    Err(TrySendError::Full(v)) => {
                        if std::time::Instant::now() >= deadline {
                            return Err(SendTimeoutError::Timeout(v));
                        }
                        value = v;
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
            }
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.recv().map_err(|_| RecvTimeoutError::Disconnected)
        }

        /// Blocks until a message arrives, the timeout elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a pending message if one is queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded channel holding at most `capacity` queued
    /// messages (`capacity` must be positive; a zero-capacity rendezvous
    /// channel is not part of this stand-in).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "bounded(0) rendezvous channels unsupported");
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(5));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_full_and_timeout_semantics() {
            let (tx, rx) = bounded::<u8>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(
                tx.send_timeout(3, Duration::from_millis(5)),
                Err(SendTimeoutError::Timeout(3))
            );
            assert_eq!(rx.try_recv(), Ok(1));
            tx.send_timeout(3, Duration::from_millis(50)).unwrap();
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Ok(3));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn sender_is_clone_and_shareable() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let t = std::thread::spawn(move || tx2.send(1).unwrap());
            tx.send(2).unwrap();
            t.join().unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
