//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module subset used by this workspace is provided
//! (`unbounded`, `Sender`, `Receiver`, `RecvTimeoutError`), implemented over
//! `std::sync::mpsc` (whose `Sender` is `Sync` since Rust 1.72, matching
//! crossbeam's sharing semantics for our use). Vendored because the build
//! environment has no crates.io registry.

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, never blocking.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.recv().map_err(|_| RecvTimeoutError::Disconnected)
        }

        /// Blocks until a message arrives, the timeout elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a pending message if one is queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(5));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn sender_is_clone_and_shareable() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let t = std::thread::spawn(move || tx2.send(1).unwrap());
            tx.send(2).unwrap();
            t.join().unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
