//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements just enough of the criterion 0.5 API for this workspace's
//! `harness = false` bench targets to compile and run: benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_with_setup`,
//! `BenchmarkId`, `Throughput`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple mean over
//! `sample_size` timed iterations printed to stdout — no statistics, no
//! HTML reports. Vendored because the build environment has no crates.io
//! registry.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimiser from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput hint attached to a group (recorded, displayed per benchmark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types accepted as benchmark ids by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup`; only the routine
    /// is on the clock.
    pub fn iter_with_setup<S, O, FS: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: FS,
        mut routine: F,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _c: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; iterations are fixed, not time-based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records a throughput hint echoed in the report line.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            iters: self.sample_size as u64,
            total: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            total: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        let tp = match self.throughput {
            Some(Throughput::Bytes(n)) => format!(" ({n} bytes/iter)"),
            Some(Throughput::Elements(n)) => format!(" ({n} elems/iter)"),
            None => String::new(),
        };
        println!(
            "bench {}/{}: {:?}/iter over {} iters{}",
            self.name, id.id, per_iter, b.iters, tp
        );
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3)
                .throughput(Throughput::Bytes(8))
                .bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &n| {
                b.iter_with_setup(|| n, |x| x * 2)
            });
            g.finish();
        }
        assert_eq!(ran, 3);
    }
}
