//! Minimal offline stand-in for the `serde` crate.
//!
//! Real serde is a zero-copy visitor framework; this stand-in uses a much
//! simpler model that is sufficient for the workspace's needs: every
//! [`Serialize`] type renders itself into an owned [`Value`] tree, and every
//! [`Deserialize`] type rebuilds itself from one. `serde_json` (also
//! vendored) converts `Value` trees to and from JSON text. The data model
//! mirrors serde_json conventions: structs are maps, `Option` is
//! null-or-value, enums are externally tagged, newtype structs are
//! transparent, and byte arrays are sequences of numbers.
//!
//! Determinism: hash-based containers (`HashMap`, `HashSet`) are sorted by
//! serialized key on serialization, so equal values always produce
//! byte-identical encodings — a property the middleware's evidence layer and
//! deterministic-replay tests rely on.
//!
//! Vendored because the build environment has no crates.io registry.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of any value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered `(key, value)` pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total ordering over values, used to canonicalize hash containers.
    fn cmp_canonical(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::U64(_) => 2,
                Value::I64(_) => 3,
                Value::F64(_) => 4,
                Value::Str(_) => 5,
                Value::Seq(_) => 6,
                Value::Map(_) => 7,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::U64(a), Value::U64(b)) => a.cmp(b),
            (Value::I64(a), Value::I64(b)) => a.cmp(b),
            (Value::F64(a), Value::F64(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Seq(a), Value::Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.cmp_canonical(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Map(a), Value::Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                    let ord = va.cmp_canonical(vb);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Mirror of serde's `de` module for the paths this workspace imports.
pub mod de {
    /// Owned deserialization marker. The shim's [`crate::Deserialize`] has no
    /// borrowed-lifetime form, so every `Deserialize` type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---- Primitive impls -------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() < i64::MAX as f64 => f as i64,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected signed integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_v: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

// ---- Reference / smart-pointer impls ---------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

// ---- Option ----------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---- Sequences -------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

// ---- Tuples ----------------------------------------------------------------

macro_rules! tuple_impls {
    ($(($($name:ident $idx:tt),+);)+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v
                    .as_seq()
                    .ok_or_else(|| Error::msg(format!("expected tuple sequence, got {v:?}")))?;
                if items.len() != LEN {
                    return Err(Error::msg(format!(
                        "expected tuple of length {LEN}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

// ---- Maps ------------------------------------------------------------------

/// Serializes `(key, value)` pairs. Keys rendering as strings produce an
/// object; any other key shape falls back to a sequence of `[key, value]`
/// pairs. Output is sorted for canonical form.
fn serialize_pairs<'a, K, V, I>(pairs: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let rendered: Vec<(Value, Value)> = pairs.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    if rendered.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        let mut entries: Vec<(String, Value)> = rendered
            .into_iter()
            .map(|(k, v)| match k {
                Value::Str(s) => (s, v),
                _ => unreachable!("checked above"),
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    } else {
        let mut entries = rendered;
        entries.sort_by(|a, b| a.0.cmp_canonical(&b.0));
        Value::Seq(
            entries
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

fn deserialize_pairs<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect(),
        Value::Seq(items) => items
            .iter()
            .map(|item| {
                let pair = item
                    .as_seq()
                    .filter(|s| s.len() == 2)
                    .ok_or_else(|| Error::msg("expected [key, value] pair"))?;
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect(),
        other => Err(Error::msg(format!("expected map, got {other:?}"))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        serialize_pairs(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        serialize_pairs(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: Default + std::hash::BuildHasher> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs::<K, V>(v)?.into_iter().collect())
    }
}

// ---- Sets ------------------------------------------------------------------

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| a.cmp_canonical(b));
        Value::Seq(items)
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| a.cmp_canonical(b));
        Value::Seq(items)
    }
}

impl<T: Deserialize + Eq + Hash, S: Default + std::hash::BuildHasher> Deserialize
    for HashSet<T, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- Helpers used by derive-generated code ---------------------------------

static NULL: Value = Value::Null;

/// Extracts map entries, reporting `ty` on mismatch (derive support).
pub fn de_map<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    v.as_map()
        .ok_or_else(|| Error::msg(format!("expected map for {ty}, got {v:?}")))
}

/// Extracts a sequence of exactly `n` items (derive support).
pub fn de_seq<'a>(v: &'a Value, n: usize, ty: &str) -> Result<&'a [Value], Error> {
    let items = v
        .as_seq()
        .ok_or_else(|| Error::msg(format!("expected sequence for {ty}, got {v:?}")))?;
    if items.len() != n {
        return Err(Error::msg(format!(
            "expected {n} elements for {ty}, got {}",
            items.len()
        )));
    }
    Ok(items)
}

/// Looks up and deserializes a struct field; absent keys read as `Null`
/// so `Option` fields tolerate missing entries (derive support).
pub fn de_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    let v = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL);
    T::from_value(v).map_err(|e| Error::msg(format!("{ty}.{key}: {e}")))
}

/// Splits an externally tagged enum value into `(variant, payload)`
/// (derive support).
pub fn de_enum<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, &'a Value), Error> {
    match v {
        Value::Str(tag) => Ok((tag.as_str(), &NULL)),
        Value::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        other => Err(Error::msg(format!(
            "expected enum tag for {ty}, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(5u64).to_value(), Value::U64(5));
        assert_eq!(None::<u64>.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(5)).unwrap(), Some(5));
    }

    #[test]
    fn hashmap_with_string_keys_is_sorted_object() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        assert_eq!(
            m.to_value(),
            Value::Map(vec![
                ("a".to_string(), Value::U64(1)),
                ("b".to_string(), Value::U64(2)),
            ])
        );
        let back = HashMap::<String, u64>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn map_with_non_string_keys_uses_pairs() {
        let mut m = BTreeMap::new();
        m.insert(2u64, "two".to_string());
        m.insert(1u64, "one".to_string());
        let v = m.to_value();
        assert!(matches!(v, Value::Seq(_)));
        let back = BTreeMap::<u64, String>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn arrays_roundtrip() {
        let a = [1u8, 2, 3];
        let v = a.to_value();
        assert_eq!(<[u8; 3]>::from_value(&v).unwrap(), a);
        assert!(<[u8; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn hashset_serialization_is_order_independent() {
        let mut a = HashSet::new();
        let mut b = HashSet::new();
        for x in 0..100u64 {
            a.insert(x);
        }
        for x in (0..100u64).rev() {
            b.insert(x);
        }
        assert_eq!(a.to_value(), b.to_value());
    }

    #[test]
    fn signed_unsigned_cross_reads() {
        assert_eq!(i64::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(u64::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn tuples_roundtrip() {
        let t = (1u64, "x".to_string(), true);
        let v = t.to_value();
        assert_eq!(
            <(u64, String, bool)>::from_value(&v).unwrap(),
            (1, "x".to_string(), true)
        );
    }
}
