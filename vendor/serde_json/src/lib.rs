//! Minimal offline stand-in for the `serde_json` crate.
//!
//! Converts the vendored `serde`'s [`Value`] tree to and from JSON text,
//! exposing the function-level API this workspace uses: [`to_vec`],
//! [`to_string`], [`from_slice`] and [`from_str`]. The emitter is
//! deterministic (and the vendored serde sorts hash containers), so equal
//! values always produce byte-identical JSON. Vendored because the build
//! environment has no crates.io registry.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Maximum nesting depth accepted by the parser (stack-overflow guard).
const MAX_DEPTH: usize = 128;

/// Serializes `value` to JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserializes a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---- Emitter ---------------------------------------------------------------

fn emit(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats self-describing so they parse back as floats.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(k, out);
                out.push(':');
                emit(val, out);
            }
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("JSON nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid utf-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            if (0xd800..0xdc00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::msg("bad surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::msg("bad \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::msg("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("bad number {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|n| Value::I64(-(n as i64)))
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::msg(format!("bad number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::msg(format!("bad number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&5u64).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("5").unwrap(), 5);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "a\"b\\c\nd\te\u{0007}π🎈".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        // Parser accepts \u escapes including surrogate pairs.
        assert_eq!(from_str::<String>("\"\\ud83c\\udf88\"").unwrap(), "🎈");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u64, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), 1u64);
        assert_eq!(to_string(&m).unwrap(), "{\"k\":1}");
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, u64>>("{\"k\":1}").unwrap(),
            m
        );
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("5x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push('[');
        }
        assert!(from_str::<serde::Value>(&s).is_err());
    }

    #[test]
    fn bytes_api() {
        let bytes = to_vec(&vec![1u8, 2]).unwrap();
        assert_eq!(from_slice::<Vec<u8>>(&bytes).unwrap(), vec![1, 2]);
    }
}
