//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides the traits ([`RngCore`], [`CryptoRng`], [`SeedableRng`], [`Rng`])
//! and [`rngs::StdRng`] used by this workspace. `StdRng` here is a
//! xoshiro256++ generator seeded with SplitMix64 — deterministic for a given
//! seed, which is all the simulator requires, but it does NOT produce the
//! same stream as the upstream `rand::rngs::StdRng` (ChaCha12). Fixed-seed
//! tests calibrated against the upstream stream may need re-seeding.
//! Vendored because the build environment has no crates.io registry.

use std::sync::atomic::{AtomicU64, Ordering};

/// Core pseudo-random number generation interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Marker trait for generators considered cryptographically strong.
///
/// Our [`rngs::StdRng`] is *not* cryptographically strong; the marker is kept
/// so call sites written against the upstream API compile unchanged. All
/// security-relevant uses in this workspace are simulation-scoped.
pub trait CryptoRng {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a 64-bit seed with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds the generator from ambient (non-reproducible) entropy.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from this range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo <= hi, "gen_range: empty range");
    let span = hi.wrapping_sub(lo).wrapping_add(1);
    if span == 0 {
        // Full u64 range.
        return rng.next_u64();
    }
    // Multiply-shift mapping; bias is < 2^-64 per draw, irrelevant for
    // simulation workloads.
    let v = rng.next_u64();
    lo + ((v as u128 * span as u128) >> 64) as u64
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        sample_u64_inclusive(rng, *self.start(), *self.end())
    }
}

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        sample_u64_inclusive(rng, self.start, self.end - 1)
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        sample_u64_inclusive(rng, *self.start() as u64, *self.end() as u64) as usize
    }
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        sample_u64_inclusive(rng, self.start as u64, (self.end - 1) as u64) as usize
    }
}

impl SampleRange<u32> for std::ops::Range<u32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "gen_range: empty range");
        sample_u64_inclusive(rng, self.start as u64, (self.end - 1) as u64) as u32
    }
}

impl SampleRange<u32> for std::ops::RangeInclusive<u32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        sample_u64_inclusive(rng, *self.start() as u64, *self.end() as u64) as u32
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

fn entropy_u64() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let stack_probe = &count as *const _ as u64;
    // Mix the sources so consecutive calls differ even within one timer tick.
    let mut sm = SplitMix64(
        nanos
            .wrapping_mul(0x2545f4914f6cdd1d)
            .wrapping_add(count.wrapping_mul(0x9e3779b97f4a7c15))
            ^ stack_probe,
    );
    sm.next_u64()
}

/// Generator implementations.
pub mod rngs {
    use super::{CryptoRng, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator behind the `StdRng` name.
    ///
    /// Same-seed instances produce identical streams; the stream differs
    /// from upstream `rand`'s ChaCha12-based `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0, 0, 0, 0] {
                // xoshiro must not start at the all-zero state.
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl CryptoRng for StdRng {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn entropy_instances_differ() {
        let mut a = StdRng::from_entropy();
        let mut b = StdRng::from_entropy();
        let sa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(5usize..8);
            assert!((5..8).contains(&w));
        }
        // Degenerate singleton range.
        assert_eq!(rng.gen_range(3u64..=3), 3);
    }

    #[test]
    fn gen_bool_extremes_and_distribution() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
