//! Minimal offline stand-in for the `ed25519-dalek` crate (v2 API subset).
//!
//! **This is not Ed25519.** The build environment has no crates.io registry,
//! so instead of curve arithmetic this crate implements a deterministic
//! SHA-256-based signature scheme behind the dalek API:
//!
//! - the verifying key is `SHA-256("b2b-sim-ed25519-vk" || secret)`;
//! - a signature is `SHA-256(tag1 || secret || msg) || SHA-256(tag2 || secret
//!   || msg)` (64 bytes, like a real Ed25519 signature);
//! - verification recovers the secret from a process-global registry of keys
//!   created in this process (`SigningKey::from_bytes` registers), recomputes
//!   the MAC and compares.
//!
//! Within the simulator's threat model (an in-process Dolev-Yao intruder that
//! can replay, reorder and corrupt bytes but holds no keys) this is
//! unforgeable: producing a valid signature for a verifying key requires the
//! 32-byte secret, which never crosses the simulated wire. It is **not**
//! transferable across processes and must never be used in a deployment.

use sha2::{Digest, Sha256};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

const VK_TAG: &[u8] = b"b2b-sim-ed25519-vk";
const SIG_TAG_R: &[u8] = b"b2b-sim-ed25519-r";
const SIG_TAG_S: &[u8] = b"b2b-sim-ed25519-s";

fn registry() -> &'static Mutex<HashMap<[u8; 32], [u8; 32]>> {
    static REG: OnceLock<Mutex<HashMap<[u8; 32], [u8; 32]>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

fn hash3(tag: &[u8], a: &[u8], b: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(tag);
    h.update((a.len() as u64).to_be_bytes());
    h.update(a);
    h.update(b);
    h.finalize()
}

fn mac(secret: &[u8; 32], msg: &[u8]) -> [u8; 64] {
    let r = hash3(SIG_TAG_R, secret, msg);
    let s = hash3(SIG_TAG_S, secret, msg);
    let mut out = [0u8; 64];
    out[..32].copy_from_slice(&r);
    out[32..].copy_from_slice(&s);
    out
}

/// Error produced by failed verification or malformed key material.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "signature error")
    }
}

impl std::error::Error for SignatureError {}

/// A 64-byte signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    bytes: [u8; 64],
}

impl Signature {
    /// Builds a signature from raw bytes (infallible, as in dalek v2).
    pub fn from_bytes(bytes: &[u8; 64]) -> Signature {
        Signature { bytes: *bytes }
    }

    /// The raw 64 signature bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.bytes
    }
}

/// A verifying (public) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey {
    bytes: [u8; 32],
}

impl VerifyingKey {
    /// Builds a verifying key from raw bytes.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<VerifyingKey, SignatureError> {
        Ok(VerifyingKey { bytes: *bytes })
    }

    /// The raw 32 key bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.bytes
    }

    /// The raw key bytes as a reference.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }
}

/// A signing (secret) key.
#[derive(Clone)]
pub struct SigningKey {
    secret: [u8; 32],
    verifying: VerifyingKey,
}

impl SigningKey {
    /// Builds a signing key from 32 secret bytes and registers its verifying
    /// key in the process-global verification registry.
    pub fn from_bytes(secret: &[u8; 32]) -> SigningKey {
        let vk = hash3(VK_TAG, secret, &[]);
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(vk, *secret);
        SigningKey {
            secret: *secret,
            verifying: VerifyingKey { bytes: vk },
        }
    }

    /// The secret bytes this key was built from.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.secret
    }

    /// The matching verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.verifying
    }
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret.
        write!(f, "SigningKey({:02x?}…)", &self.verifying.bytes[..4])
    }
}

/// Objects that can sign messages.
pub trait Signer {
    /// Signs `msg`.
    fn sign(&self, msg: &[u8]) -> Signature;
}

impl Signer for SigningKey {
    fn sign(&self, msg: &[u8]) -> Signature {
        Signature {
            bytes: mac(&self.secret, msg),
        }
    }
}

/// Objects that can verify signatures.
pub trait Verifier {
    /// Verifies `sig` over `msg`.
    fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), SignatureError>;
}

impl Verifier for VerifyingKey {
    fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), SignatureError> {
        let secret = registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&self.bytes)
            .copied()
            .ok_or(SignatureError)?;
        let expected = mac(&secret, msg);
        // Constant-time-ish compare; timing is irrelevant in simulation but
        // the branch-free fold costs nothing.
        let diff = expected
            .iter()
            .zip(sig.bytes.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
        if diff == 0 {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

/// Batch verification (dalek v2 `verify_batch` API shape): checks that
/// `signatures[i]` is valid over `messages[i]` under `verifying_keys[i]`
/// for every `i`.
///
/// Like the real implementation, the result is **all-or-nothing**: any
/// invalid signature (or a length mismatch between the three slices, or
/// empty input on mismatched lengths) fails the whole batch without
/// identifying the offender — callers that need attribution fall back to
/// per-signature [`Verifier::verify`]. A single shared comparison fold
/// stands in for the real scheme's single multi-scalar multiplication.
pub fn verify_batch(
    messages: &[&[u8]],
    signatures: &[Signature],
    verifying_keys: &[VerifyingKey],
) -> Result<(), SignatureError> {
    if messages.len() != signatures.len() || messages.len() != verifying_keys.len() {
        return Err(SignatureError);
    }
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut diff = 0u8;
    for ((msg, sig), vk) in messages.iter().zip(signatures).zip(verifying_keys) {
        let secret = reg.get(&vk.bytes).copied().ok_or(SignatureError)?;
        let expected = mac(&secret, msg);
        diff |= expected
            .iter()
            .zip(sig.bytes.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
    }
    if diff == 0 {
        Ok(())
    } else {
        Err(SignatureError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SigningKey::from_bytes(&[7u8; 32]);
        let sig = sk.sign(b"msg");
        assert!(sk.verifying_key().verify(b"msg", &sig).is_ok());
        assert!(sk.verifying_key().verify(b"other", &sig).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let a = SigningKey::from_bytes(&[1u8; 32]);
        let b = SigningKey::from_bytes(&[2u8; 32]);
        let sig = a.sign(b"m");
        assert!(b.verifying_key().verify(b"m", &sig).is_err());
    }

    #[test]
    fn unknown_verifying_key_rejected() {
        let vk = VerifyingKey::from_bytes(&[9u8; 32]).unwrap();
        let sig = Signature::from_bytes(&[0u8; 64]);
        assert_eq!(vk.verify(b"m", &sig), Err(SignatureError));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let sk = SigningKey::from_bytes(&[3u8; 32]);
        let sig = sk.sign(b"x");
        let restored = Signature::from_bytes(&sig.to_bytes());
        assert!(sk.verifying_key().verify(b"x", &restored).is_ok());
    }

    #[test]
    fn batch_accepts_all_good_and_rejects_any_bad() {
        let keys: Vec<SigningKey> = (0..4u8).map(|i| SigningKey::from_bytes(&[i; 32])).collect();
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i, i, i]).collect();
        let mut sigs: Vec<Signature> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
        let vks: Vec<VerifyingKey> = keys.iter().map(|k| k.verifying_key()).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        assert!(verify_batch(&refs, &sigs, &vks).is_ok());
        // One forged signature anywhere sinks the whole batch.
        sigs[2] = keys[2].sign(b"forged");
        assert!(verify_batch(&refs, &sigs, &vks).is_err());
        // Length mismatch is an error, never a silent truncation.
        assert!(verify_batch(&refs[..3], &sigs[..3], &vks).is_err());
        assert!(verify_batch(&[], &[], &[]).is_ok());
    }

    #[test]
    fn deterministic_keys_and_signatures() {
        let a = SigningKey::from_bytes(&[5u8; 32]);
        let b = SigningKey::from_bytes(&[5u8; 32]);
        assert_eq!(a.verifying_key(), b.verifying_key());
        assert_eq!(
            a.sign(b"m").to_bytes().to_vec(),
            b.sign(b"m").to_bytes().to_vec()
        );
    }
}
