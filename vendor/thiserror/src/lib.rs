//! Minimal offline stand-in for the `thiserror` crate.
//!
//! Provides `#[derive(Error)]` for plain (non-generic) enums, supporting the
//! subset this workspace uses:
//!
//! - `#[error("…")]` display attributes with `{field}`, `{field:?}` and
//!   positional `{0}` / `{0:?}` interpolation;
//! - `#[from]` on a variant's single field, generating the `From` impl;
//! - an empty `std::error::Error` impl (no `source()` chaining).
//!
//! Implemented directly over `proc_macro` token trees — no `syn`/`quote` —
//! because the build environment has no crates.io registry.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    /// Named-field name, or `None` for tuple fields.
    name: Option<String>,
    /// Source text of the field's type.
    ty: String,
    /// Whether the field carried `#[from]`.
    from: bool,
}

struct Variant {
    name: String,
    /// The `#[error("…")]` literal, source form including quotes.
    fmt: Option<String>,
    /// `None` for unit variants, `Some((named, fields))` otherwise.
    fields: Option<(bool, Vec<Field>)>,
}

/// Derives `Display`, `std::error::Error` and `#[from]` conversions.
#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(code) => code.parse().expect("generated code parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("parses"),
    }
}

fn expand(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility, find `enum Name { … }`.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return Err("derive(Error) shim supports enums only".to_string());
            }
            Some(_) => i += 1,
            None => return Err("derive(Error): no enum found".to_string()),
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Error): missing enum name".to_string()),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => return Err(format!("derive(Error): generic enum {name} unsupported")),
    };

    let variants = parse_variants(body)?;
    if variants.is_empty() {
        return Err(format!("derive(Error): enum {name} has no variants"));
    }

    let mut out = String::new();

    // Display impl.
    out.push_str(&format!(
        "impl ::std::fmt::Display for {name} {{\n\
         fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         match self {{\n"
    ));
    for v in &variants {
        let fmt = v
            .fmt
            .as_ref()
            .ok_or_else(|| format!("variant {}::{} lacks #[error(…)]", name, v.name))?;
        match &v.fields {
            None => {
                out.push_str(&format!(
                    "{}::{} => ::std::write!(f, {}),\n",
                    name, v.name, fmt
                ));
            }
            Some((false, fields)) => {
                let binders: Vec<String> = (0..fields.len()).map(|k| format!("_{k}")).collect();
                let rewritten = rewrite_positional(fmt);
                out.push_str(&format!(
                    "{}::{}({}) => ::std::write!(f, {}),\n",
                    name,
                    v.name,
                    binders.join(", "),
                    rewritten
                ));
            }
            Some((true, fields)) => {
                let names: Vec<String> = fields
                    .iter()
                    .map(|fld| fld.name.clone().expect("named field"))
                    .collect();
                let binders: Vec<String> = names.iter().map(|n| format!("{n}: _{n}")).collect();
                let rewritten = rewrite_named(fmt, &names);
                out.push_str(&format!(
                    "{}::{} {{ {} }} => ::std::write!(f, {}),\n",
                    name,
                    v.name,
                    binders.join(", "),
                    rewritten
                ));
            }
        }
    }
    out.push_str("}\n}\n}\n");

    // Error impl.
    out.push_str(&format!("impl ::std::error::Error for {name} {{}}\n"));

    // From impls for #[from] fields.
    for v in &variants {
        if let Some((named, fields)) = &v.fields {
            if let Some(pos) = fields.iter().position(|f| f.from) {
                if fields.len() != 1 {
                    return Err(format!(
                        "#[from] variant {}::{} must have exactly one field",
                        name, v.name
                    ));
                }
                let ty = &fields[pos].ty;
                let construct = if *named {
                    format!(
                        "{}::{} {{ {}: source }}",
                        name,
                        v.name,
                        fields[pos].name.as_ref().expect("named field")
                    )
                } else {
                    format!("{}::{}(source)", name, v.name)
                };
                out.push_str(&format!(
                    "impl ::std::convert::From<{ty}> for {name} {{\n\
                     fn from(source: {ty}) -> Self {{ {construct} }}\n\
                     }}\n"
                ));
            }
        }
    }

    Ok(out)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut fmt = None;
        // Leading attributes; capture #[error("…")].
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "error" {
                        if let Some(TokenTree::Literal(lit)) = args.stream().into_iter().next() {
                            fmt = Some(lit.to_string());
                        }
                    }
                }
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token {other} in enum body")),
            None => break,
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Some((false, parse_fields(g.stream(), false)?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some((true, parse_fields(g.stream(), true)?))
            }
            _ => None,
        };
        // Trailing comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fmt, fields });
    }
    Ok(variants)
}

fn parse_fields(stream: TokenStream, named: bool) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    // Split on commas outside angle brackets (groups are atomic token trees,
    // so only generic arguments need depth tracking).
    let mut chunks: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i32;
    for tok in tokens {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("non-empty").push(tok);
    }
    for chunk in chunks {
        if chunk.is_empty() {
            continue;
        }
        let mut j = 0;
        let mut from = false;
        // Attributes.
        while let Some(TokenTree::Punct(p)) = chunk.get(j) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = chunk.get(j + 1) {
                if g.stream().to_string().trim() == "from" {
                    from = true;
                }
            }
            j += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = chunk.get(j) {
            if id.to_string() == "pub" {
                j += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(j) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        j += 1;
                    }
                }
            }
        }
        let name = if named {
            let n = match chunk.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return Err("expected field name".to_string()),
            };
            j += 1;
            // Skip the ':'.
            j += 1;
            Some(n)
        } else {
            None
        };
        let ty = tokens_to_string(&chunk[j..]);
        fields.push(Field { name, ty, from });
    }
    Ok(fields)
}

/// Renders tokens back to source, inserting spaces only between adjacent
/// identifier-like tokens (so `std :: io :: Error` comes out `std::io::Error`
/// but `dyn Trait` keeps its space).
fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    for tok in tokens {
        let text = tok.to_string();
        let needs_gap = matches!(
            (out.chars().next_back(), text.chars().next()),
            (Some(a), Some(b)) if (a.is_alphanumeric() || a == '_') && (b.is_alphanumeric() || b == '_')
        );
        if needs_gap {
            out.push(' ');
        }
        out.push_str(&text);
    }
    out
}

/// Returns `true` when the `{` at byte offset `at` opens a `\u{…}` escape.
fn is_unicode_escape(chars: &[char], at: usize) -> bool {
    at >= 2 && chars[at - 1] == 'u' && chars[at - 2] == '\\'
}

fn rewrite_placeholders(fmt: &str, map: impl Fn(&str) -> Option<String>) -> String {
    let chars: Vec<char> = fmt.chars().collect();
    let mut out = String::with_capacity(fmt.len() + 8);
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '{' {
            if chars.get(i + 1) == Some(&'{') || is_unicode_escape(&chars, i) {
                out.push(c);
                if chars.get(i + 1) == Some(&'{') {
                    out.push('{');
                    i += 2;
                    continue;
                }
                i += 1;
                continue;
            }
            // Collect the argument up to ':' or '}'.
            let start = i + 1;
            let mut end = start;
            while end < chars.len() && chars[end] != ':' && chars[end] != '}' {
                end += 1;
            }
            let arg: String = chars[start..end].iter().collect();
            out.push('{');
            match map(&arg) {
                Some(repl) => out.push_str(&repl),
                None => out.push_str(&arg),
            }
            i = end;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Rewrites `{0}` / `{0:?}` to `{_0}` / `{_0:?}`.
fn rewrite_positional(fmt: &str) -> String {
    rewrite_placeholders(fmt, |arg| {
        if !arg.is_empty() && arg.chars().all(|c| c.is_ascii_digit()) {
            Some(format!("_{arg}"))
        } else {
            None
        }
    })
}

/// Rewrites `{field}` / `{field:?}` to `{_field}` / `{_field:?}`.
fn rewrite_named(fmt: &str, names: &[String]) -> String {
    rewrite_placeholders(fmt, |arg| {
        if names.iter().any(|n| n == arg) {
            Some(format!("_{arg}"))
        } else {
            None
        }
    })
}
