//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API subset this
//! workspace uses: `Mutex::lock`, `RwLock::read/write` (no `Result`s —
//! poisoning is swallowed, matching parking_lot's no-poisoning semantics)
//! and `Condvar::wait_until(&mut guard, Instant)`. Vendored because the
//! build environment has no crates.io registry.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutex that hands out guards without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// The inner `Option` exists so [`Condvar::wait_until`] can temporarily take
/// the std guard while blocking; it is `Some` at every other moment.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes all threads blocked on this condvar.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one thread blocked on this condvar.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Blocks until notified or `deadline` passes, releasing the guard's
    /// lock while waiting. Mirrors parking_lot's `&mut guard` signature.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (std_guard, result) = self
            .0
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_timeout_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Timeout path.
        {
            let mut guard = pair.0.lock();
            let res = pair
                .1
                .wait_until(&mut guard, Instant::now() + Duration::from_millis(10));
            assert!(res.timed_out());
            assert!(!*guard);
        }
        // Notify path.
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut guard = pair.0.lock();
        while !*guard {
            if pair.1.wait_until(&mut guard, deadline).timed_out() {
                break;
            }
        }
        assert!(*guard);
        t.join().unwrap();
    }
}
