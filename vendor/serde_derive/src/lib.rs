//! Minimal offline stand-in for the `serde_derive` crate.
//!
//! Generates impls of the vendored `serde`'s [`Serialize`]/[`Deserialize`]
//! traits (a value-tree model, not the upstream visitor framework) for
//! non-generic structs and enums without `#[serde(...)]` attributes:
//!
//! - named structs → maps keyed by field name;
//! - newtype structs → transparent;
//! - tuple structs → sequences;
//! - enums → externally tagged (`"Variant"` or `{"Variant": payload}`).
//!
//! Implemented directly over `proc_macro` token trees — no `syn`/`quote` —
//! because the build environment has no crates.io registry.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input).map(|item| gen_serialize(&item)) {
        Ok(code) => code.parse().expect("generated code parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("parses"),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input).map(|item| gen_deserialize(&item)) {
        Ok(code) => code.parse().expect("generated code parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("parses"),
    }
}

// ---- Parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                kind = id.to_string();
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => return Err("derive(Serialize/Deserialize): no item found".to_string()),
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing item name".to_string()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type {name}: unsupported by vendored serde_derive"
            ));
        }
    }
    if kind == "struct" {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(named_field_names(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        Ok(Item::Struct { name, shape })
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return Err(format!("enum {name}: missing body")),
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes (doc comments etc).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token {other} in enum body")),
            None => break,
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(named_field_names(g.stream())?)
            }
            _ => Shape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                return Err(format!("variant {name}: discriminants unsupported"));
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// Splits field-list tokens on commas outside `<…>` generic arguments.
fn split_fields(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("non-empty").push(tok);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_fields(stream).len()
}

fn named_field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_fields(stream) {
        let mut j = 0;
        while let Some(TokenTree::Punct(p)) = chunk.get(j) {
            if p.as_char() != '#' {
                break;
            }
            j += 2;
        }
        if let Some(TokenTree::Ident(id)) = chunk.get(j) {
            if id.to_string() == "pub" {
                j += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(j) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        j += 1;
                    }
                }
            }
        }
        match chunk.get(j) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            _ => return Err("expected field name".to_string()),
        }
    }
    Ok(names)
}

// ---- Codegen ---------------------------------------------------------------

fn ser_named_body(expr_prefix: &str, fields: &[String], deref: bool) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let access = if deref {
                f.to_string()
            } else {
                format!("&{expr_prefix}{f}")
            };
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({access}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => ser_named_body("self.", fields, false),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("_f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(_f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), {payload})]),\n",
                            binders.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let payload = ser_named_body("", fields, true);
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), {payload})]),\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn de_named_body(ctor: &str, ty_label: &str, fields: &[String], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de_field({map_expr}, \"{f}\", \"{ty_label}\")?"))
        .collect();
    format!("{ctor} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                        .collect();
                    format!(
                        "let s = ::serde::de_seq(v, {n}, \"{name}\")?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    format!(
                        "let m = ::serde::de_map(v, \"{name}\")?;\n\
                         ::std::result::Result::Ok({})",
                        de_named_body(name, name, fields, "m")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let label = format!("{name}::{vn}");
                match &v.shape {
                    Shape::Unit => {
                        arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Shape::Tuple(1) => {
                        arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                            .collect();
                        arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet s = ::serde::de_seq(payload, {n}, \"{label}\")?;\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet m = ::serde::de_map(payload, \"{label}\")?;\n\
                             ::std::result::Result::Ok({})\n}},\n",
                            de_named_body(&format!("{name}::{vn}"), &label, fields, "m")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let (tag, payload) = ::serde::de_enum(v, \"{name}\")?;\n\
                 let _ = payload;\n\
                 match tag {{\n{arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"unknown variant {{other}} for {name}\"))),\n}}\n}}\n}}\n"
            )
        }
    }
}
