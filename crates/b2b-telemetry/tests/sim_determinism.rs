//! End-to-end determinism of the flight recorder: two identical seeded
//! simulations over a lossy network must produce byte-identical trace
//! buffers and identical metrics snapshots, and attaching telemetry must
//! not change what the simulation delivers.

use b2b_crypto::{PartyId, TimeMs};
use b2b_net::reliable::Inbound;
use b2b_net::{FaultPlan, NetNode, NodeCtx, ReliableMux, SimNet};
use b2b_telemetry::{names, MetricsSnapshot, RingRecorder, Telemetry};
use std::sync::Arc;

/// A node that reliably sends a fixed batch on start and records every
/// payload delivered up the stack.
struct Endpoint {
    id: PartyId,
    peer: PartyId,
    mux: ReliableMux,
    to_send: Vec<Vec<u8>>,
    delivered: Vec<Vec<u8>>,
}

impl NetNode for Endpoint {
    fn id(&self) -> PartyId {
        self.id.clone()
    }
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        for m in std::mem::take(&mut self.to_send) {
            let peer = self.peer.clone();
            self.mux.send(peer, m, ctx);
        }
    }
    fn on_message(&mut self, from: &PartyId, payload: &[u8], ctx: &mut NodeCtx) {
        if let Inbound::Deliver(m, _) = self.mux.on_message(from, payload, ctx) {
            self.delivered.push(m);
        }
    }
    fn on_timer(&mut self, timer: u64, ctx: &mut NodeCtx) {
        self.mux.on_timer(timer, ctx);
    }
}

struct RunResult {
    trace: String,
    metrics_json: String,
    delivered_at_b: Vec<Vec<u8>>,
}

/// Runs a two-endpoint batch exchange over a lossy, jittery network.
/// With `traced`, every layer shares one telemetry handle recording into
/// a ring buffer; without, the endpoints run with the no-op default.
fn run_sim(seed: u64, traced: bool) -> RunResult {
    let ring = Arc::new(RingRecorder::new(16_384));
    let tel = if traced {
        Telemetry::with_sink(ring.clone())
    } else {
        Telemetry::new()
    };
    let mut net: SimNet<Endpoint> = SimNet::new(seed);
    net.set_telemetry(tel.clone());
    net.set_default_plan(
        FaultPlan::new()
            .drop_rate(0.3)
            .dup_rate(0.2)
            .delay(TimeMs(1), TimeMs(20)),
    );
    let make = |id: &str, peer: &str, epoch: u64, batch: Vec<Vec<u8>>| {
        let mut mux = ReliableMux::new(TimeMs(50), epoch);
        mux.set_telemetry(tel.clone(), PartyId::new(id));
        Endpoint {
            id: PartyId::new(id),
            peer: PartyId::new(peer),
            mux,
            to_send: batch,
            delivered: Vec::new(),
        }
    };
    let batch_a: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 4]).collect();
    let batch_b: Vec<Vec<u8>> = (0..8u8).map(|i| vec![0x40 + i; 4]).collect();
    net.add_node(make("a", "b", 1, batch_a));
    net.add_node(make("b", "a", 2, batch_b));
    net.run_until_quiet(TimeMs(600_000));
    RunResult {
        trace: ring.render(),
        metrics_json: tel.metrics().snapshot().to_json(),
        delivered_at_b: net.node(&PartyId::new("b")).delivered.clone(),
    }
}

/// The headline determinism claim: same seed, same recording, byte for
/// byte — trace buffer and metrics snapshot alike.
#[test]
fn identical_seeded_runs_record_identical_traces() {
    let first = run_sim(0xB2B, true);
    let second = run_sim(0xB2B, true);
    assert!(!first.trace.is_empty(), "lossy run must produce events");
    assert_eq!(first.trace, second.trace);
    assert_eq!(first.metrics_json, second.metrics_json);

    // The fault plan actually exercised the layers under test.
    let snap = MetricsSnapshot::from_json(&first.metrics_json).expect("parses");
    assert!(
        snap.counter(names::RETRANSMITS) > 0,
        "loss forces retransmits"
    );
    assert!(
        snap.counter(names::DEDUP_DROPS) > 0,
        "dup_rate forces dedup drops"
    );
}

/// Different seeds must diverge — the recorder reflects the actual
/// schedule, not some seed-independent summary.
#[test]
fn different_seeds_record_different_traces() {
    let first = run_sim(1, true);
    let second = run_sim(2, true);
    assert_ne!(first.trace, second.trace);
}

/// Telemetry is observation only: the traced and untraced runs of the
/// same seed deliver exactly the same payloads in the same order.
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let traced = run_sim(42, true);
    let untraced = run_sim(42, false);
    assert_eq!(traced.delivered_at_b, untraced.delivered_at_b);
    assert!(untraced.trace.is_empty(), "no-sink run records nothing");
}

/// No-op-sink overhead smoke test: a sink-less handle takes the cheap
/// path — the detail closure never runs — across a large event volume.
#[test]
fn noop_path_never_formats_details() {
    let tel = Telemetry::new();
    let mut formatted = 0u64;
    for t in 0..100_000u64 {
        tel.trace(t, "org1", "net", "send", || {
            formatted += 1;
            String::new()
        });
    }
    assert_eq!(formatted, 0);
}
