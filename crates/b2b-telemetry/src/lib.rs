//! Deterministic observability for the B2BObjects middleware.
//!
//! The paper argues safety and liveness over *protocol rounds* (§4.3 state
//! coordination, §4.5 membership); this crate makes those rounds visible
//! without disturbing them:
//!
//! - [`metrics`] — a deterministic metrics registry: named counters and
//!   virtual-time histograms, per-coordinator, mergeable fleet-wide, with
//!   JSON and table exporters.
//! - [`trace`] — a span/event flight recorder: the [`trace::TraceSink`]
//!   trait with a bounded ring-buffer recorder and a line-writer sink.
//!   Events are stamped with virtual `TimeMs` only, so traces from the
//!   seeded simulator are byte-identical across reruns.
//!
//! [`Telemetry`] bundles both behind one cheap `Clone + Send + Sync` handle.
//! The default handle has a live metrics registry (atomically cheap) and no
//! trace sink; every instrumentation point is written so that the no-sink
//! path does not even format its detail string.

pub mod assemble;
pub mod ctx;
pub mod metrics;
pub mod trace;

pub use assemble::{assemble, chrome_trace_json, DistributedTrace};
pub use ctx::{SpanIds, TraceContext};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use trace::{LineWriter, NoopSink, RingRecorder, TraceEvent, TraceSink};

use std::sync::Arc;

/// Well-known metric names emitted by the middleware layers.
///
/// Keeping them in one place makes sidecar files and dashboards stable
/// across crates; nothing prevents registering ad-hoc names as well.
pub mod names {
    /// State-coordination rounds entered, at the proposer when it sends
    /// m1 and at each recipient when it starts tracking the proposal.
    pub const ROUNDS_STARTED: &str = "rounds_started";
    /// Rounds that installed the proposed state.
    pub const ROUNDS_COMMITTED: &str = "rounds_committed";
    /// Rounds that ended in rollback/abort.
    pub const ROUNDS_ABORTED: &str = "rounds_aborted";
    /// Rounds lost purely to the group's concurrency control whose
    /// updates were requeued for re-proposal instead of surfacing a veto.
    pub const ROUNDS_RETRIED: &str = "rounds_retried";
    /// Phase-1 responses that validated and counted.
    pub const VOTES_VALID: &str = "votes_valid";
    /// Phase-1 responses rejected (bad signature, stale run, misbehaviour).
    pub const VOTES_INVALID: &str = "votes_invalid";
    /// Signature verifications performed.
    pub const SIG_VERIFY_COUNT: &str = "sig_verify_count";
    /// Signature checks answered from the per-coordinator verification
    /// cache instead of re-running the public-key operation.
    pub const SIG_CACHE_HITS: &str = "sig_cache_hits";
    /// Canonical encodings answered from a message's memo instead of
    /// re-encoding the signed part.
    pub const CANONICAL_CACHE_HITS: &str = "canonical_cache_hits";
    /// Wire serialisations avoided by multicast fan-out (a payload
    /// serialised once and shared across n−1 sends counts n−2 here).
    pub const FANOUT_SERIALIZATIONS_AVOIDED: &str = "fanout_serializations_avoided";
    /// Explicit flushes issued by the write-ahead log (one per append in
    /// durable mode; one per protocol step in group-commit mode).
    pub const WAL_FLUSHES: &str = "wal_flushes";
    /// Evidence records appended to the store.
    pub const EVIDENCE_RECORDS_APPENDED: &str = "evidence_records_appended";
    /// Frames appended to the write-ahead log.
    pub const WAL_APPENDS: &str = "wal_appends";
    /// Payload retransmissions by the reliable layer.
    pub const RETRANSMITS: &str = "retransmits";
    /// Duplicate payloads suppressed by the reliable layer.
    pub const DEDUP_DROPS: &str = "dedup_drops";
    /// Membership changes (connects/disconnects) installed.
    pub const MEMBERSHIP_CHANGES: &str = "membership_changes";
    /// Histogram: virtual-time latency of completed rounds.
    pub const ROUND_LATENCY_MS: &str = "round_latency_ms";
    /// TCP transport: connections established to peers.
    pub const TCP_CONNECTS: &str = "tcp_connects";
    /// TCP transport: connections re-established after a loss (a subset of
    /// [`TCP_CONNECTS`]).
    pub const TCP_RECONNECTS: &str = "tcp_reconnects";
    /// TCP transport: frames handed to the wire.
    pub const TCP_FRAMES_SENT: &str = "tcp_frames_sent";
    /// TCP transport: payload bytes handed to the wire (framing overhead
    /// excluded).
    pub const TCP_BYTES_SENT: &str = "tcp_bytes_sent";
    /// Simulator: datagrams discarded by an active partition (per-link
    /// breakdowns are registered ad hoc as `partition_drops:<from>-><to>`).
    pub const PARTITION_DROPS: &str = "partition_drops";
    /// Simulator: datagrams the installed intruder acted upon (per-link
    /// breakdowns as `intruder_actions:<from>-><to>`).
    pub const INTRUDER_ACTIONS: &str = "intruder_actions";
    /// Checker: fault schedules explored by `b2b-check`.
    pub const SCHEDULES_EXPLORED: &str = "schedules_explored";
    /// Checker: schedules on which at least one oracle reported a
    /// violation.
    pub const VIOLATIONS_FOUND: &str = "violations_found";
    /// Checker: shrinking steps attempted while minimising a failing
    /// schedule (accepted and rejected candidates both count).
    pub const SHRINK_STEPS: &str = "shrink_steps";
    /// Application updates that rode along in another update's signed
    /// coordination round instead of paying for their own (a batch of `k`
    /// updates coalesces `k − 1` rounds).
    pub const ROUNDS_COALESCED: &str = "rounds_coalesced";
    /// Histogram of batch occupancy: how many application updates each
    /// dispatched state-coordination round carried (1 = unbatched).
    pub const BATCH_OCCUPANCY: &str = "batch_occupancy";
    /// Signature checks settled through a single batched verification
    /// call (`b2b_crypto::sig::verify_batch`) rather than one public-key
    /// operation per signature.
    pub const SIG_BATCH_VERIFIES: &str = "sig_batch_verifies";
    /// Transports with bounded inboxes: sends that found the destination
    /// inbox full and had to stall (and possibly shed the frame) —
    /// the backpressure signal of the sharded/threaded runtimes.
    pub const INBOX_FULL_STALLS: &str = "inbox_full_stalls";
    /// Sharded runtime: events processed, per shard (registered as
    /// `shard_events:shard<i>`).
    pub const SHARD_EVENTS: &str = "shard_events";
    /// Sharded runtime: groups resident on each shard at registration
    /// time (registered as `shard_occupancy:shard<i>`).
    pub const SHARD_OCCUPANCY: &str = "shard_occupancy";
    /// Sharded runtime: histogram of sampled shard-inbox queue depths.
    pub const SHARD_QUEUE_DEPTH: &str = "shard_queue_depth";
    /// Sharded runtime: timers fired from the per-shard timer wheels.
    pub const SHARD_TIMER_FIRES: &str = "shard_timer_fires";
    /// Sharded runtime: frames dropped because the destination group node
    /// was crashed, unknown, or the group envelope failed to parse.
    pub const SHARD_UNDELIVERABLE: &str = "shard_undeliverable";
    /// Multiplexed sharded TCP transport: connections established to
    /// peer endpoints (one socket pair carries every group).
    pub const MUX_CONNECTS: &str = "mux_connects";
    /// Multiplexed transport: connections re-established after a loss —
    /// a subset of [`MUX_CONNECTS`].
    pub const MUX_RECONNECTS: &str = "mux_reconnects";
    /// Multiplexed transport: group-enveloped frames handed to the wire.
    pub const MUX_FRAMES_SENT: &str = "mux_frames_sent";
    /// Multiplexed transport: payload bytes handed to the wire (framing
    /// overhead excluded).
    pub const MUX_BYTES_SENT: &str = "mux_bytes_sent";
    /// Multiplexed transport: `write(2)` calls issued; the ratio
    /// [`MUX_FRAMES_SENT`]` / MUX_WRITE_SYSCALLS` is the write-coalescing
    /// factor (frames per syscall).
    pub const MUX_WRITE_SYSCALLS: &str = "mux_write_syscalls";
    /// Multiplexed transport: readiness-poll iterations of the reactor.
    pub const MUX_POLL_ROUNDS: &str = "mux_poll_rounds";
    /// Multiplexed transport: reads deferred because a decoded frame is
    /// still waiting for shard-inbox space (inbound backpressure: the
    /// socket's receive window pushes back on the peer).
    pub const MUX_READ_STALLS: &str = "mux_read_stalls";
    /// Multiplexed transport: frames whose group envelope failed to
    /// parse; the frame is dropped but the length-prefixed stream stays
    /// in sync.
    pub const MUX_BAD_FRAMES: &str = "mux_bad_frames";
    /// Order server: HTTP requests served (every status code).
    pub const SERVE_REQUESTS: &str = "serve_requests";
    /// Order server: requests answered `429` because the target group's
    /// pending-update queue was at `pending_updates_max` (the HTTP face
    /// of the coordinator's backpressure).
    pub const SERVE_BACKPRESSURE_429: &str = "serve_backpressure_429";
    /// Order server: update requests that reached a terminal outcome and
    /// installed.
    pub const SERVE_INSTALLED: &str = "serve_installed";
    /// Order server: update requests that reached a terminal outcome and
    /// were vetoed/aborted (the validation-veto race surfacing as `409`
    /// or a failed ticket).
    pub const SERVE_VETOED: &str = "serve_vetoed";
    /// Histogram: end-to-end request latency in milliseconds for
    /// synchronous-mode calls (client send → outcome known). Milliseconds
    /// fit the bucket ladder; exact-sample percentiles in finer units
    /// belong to the load driver, not the live histogram.
    pub const SERVE_LATENCY_MS_SYNC: &str = "serve_latency_ms_sync";
    /// Histogram: submit→terminal-ticket latency in milliseconds for
    /// deferred-synchronous calls (includes `/tickets/:id` polling).
    pub const SERVE_LATENCY_MS_DEFERRED: &str = "serve_latency_ms_deferred";
    /// Histogram: submit→terminal-ticket latency in milliseconds for
    /// asynchronous calls (outcome observed by opportunistic polling).
    pub const SERVE_LATENCY_MS_ASYNC: &str = "serve_latency_ms_async";

    /// Returns the metric key carrying a `group` label for `name`:
    /// `<name>|group=<g>`. [`crate::MetricsSnapshot::to_prometheus`]
    /// renders such keys as a Prometheus `group` label (aggregating
    /// instead when a family's group cardinality exceeds the cap).
    pub fn with_group(name: &str, group: u64) -> String {
        format!("{name}|group={group}")
    }
}

/// A cheap, shareable handle bundling a metrics registry and an optional
/// trace sink.
///
/// `Telemetry::default()` is the opt-out state: metrics still accumulate
/// (they cost one mutex-guarded map bump) but no trace events are built or
/// recorded. Attach a sink with [`Telemetry::with_sink`] or
/// [`Telemetry::set_sink`] to turn on the flight recorder.
#[derive(Clone, Default)]
pub struct Telemetry {
    metrics: MetricsRegistry,
    sink: Option<Arc<dyn TraceSink>>,
}

impl Telemetry {
    /// Creates a handle with a fresh registry and no trace sink.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Creates a handle recording trace events into `sink`.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Telemetry {
        Telemetry {
            metrics: MetricsRegistry::default(),
            sink: Some(sink),
        }
    }

    /// Attaches (or replaces) the trace sink.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// The underlying metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Returns `true` when a trace sink is attached.
    pub fn tracing_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Increments counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.metrics.add(name, 1);
    }

    /// Increments counter `name` by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        self.metrics.add(name, delta);
    }

    /// Records `value_ms` (virtual milliseconds) into histogram `name`.
    pub fn observe_ms(&self, name: &str, value_ms: u64) {
        self.metrics.observe(name, value_ms);
    }

    /// Records a trace event if a sink is attached.
    ///
    /// `detail` is a closure so the no-sink path never formats the string —
    /// the instrumentation cost without a sink is one `Option` check.
    pub fn trace(
        &self,
        time_ms: u64,
        party: &str,
        span: &str,
        phase: &str,
        detail: impl FnOnce() -> String,
    ) {
        self.trace_span(time_ms, party, span, phase, SpanIds::default(), detail);
    }

    /// Records a trace event stamped with causal ids if a sink is attached.
    ///
    /// Like [`Telemetry::trace`], the no-sink path never formats `detail`.
    /// `ids` carries the episode identity a coordinator allocated for the
    /// message (or timer) it is currently handling; `SpanIds::default()`
    /// marks the event untraced.
    pub fn trace_span(
        &self,
        time_ms: u64,
        party: &str,
        span: &str,
        phase: &str,
        ids: SpanIds,
        detail: impl FnOnce() -> String,
    ) {
        if let Some(sink) = &self.sink {
            sink.record(TraceEvent {
                time_ms,
                party: party.to_string(),
                span: span.to_string(),
                phase: phase.to_string(),
                detail: detail(),
                trace_id: ids.trace_id,
                span_id: ids.span_id,
                parent_span: ids.parent_span,
            });
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("tracing_enabled", &self.tracing_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_handle_counts_but_does_not_trace() {
        let tel = Telemetry::new();
        assert!(!tel.tracing_enabled());
        tel.inc(names::ROUNDS_STARTED);
        let mut formatted = false;
        tel.trace(1, "a", "state_run", "propose", || {
            formatted = true;
            String::new()
        });
        assert!(!formatted, "no-sink path must not format details");
        assert_eq!(tel.metrics().snapshot().counter(names::ROUNDS_STARTED), 1);
    }

    #[test]
    fn sink_receives_events() {
        let ring = Arc::new(RingRecorder::new(8));
        let tel = Telemetry::with_sink(ring.clone());
        tel.trace(7, "org1", "net", "send", || "to=org2".to_string());
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time_ms, 7);
        assert_eq!(events[0].party, "org1");
        assert_eq!(events[0].detail, "to=org2");
    }

    #[test]
    fn clones_share_the_registry() {
        let tel = Telemetry::new();
        let clone = tel.clone();
        clone.inc(names::RETRANSMITS);
        assert_eq!(tel.metrics().snapshot().counter(names::RETRANSMITS), 1);
    }
}
