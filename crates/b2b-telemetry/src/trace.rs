//! The protocol flight recorder: span/event tracing with pluggable sinks.
//!
//! A [`TraceEvent`] is one timestamped step of a protocol span — e.g. span
//! `state_run`, phase `propose` — stamped with *virtual* milliseconds, never
//! wall-clock, so recordings of a seeded simulation are byte-identical
//! across reruns. Sinks implement [`TraceSink`]; the crate ships a bounded
//! in-memory [`RingRecorder`] (the flight recorder proper) and a
//! [`LineWriter`] that streams formatted lines into any `io::Write`.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// One recorded protocol step.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time of the event in milliseconds.
    pub time_ms: u64,
    /// The party on which the event occurred.
    pub party: String,
    /// Span name, e.g. `state_run`, `membership`, `recovery`, `net`.
    pub span: String,
    /// Phase within the span, e.g. `propose`, `vote_collect`, `decide`.
    pub phase: String,
    /// Deterministic free-form detail (run labels, peers, sequence numbers).
    pub detail: String,
    /// The causal DAG this event belongs to; 0 = untraced (the pre-tracing
    /// rendering and assembly behaviour).
    pub trace_id: u64,
    /// The local span the event was recorded under (0 when untraced).
    pub span_id: u64,
    /// The (possibly remote) span that caused this one (0 for roots).
    pub parent_span: u64,
}

impl TraceEvent {
    /// Renders the canonical single-line form used by [`LineWriter`].
    ///
    /// Untraced events (`trace_id == 0`) render exactly as they did before
    /// causal ids existed; traced events append the id triple.
    pub fn render_line(&self) -> String {
        let mut line = if self.detail.is_empty() {
            format!(
                "t={:>6} {:<8} {}/{}",
                self.time_ms, self.party, self.span, self.phase
            )
        } else {
            format!(
                "t={:>6} {:<8} {}/{} {}",
                self.time_ms, self.party, self.span, self.phase, self.detail
            )
        };
        if self.trace_id != 0 {
            line.push_str(&format!(
                " [trace={:016x} span={:016x} parent={:016x}]",
                self.trace_id, self.span_id, self.parent_span
            ));
        }
        line
    }
}

/// Receives trace events. Implementations must be cheap and infallible —
/// instrumentation points fire inside protocol hot paths.
pub trait TraceSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: TraceEvent);
}

/// A sink that discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _event: TraceEvent) {}
}

/// A bounded in-memory recorder keeping the most recent `capacity` events.
///
/// This is the flight recorder used to debug adversary tests: run the seeded
/// simulation, then read back [`RingRecorder::events`] — identical runs give
/// identical buffers.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    inner: Mutex<RingInner>,
}

#[derive(Debug, Default)]
struct RingInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingRecorder {
    /// Creates a recorder retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingRecorder {
        RingRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner::default()),
        }
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.events.iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.events.len()
    }

    /// Returns `true` if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.dropped
    }

    /// Clears the buffer (the dropped count too).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.events.clear();
        inner.dropped = 0;
    }

    /// Renders all retained events, one canonical line each.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for event in &inner.events {
            out.push_str(&event.render_line());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingRecorder {
    fn record(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }
}

/// A sink that writes each event as one formatted line.
///
/// Useful for piping a live trace to stderr or a file:
///
/// ```
/// use b2b_telemetry::{LineWriter, TraceSink, TraceEvent};
/// let sink = LineWriter::new(Vec::new());
/// sink.record(TraceEvent {
///     time_ms: 5,
///     party: "org1".into(),
///     span: "net".into(),
///     phase: "send".into(),
///     detail: "to=org2".into(),
///     ..TraceEvent::default()
/// });
/// let bytes = sink.into_inner();
/// assert!(String::from_utf8(bytes).unwrap().contains("net/send"));
/// ```
pub struct LineWriter<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> LineWriter<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> LineWriter<W> {
        LineWriter {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<W: Write + Send> TraceSink for LineWriter<W> {
    fn record(&self, event: TraceEvent) {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Sinks are infallible by contract; a failed write drops the line.
        let _ = writeln!(writer, "{}", event.render_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, detail: &str) -> TraceEvent {
        TraceEvent {
            time_ms: t,
            party: "p".to_string(),
            span: "s".to_string(),
            phase: "ph".to_string(),
            detail: detail.to_string(),
            ..TraceEvent::default()
        }
    }

    #[test]
    fn traced_events_render_their_id_triple() {
        let mut e = ev(3, "x");
        assert!(!e.render_line().contains("trace="));
        e.trace_id = 0xab;
        e.span_id = 0xcd;
        e.parent_span = 0xef;
        let line = e.render_line();
        assert!(line.contains("trace=00000000000000ab"));
        assert!(line.contains("span=00000000000000cd"));
        assert!(line.contains("parent=00000000000000ef"));
    }

    #[test]
    fn ring_keeps_most_recent() {
        let ring = RingRecorder::new(2);
        assert!(ring.is_empty());
        ring.record(ev(1, "a"));
        ring.record(ev(2, "b"));
        ring.record(ev(3, "c"));
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].detail, "b");
        assert_eq!(events[1].detail, "c");
        assert_eq!(ring.dropped(), 1);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn line_writer_formats_events() {
        let sink = LineWriter::new(Vec::new());
        sink.record(ev(12, "x=1"));
        sink.record(ev(13, ""));
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("t=    12"));
        assert!(lines[0].contains("s/ph x=1"));
        assert!(lines[1].ends_with("s/ph"));
    }

    #[test]
    fn events_serialize_deterministically() {
        let a = ev(1, "d");
        let json = serde_json::to_string(&a).expect("serializes");
        let b: TraceEvent = serde_json::from_str(&json).expect("parses");
        assert_eq!(a, b);
        assert_eq!(json, serde_json::to_string(&b).expect("serializes"));
    }
}
