//! Deterministic metrics: named counters and virtual-time histograms.
//!
//! The registry is a `Clone + Send + Sync` handle over a mutex-guarded
//! `BTreeMap`, so iteration order — and therefore every exporter's output —
//! is deterministic. Values are only ever fed from virtual [`u64`]
//! milliseconds or event counts; the registry itself never reads a clock.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Upper bounds (inclusive) of the histogram buckets, in virtual ms.
///
/// A 1-2-5 ladder wide enough for every experiment in the bench suite; the
/// final implicit bucket is unbounded.
pub const BUCKET_BOUNDS: [u64; 14] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10_000, 20_000,
];

/// Maximum distinct `group` label values a metric family may expose before
/// [`MetricsSnapshot::to_prometheus`] folds the excess into a single
/// `group="__overflow"` series.
///
/// A 10k-group process would otherwise serve a multi-megabyte `/metrics`
/// page with 10k time series per family — unusable for a scraper and a
/// cardinality bomb for any downstream TSDB. 64 keeps small multi-group
/// runs fully inspectable while capping the page size. Truncation is never
/// silent: the folded remainder stays visible under the overflow label and
/// the page carries a [`GROUP_LABEL_OVERFLOW`] counter of elided series.
pub const GROUP_CARDINALITY_CAP: usize = 64;

/// The reserved `group` label value carrying everything beyond
/// [`GROUP_CARDINALITY_CAP`]: the sum (counters) or merge (histograms) of
/// all elided per-group series, so family totals stay exact.
pub const GROUP_OVERFLOW_LABEL: &str = "__overflow";

/// Name of the synthetic counter `to_prometheus` emits when any family
/// overflowed the group-cardinality cap: the total number of per-group
/// series folded into [`GROUP_OVERFLOW_LABEL`] across all families.
/// Absent when nothing overflowed, so its mere presence is the alert.
pub const GROUP_LABEL_OVERFLOW: &str = "group_label_overflow";

/// A latency histogram over [`BUCKET_BOUNDS`] plus an overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket observation counts; `counts[i]` covers values up to and
    /// including `BUCKET_BOUNDS[i]`, the last entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: vec![0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean observed value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) at bucket resolution: the upper
    /// bound of the first bucket whose cumulative count reaches the
    /// target rank, clamped to the observed maximum (exact when the
    /// quantile falls in the overflow bucket). Returns 0 when empty.
    ///
    /// Because buckets are mergeable, quantiles computed on a merged
    /// histogram equal quantiles computed over the pooled observations —
    /// the property the fleet-wide sidecar aggregation relies on.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return match BUCKET_BOUNDS.get(i) {
                    Some(&bound) => bound.min(self.max),
                    None => self.max, // overflow bucket
                };
            }
        }
        self.max
    }

    /// Median (bucket resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket resolution).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shareable, deterministic metrics registry.
///
/// Cloning shares the underlying maps; use [`MetricsRegistry::snapshot`] for
/// a point-in-time copy and [`MetricsSnapshot::merge`] for fleet-wide
/// aggregation.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.counters.get_mut(name) {
            Some(slot) => *slot += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Increments counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Records `value` into histogram `name`, creating it if absent.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Returns the current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Takes a point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            counters: inner.counters.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Folds a snapshot into this registry (fleet-wide aggregation).
    pub fn merge_snapshot(&self, snap: &MetricsSnapshot) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for (name, value) in &snap.counters {
            *inner.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &snap.histograms {
            inner
                .histograms
                .entry(name.clone())
                .or_default()
                .merge(hist);
        }
    }
}

/// A point-in-time, serializable copy of a registry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values keyed by name, sorted.
    pub counters: BTreeMap<String, u64>,
    /// Histograms keyed by name, sorted.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Returns counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Returns histogram `name` if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self` (fleet-wide aggregation).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Serializes the snapshot to deterministic JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Parses a snapshot from JSON produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(json: &str) -> Result<MetricsSnapshot, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Returns a copy of the snapshot with every metric key rewritten to
    /// carry a `group` label (`<name>|group=<g>`, the convention
    /// [`MetricsSnapshot::to_prometheus`] renders as a Prometheus label).
    /// Keys that already carry a group label are left untouched, so
    /// relabelling is idempotent per group. This is how a multi-group
    /// harness folds per-group registries into one labelled exposition
    /// off the hot path: each group keeps a plain registry, and only the
    /// export pays for the label strings.
    pub fn with_group_label(&self, group: u64) -> MetricsSnapshot {
        let label = |name: &str| {
            if name.contains("|group=") {
                name.to_string()
            } else {
                format!("{name}|group={group}")
            }
        };
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (label(k), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (label(k), h.clone()))
                .collect(),
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): every counter as a `counter`, every histogram as a
    /// cumulative-bucket `histogram` with `_sum` and `_count` series.
    ///
    /// Metric names are prefixed `b2b_` and sanitized to the Prometheus
    /// charset (`[a-zA-Z0-9_]`); iteration order is the registry's sorted
    /// order, so the output is deterministic.
    ///
    /// Keys of the form `<name>|group=<g>` (see
    /// [`MetricsSnapshot::with_group_label`]) render as a `group` label on
    /// the family `<name>` — up to [`GROUP_CARDINALITY_CAP`] distinct
    /// groups per family. Beyond the cap the first `cap` groups (sorted)
    /// stay labelled and the remainder is folded into one explicit
    /// `group="__overflow"` series ([`GROUP_OVERFLOW_LABEL`]), with a
    /// page-level [`GROUP_LABEL_OVERFLOW`] counter of elided series — so a
    /// 10k-group process still serves a scrapeable `/metrics` page *and*
    /// operators can see that (and how much) truncation happened.
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_with_cap(GROUP_CARDINALITY_CAP)
    }

    /// [`MetricsSnapshot::to_prometheus`] with an explicit per-family
    /// group-cardinality cap.
    pub fn to_prometheus_with_cap(&self, cap: usize) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 4);
            out.push_str("b2b_");
            for c in name.chars() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        fn escape_label(value: &str) -> String {
            let mut out = String::with_capacity(value.len());
            for c in value.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out
        }
        /// Splits `<name>|group=<g>` into `(name, Some(g))`.
        fn split_group(key: &str) -> (&str, Option<&str>) {
            match key.split_once("|group=") {
                Some((base, g)) => (base, Some(g)),
                None => (key, None),
            }
        }
        // Families in sorted base-name order; within a family the
        // unlabelled series first, then groups sorted (None < Some).
        let mut counter_families: BTreeMap<&str, Vec<(Option<&str>, u64)>> = BTreeMap::new();
        for (key, value) in &self.counters {
            let (base, group) = split_group(key);
            counter_families
                .entry(base)
                .or_default()
                .push((group, *value));
        }
        let mut hist_families: BTreeMap<&str, Vec<(Option<&str>, &Histogram)>> = BTreeMap::new();
        for (key, h) in &self.histograms {
            let (base, group) = split_group(key);
            hist_families.entry(base).or_default().push((group, h));
        }

        let mut out = String::new();
        // Per-group series folded into `group="__overflow"` across every
        // family, surfaced at the end of the page as the
        // `group_label_overflow` counter.
        let mut overflowed_series = 0usize;
        for (base, mut series) in counter_families {
            let name = sanitize(base);
            let _ = writeln!(out, "# TYPE {name} counter");
            let groups = series.iter().filter(|(g, _)| g.is_some()).count();
            series.sort();
            if groups > cap {
                overflowed_series += groups - cap;
                let _ = writeln!(
                    out,
                    "# {name}: {} of {groups} group series folded into group=\"{GROUP_OVERFLOW_LABEL}\" (cap {cap})",
                    groups - cap
                );
                let mut labelled = 0usize;
                let mut overflow_total = 0u64;
                for (group, value) in series {
                    match group {
                        None => {
                            let _ = writeln!(out, "{name} {value}");
                        }
                        Some(g) if labelled < cap => {
                            labelled += 1;
                            let _ =
                                writeln!(out, "{name}{{group=\"{}\"}} {value}", escape_label(g));
                        }
                        Some(_) => overflow_total += value,
                    }
                }
                let _ = writeln!(
                    out,
                    "{name}{{group=\"{GROUP_OVERFLOW_LABEL}\"}} {overflow_total}"
                );
            } else {
                for (group, value) in series {
                    match group {
                        Some(g) => {
                            let _ =
                                writeln!(out, "{name}{{group=\"{}\"}} {value}", escape_label(g));
                        }
                        None => {
                            let _ = writeln!(out, "{name} {value}");
                        }
                    }
                }
            }
        }
        for (base, mut series) in hist_families {
            let name = sanitize(base);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let groups = series.iter().filter(|(g, _)| g.is_some()).count();
            series.sort_by_key(|(g, _)| *g);
            let merged;
            if groups > cap {
                overflowed_series += groups - cap;
                // Keep the first `cap` sorted groups labelled, merge the
                // rest into the explicit overflow series.
                let mut total = Histogram::default();
                let mut kept: Vec<(Option<&str>, &Histogram)> = Vec::with_capacity(cap + 1);
                let mut labelled = 0usize;
                for (group, h) in series {
                    match group {
                        None => kept.push((None, h)),
                        Some(_) if labelled < cap => {
                            labelled += 1;
                            kept.push((group, h));
                        }
                        Some(_) => total.merge(h),
                    }
                }
                let _ = writeln!(
                    out,
                    "# {name}: {} of {groups} group series folded into group=\"{GROUP_OVERFLOW_LABEL}\" (cap {cap})",
                    groups - cap
                );
                merged = total;
                kept.push((Some(GROUP_OVERFLOW_LABEL), &merged));
                series = kept;
            }
            for (group, h) in series {
                let label = |le: &str| match group {
                    Some(g) => format!("{{group=\"{}\",le=\"{le}\"}}", escape_label(g)),
                    None => format!("{{le=\"{le}\"}}"),
                };
                let mut cumulative = 0u64;
                for (i, c) in h.counts.iter().enumerate() {
                    cumulative += c;
                    match BUCKET_BOUNDS.get(i) {
                        Some(bound) => {
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                label(&bound.to_string())
                            );
                        }
                        None => {
                            let _ = writeln!(out, "{name}_bucket{} {cumulative}", label("+Inf"));
                        }
                    }
                }
                match group {
                    Some(g) => {
                        let g = escape_label(g);
                        let _ = writeln!(out, "{name}_sum{{group=\"{g}\"}} {}", h.sum);
                        let _ = writeln!(out, "{name}_count{{group=\"{g}\"}} {}", h.count);
                    }
                    None => {
                        let _ = writeln!(out, "{name}_sum {}", h.sum);
                        let _ = writeln!(out, "{name}_count {}", h.count);
                    }
                }
            }
        }
        if overflowed_series > 0 {
            let name = sanitize(GROUP_LABEL_OVERFLOW);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {overflowed_series}");
        }
        out
    }

    /// Renders a human-readable metrics table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let width = self
                .counters
                .keys()
                .map(|k| k.len())
                .max()
                .unwrap_or(0)
                .max("counter".len());
            let _ = writeln!(out, "{:<width$}  value", "counter");
            let _ = writeln!(out, "{:-<width$}  -----", "");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<width$}  {value}");
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let width = self
                .histograms
                .keys()
                .map(|k| k.len())
                .max()
                .unwrap_or(0)
                .max("histogram".len());
            let _ = writeln!(
                out,
                "{:<width$}  count      sum      min      max     mean      p50      p95      p99",
                "histogram"
            );
            let _ = writeln!(
                out,
                "{:-<width$}  -----      ---      ---      ---     ----      ---      ---      ---",
                ""
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name:<width$}  {:>5}  {:>7}  {:>7}  {:>7}  {:>7.1}  {:>7}  {:>7}  {:>7}",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99()
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.inc("a");
        reg.add("a", 2);
        reg.inc("b");
        assert_eq!(reg.counter("a"), 3);
        assert_eq!(reg.counter("b"), 1);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn histogram_bucket_edges() {
        let mut h = Histogram::default();
        // Exactly on a bound goes into that bucket (inclusive upper bound).
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        assert_eq!(h.counts[0], 2, "0 and 1 share the first bucket");
        assert_eq!(h.counts[1], 1, "2 is on the second bound");
        assert_eq!(h.counts[2], 1, "3 lands in the (2,5] bucket");
        // Overflow bucket.
        h.observe(u64::MAX);
        assert_eq!(*h.counts.last().expect("overflow bucket"), 1);
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        // Saturating sum must not wrap.
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn histogram_merge_tracks_extremes() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.observe(5);
        b.observe(100);
        b.observe(1);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 100);
        assert_eq!(a.sum, 106);
        // Merging an empty histogram changes nothing.
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, before);
    }

    #[test]
    fn registry_merge_is_fleet_aggregation() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.inc("rounds_started");
        a.observe("round_latency_ms", 10);
        b.add("rounds_started", 2);
        b.inc("retransmits");
        b.observe("round_latency_ms", 30);

        let mut fleet = a.snapshot();
        fleet.merge(&b.snapshot());
        assert_eq!(fleet.counter("rounds_started"), 3);
        assert_eq!(fleet.counter("retransmits"), 1);
        let h = fleet.histogram("round_latency_ms").expect("merged");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 40);
    }

    #[test]
    fn quantiles_at_bucket_resolution() {
        let mut h = Histogram::default();
        assert_eq!(h.p50(), 0, "empty histogram quantiles are 0");
        for v in [1u64, 2, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.p50(), 5, "rank 3 of 5 lands in the (2,5] bucket");
        assert_eq!(h.p95(), 100);
        assert_eq!(h.p99(), 100);
        assert_eq!(h.quantile(0.0), 1, "q=0 is the first occupied bucket");
        // A quantile in the overflow bucket reports the exact max.
        let mut o = Histogram::default();
        o.observe(50_000);
        assert_eq!(o.p50(), 50_000);
        // The bound is clamped to the observed max for sparse data.
        let mut s = Histogram::default();
        s.observe(3);
        assert_eq!(s.p99(), 3, "clamped below the 5 ms bucket bound");
    }

    #[test]
    fn quantiles_survive_merge() {
        // Percentiles of a merged histogram must equal percentiles of the
        // pooled observations — the mergeability contract.
        let observations_a = [1u64, 5, 9, 14, 200];
        let observations_b = [2u64, 800, 950, 1000, 7000];
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut pooled = Histogram::default();
        for v in observations_a {
            a.observe(v);
            pooled.observe(v);
        }
        for v in observations_b {
            b.observe(v);
            pooled.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, pooled);
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), pooled.quantile(q), "q={q}");
        }
        assert_eq!(a.p50(), 20, "rank 5 of 10 lands in the (14,20] bucket");
        assert_eq!(a.p99(), 7000);
    }

    #[test]
    fn prometheus_text_exposition() {
        let reg = MetricsRegistry::new();
        reg.add("rounds_started", 3);
        reg.inc("partition_drops:org1->org2");
        reg.observe("round_latency_ms", 1);
        reg.observe("round_latency_ms", 6);
        reg.observe("round_latency_ms", 90_000);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE b2b_rounds_started counter\nb2b_rounds_started 3\n"));
        // Illegal characters are sanitized to underscores.
        assert!(text.contains("b2b_partition_drops_org1__org2 1"));
        // Cumulative buckets: the le="1" bucket holds 1, le="10" holds 2,
        // +Inf holds all 3, and sum/count close the family.
        assert!(text.contains("# TYPE b2b_round_latency_ms histogram"));
        assert!(text.contains("b2b_round_latency_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("b2b_round_latency_ms_bucket{le=\"10\"} 2"));
        assert!(text.contains("b2b_round_latency_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("b2b_round_latency_ms_sum 90007"));
        assert!(text.contains("b2b_round_latency_ms_count 3"));
        // Deterministic bytes.
        assert_eq!(text, reg.snapshot().to_prometheus());
    }

    #[test]
    fn prometheus_group_labels_below_the_cap() {
        let g0 = MetricsRegistry::new();
        g0.add("rounds_started", 2);
        g0.observe("round_latency_ms", 1);
        let g1 = MetricsRegistry::new();
        g1.add("rounds_started", 5);
        g1.observe("round_latency_ms", 6);

        let mut fleet = g0.snapshot().with_group_label(0);
        fleet.merge(&g1.snapshot().with_group_label(1));
        // Relabelling is idempotent: already-labelled keys keep their group.
        assert_eq!(fleet.with_group_label(9), fleet);

        let text = fleet.to_prometheus();
        assert!(text.contains("# TYPE b2b_rounds_started counter"));
        assert!(text.contains("b2b_rounds_started{group=\"0\"} 2"));
        assert!(text.contains("b2b_rounds_started{group=\"1\"} 5"));
        assert!(text.contains("b2b_round_latency_ms_bucket{group=\"0\",le=\"1\"} 1"));
        assert!(text.contains("b2b_round_latency_ms_sum{group=\"1\"} 6"));
        assert!(text.contains("b2b_round_latency_ms_count{group=\"1\"} 1"));
        // One TYPE line per family, not per labelled series.
        assert_eq!(text.matches("# TYPE b2b_rounds_started counter").count(), 1);
        assert_eq!(
            text.matches("# TYPE b2b_round_latency_ms histogram")
                .count(),
            1
        );
    }

    #[test]
    fn prometheus_folds_overflow_above_the_cardinality_cap() {
        let mut fleet = MetricsSnapshot::default();
        for g in 0..10u64 {
            let reg = MetricsRegistry::new();
            reg.add("rounds_started", 1);
            reg.observe("round_latency_ms", g + 1);
            fleet.merge(&reg.snapshot().with_group_label(g));
        }
        let text = fleet.to_prometheus_with_cap(4);
        // The first `cap` sorted groups stay labelled...
        for g in 0..4 {
            assert!(text.contains(&format!("b2b_rounds_started{{group=\"{g}\"}} 1")));
        }
        // ...and the remainder is folded into an explicit overflow series,
        // never a silent unlabelled aggregate.
        assert!(text.contains("b2b_rounds_started{group=\"__overflow\"} 6\n"));
        assert!(!text.contains("b2b_rounds_started{group=\"9\"}"));
        assert!(text.contains(
            "# b2b_rounds_started: 6 of 10 group series folded into group=\"__overflow\" (cap 4)"
        ));
        // Histograms fold the same way: sum of groups 4..9 is 5+..+10 = 45.
        assert!(text.contains("b2b_round_latency_ms_sum{group=\"__overflow\"} 45"));
        assert!(text.contains("b2b_round_latency_ms_count{group=\"__overflow\"} 6"));
        assert!(text.contains("b2b_round_latency_ms_bucket{group=\"0\",le=\"1\"} 1"));
        // Both families overflowed 6 series each.
        assert!(text.contains("# TYPE b2b_group_label_overflow counter"));
        assert!(text.contains("b2b_group_label_overflow 12\n"));
        // Below the cap the same snapshot stays fully labelled.
        let labelled = fleet.to_prometheus_with_cap(64);
        assert!(labelled.contains("b2b_rounds_started{group=\"9\"} 1"));
        assert!(!labelled.contains("__overflow"));
    }

    #[test]
    fn prometheus_cap_boundary_exactly_at_and_one_past() {
        let build = |groups: u64| {
            let mut fleet = MetricsSnapshot::default();
            for g in 0..groups {
                let reg = MetricsRegistry::new();
                reg.add("rounds_started", 1);
                fleet.merge(&reg.snapshot().with_group_label(g));
            }
            fleet
        };
        // Exactly at the cap: every group labelled, no overflow machinery.
        let at = build(GROUP_CARDINALITY_CAP as u64).to_prometheus();
        assert!(at.contains(&format!(
            "b2b_rounds_started{{group=\"{}\"}} 1",
            GROUP_CARDINALITY_CAP - 1
        )));
        assert!(!at.contains("__overflow"));
        assert!(!at.contains("group_label_overflow"));
        // One past the cap: exactly one series folds and the counter says so.
        let past = build(GROUP_CARDINALITY_CAP as u64 + 1).to_prometheus();
        assert!(past.contains("b2b_rounds_started{group=\"__overflow\"} 1\n"));
        assert!(past.contains("b2b_group_label_overflow 1\n"));
        // Totals stay exact: labelled series + overflow = all groups.
        let labelled = past.matches("b2b_rounds_started{group=").count();
        assert_eq!(labelled, GROUP_CARDINALITY_CAP + 1); // cap labelled + __overflow
    }

    #[test]
    fn json_roundtrip_is_stable() {
        let reg = MetricsRegistry::new();
        reg.inc("z");
        reg.inc("a");
        reg.observe("lat", 7);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parses");
        assert_eq!(back, snap);
        // Deterministic bytes: sorted keys, stable rendering.
        assert_eq!(json, back.to_json());
        assert!(json.find("\"a\"").expect("a") < json.find("\"z\"").expect("z"));
    }

    #[test]
    fn table_renders_counters_and_histograms() {
        let reg = MetricsRegistry::new();
        reg.add("rounds_started", 4);
        reg.observe("round_latency_ms", 12);
        let table = reg.snapshot().render_table();
        assert!(table.contains("rounds_started"));
        assert!(table.contains("round_latency_ms"));
        assert!(table.contains('4'));
        assert_eq!(
            MetricsSnapshot::default().render_table(),
            "(no metrics recorded)\n"
        );
    }
}
