//! The causal trace context carried inside every wire frame.
//!
//! A [`TraceContext`] is the cross-node half of distributed tracing: the
//! sender stamps its current trace id, the span that caused the send, and
//! a hop counter into the frame header; the receiver opens a child span
//! under that parent. Trace ids are derived from protocol *content* (run
//! digests, request digests) rather than from any per-node RNG, so the
//! same scenario produces the same trace ids on the deterministic
//! simulator and over real TCP sockets alike.
//!
//! `trace_id == 0` is the reserved "untraced" sentinel ([`TraceContext::NONE`]);
//! frames carrying it cost nothing downstream and assemble into no trace.

/// Number of bytes a [`TraceContext`] occupies on the wire:
/// `trace_id (8) | parent_span (8) | hop (1)`.
pub const WIRE_LEN: usize = 17;

/// Causal context propagated from a sender's span to the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Identifies the causal DAG this frame belongs to (0 = untraced).
    pub trace_id: u64,
    /// The sender-side span that caused this frame (0 for roots).
    pub parent_span: u64,
    /// Causal distance from the root span, saturating at 255.
    pub hop: u8,
}

impl TraceContext {
    /// The untraced sentinel: all zeroes on the wire.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        parent_span: 0,
        hop: 0,
    };

    /// A root context opening trace `trace_id` (no parent, hop 0).
    pub fn root(trace_id: u64) -> TraceContext {
        TraceContext {
            trace_id,
            parent_span: 0,
            hop: 0,
        }
    }

    /// The context stamped on frames sent *from* span `parent_span` of the
    /// same trace: one causal hop further from the root.
    pub fn child(&self, parent_span: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span,
            hop: self.hop.saturating_add(1),
        }
    }

    /// `true` for the untraced sentinel.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }

    /// Serializes to the fixed wire form.
    pub fn encode(&self) -> [u8; WIRE_LEN] {
        let mut out = [0u8; WIRE_LEN];
        out[0..8].copy_from_slice(&self.trace_id.to_be_bytes());
        out[8..16].copy_from_slice(&self.parent_span.to_be_bytes());
        out[16] = self.hop;
        out
    }

    /// Parses the fixed wire form; `None` if `raw` is too short.
    pub fn decode(raw: &[u8]) -> Option<TraceContext> {
        if raw.len() < WIRE_LEN {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_be_bytes(raw[0..8].try_into().ok()?),
            parent_span: u64::from_be_bytes(raw[8..16].try_into().ok()?),
            hop: raw[16],
        })
    }
}

/// The identity stamped onto trace events recorded during one episode:
/// which trace, which span, and which remote span caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanIds {
    /// The causal DAG the event belongs to (0 = untraced).
    pub trace_id: u64,
    /// The span the event was recorded under.
    pub span_id: u64,
    /// The (possibly remote) parent span (0 for roots).
    pub parent_span: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef,
            parent_span: 0xfeed_face_dead_beef,
            hop: 7,
        };
        let bytes = ctx.encode();
        assert_eq!(bytes.len(), WIRE_LEN);
        assert_eq!(TraceContext::decode(&bytes), Some(ctx));
        assert_eq!(TraceContext::decode(&bytes[..WIRE_LEN - 1]), None);
    }

    #[test]
    fn none_is_all_zeroes() {
        assert!(TraceContext::NONE.is_none());
        assert_eq!(TraceContext::NONE.encode(), [0u8; WIRE_LEN]);
        assert_eq!(
            TraceContext::decode(&[0u8; WIRE_LEN]),
            Some(TraceContext::NONE)
        );
    }

    #[test]
    fn child_advances_the_hop_and_keeps_the_trace() {
        let root = TraceContext::root(42);
        assert!(!root.is_none());
        let child = root.child(9);
        assert_eq!(child.trace_id, 42);
        assert_eq!(child.parent_span, 9);
        assert_eq!(child.hop, 1);
        // The hop counter saturates instead of wrapping.
        let deep = TraceContext {
            trace_id: 1,
            parent_span: 2,
            hop: u8::MAX,
        };
        assert_eq!(deep.child(3).hop, u8::MAX);
    }
}
