//! The trace assembler: merges per-node flight recorders into per-round
//! distributed traces and exports them.
//!
//! Every traced [`TraceEvent`] carries `(trace_id, span_id, parent_span)`
//! stamped by the coordinators (ids are derived from protocol content, so
//! the same scenario yields the same ids on any fabric). [`assemble`]
//! groups events into [`DistributedTrace`]s — one per coordination round,
//! membership change or recovery — and the exporters render them as:
//!
//! - [`DistributedTrace::canonical_dag`] — a time-free structural string of
//!   the causal DAG, used to pin that the simulator and the TCP fabric
//!   reconstruct the *same* causality for the same scenario;
//! - [`DistributedTrace::ascii_timeline`] — a human-readable timeline with
//!   causal indentation;
//! - [`chrome_trace_json`] — the Chrome trace-event JSON format
//!   (`chrome://tracing` / Perfetto), with flow arrows for causal edges.

use crate::trace::TraceEvent;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One causal DAG assembled across every node that took part in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedTrace {
    /// The content-derived trace id shared by all member events.
    pub trace_id: u64,
    /// Member events, sorted by `(time_ms, party, span_id, span, phase)`.
    pub events: Vec<TraceEvent>,
}

/// One span of a distributed trace: all events recorded under a span id.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SpanInfo {
    party: String,
    parent_span: u64,
    /// Sorted unique `span/phase` labels of the member events.
    labels: BTreeSet<String>,
    first_ms: u64,
    last_ms: u64,
}

/// Groups traced events (`trace_id != 0`) into distributed traces, sorted
/// by trace id. Untraced events are ignored, which automatically excludes
/// net-layer retransmission/dedup noise from assembled traces.
pub fn assemble(events: &[TraceEvent]) -> Vec<DistributedTrace> {
    let mut by_trace: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    for e in events {
        if e.trace_id != 0 {
            by_trace.entry(e.trace_id).or_default().push(e.clone());
        }
    }
    by_trace
        .into_iter()
        .map(|(trace_id, mut events)| {
            events.sort_by(|a, b| {
                (a.time_ms, &a.party, a.span_id, &a.span, &a.phase, &a.detail)
                    .cmp(&(b.time_ms, &b.party, b.span_id, &b.span, &b.phase, &b.detail))
            });
            DistributedTrace { trace_id, events }
        })
        .collect()
}

impl DistributedTrace {
    /// Per-span bookkeeping keyed by span id.
    fn spans(&self) -> BTreeMap<u64, SpanInfo> {
        let mut spans: BTreeMap<u64, SpanInfo> = BTreeMap::new();
        for e in &self.events {
            let info = spans.entry(e.span_id).or_insert_with(|| SpanInfo {
                party: e.party.clone(),
                parent_span: e.parent_span,
                labels: BTreeSet::new(),
                first_ms: e.time_ms,
                last_ms: e.time_ms,
            });
            info.labels.insert(format!("{}/{}", e.span, e.phase));
            info.first_ms = info.first_ms.min(e.time_ms);
            info.last_ms = info.last_ms.max(e.time_ms);
            if info.parent_span == 0 {
                info.parent_span = e.parent_span;
            }
        }
        spans
    }

    /// The parties that recorded at least one event, sorted.
    pub fn parties(&self) -> Vec<String> {
        let mut parties: Vec<String> = self
            .events
            .iter()
            .map(|e| e.party.clone())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        parties.sort();
        parties
    }

    /// Renders the causal DAG as a canonical, time-free string.
    ///
    /// Each node is `party[label,…]`, children are rendered in sorted
    /// order inside `(…)`, and timestamps, span ids and details are all
    /// omitted — so two runs of the same scenario over different fabrics
    /// (different wall clocks, different locally-allocated span ids)
    /// produce byte-identical canonical DAGs as long as their *causality*
    /// matches.
    pub fn canonical_dag(&self) -> String {
        let spans = self.spans();
        let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut roots: Vec<u64> = Vec::new();
        for (id, info) in &spans {
            if info.parent_span != 0 && spans.contains_key(&info.parent_span) {
                children.entry(info.parent_span).or_default().push(*id);
            } else {
                roots.push(*id);
            }
        }
        fn render(
            id: u64,
            spans: &BTreeMap<u64, SpanInfo>,
            children: &BTreeMap<u64, Vec<u64>>,
            depth: usize,
        ) -> String {
            let info = &spans[&id];
            let labels: Vec<&str> = info.labels.iter().map(String::as_str).collect();
            let mut out = format!("{}[{}]", info.party, labels.join(","));
            // The hop counter bounds real traces; the depth guard only
            // protects the renderer against corrupt (cyclic) input.
            if depth < 64 {
                if let Some(kids) = children.get(&id) {
                    let mut rendered: Vec<String> = kids
                        .iter()
                        .map(|k| render(*k, spans, children, depth + 1))
                        .collect();
                    rendered.sort();
                    if !rendered.is_empty() {
                        let _ = write!(out, "({})", rendered.join(","));
                    }
                }
            }
            out
        }
        let mut rendered: Vec<String> = roots
            .iter()
            .map(|r| render(*r, &spans, &children, 0))
            .collect();
        rendered.sort();
        rendered.join("\n")
    }

    /// Renders a human-readable timeline: events in time order, indented
    /// by their span's causal depth from the root.
    pub fn ascii_timeline(&self) -> String {
        let spans = self.spans();
        // Depth of each span by walking parent links (bounded).
        let mut depth: BTreeMap<u64, usize> = BTreeMap::new();
        for id in spans.keys() {
            let mut d = 0usize;
            let mut cur = *id;
            while d < 64 {
                let parent = spans.get(&cur).map(|s| s.parent_span).unwrap_or(0);
                if parent == 0 || !spans.contains_key(&parent) {
                    break;
                }
                cur = parent;
                d += 1;
            }
            depth.insert(*id, d);
        }
        let mut out = format!("trace {:016x}\n", self.trace_id);
        for e in &self.events {
            let d = depth.get(&e.span_id).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "t={:>6} {:<10} {}{}/{}{}{}",
                e.time_ms,
                e.party,
                "  ".repeat(d),
                e.span,
                e.phase,
                if e.detail.is_empty() { "" } else { " " },
                e.detail
            );
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Exports traces as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto "JSON Array Format" wrapped in a `traceEvents` object).
///
/// Each party becomes a process (with a `process_name` metadata event),
/// each span a `ph:"X"` complete event placed at its first event's
/// timestamp, and each causal parent→child edge a `ph:"s"` / `ph:"f"`
/// flow-event pair so the viewer draws the cross-node arrows. Timestamps
/// are microseconds (`time_ms × 1000`); everything is integer arithmetic
/// over deterministic inputs, so the output is byte-stable.
pub fn chrome_trace_json(traces: &[DistributedTrace]) -> String {
    let mut parties: BTreeSet<String> = BTreeSet::new();
    for t in traces {
        parties.extend(t.parties());
    }
    let pid_of: BTreeMap<&str, usize> = parties
        .iter()
        .enumerate()
        .map(|(i, p)| (p.as_str(), i))
        .collect();
    let mut events: Vec<String> = Vec::new();
    for (party, pid) in &pid_of {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(party)
        ));
    }
    for t in traces {
        let spans = t.spans();
        for (id, info) in &spans {
            let pid = pid_of[info.party.as_str()];
            let ts = info.first_ms * 1000;
            let dur = ((info.last_ms - info.first_ms) * 1000).max(1);
            let labels: Vec<&str> = info.labels.iter().map(String::as_str).collect();
            let name = labels
                .first()
                .and_then(|l| l.split('/').next())
                .unwrap_or("span");
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"trace-{:016x}\",\"ph\":\"X\",\
                 \"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"span\":\"{:016x}\",\"phases\":\"{}\"}}}}",
                json_escape(name),
                t.trace_id,
                id,
                json_escape(&labels.join(","))
            ));
        }
        // Flow arrows: one start/finish pair per causal edge, identified by
        // the child span id (unique within the trace).
        for (id, info) in &spans {
            let Some(parent) = spans.get(&info.parent_span) else {
                continue;
            };
            let ppid = pid_of[parent.party.as_str()];
            let cpid = pid_of[info.party.as_str()];
            events.push(format!(
                "{{\"name\":\"causal\",\"cat\":\"trace-{:016x}\",\"ph\":\"s\",\
                 \"ts\":{},\"pid\":{ppid},\"tid\":0,\"id\":{id}}}",
                t.trace_id,
                parent.first_ms * 1000
            ));
            events.push(format!(
                "{{\"name\":\"causal\",\"cat\":\"trace-{:016x}\",\"ph\":\"f\",\
                 \"bp\":\"e\",\"ts\":{},\"pid\":{cpid},\"tid\":0,\"id\":{id}}}",
                t.trace_id,
                info.first_ms * 1000
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, party: &str, span: &str, phase: &str, ids: (u64, u64, u64)) -> TraceEvent {
        TraceEvent {
            time_ms: t,
            party: party.to_string(),
            span: span.to_string(),
            phase: phase.to_string(),
            detail: String::new(),
            trace_id: ids.0,
            span_id: ids.1,
            parent_span: ids.2,
        }
    }

    /// A two-party round: org0's root span fans out to org1 and back.
    fn sample() -> Vec<TraceEvent> {
        vec![
            ev(1, "org0", "state_run", "propose", (7, 10, 0)),
            ev(2, "org1", "state_run", "respond", (7, 20, 10)),
            ev(3, "org0", "state_run", "decide", (7, 30, 20)),
            // Untraced net noise must be excluded from assembly.
            ev(2, "org0", "net", "retransmit", (0, 0, 0)),
            // A second, unrelated trace.
            ev(5, "org1", "membership", "connect", (9, 40, 0)),
        ]
    }

    #[test]
    fn assembly_groups_by_trace_and_drops_untraced() {
        let traces = assemble(&sample());
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].trace_id, 7);
        assert_eq!(traces[0].events.len(), 3);
        assert_eq!(traces[1].trace_id, 9);
        assert_eq!(traces[0].parties(), vec!["org0", "org1"]);
    }

    #[test]
    fn canonical_dag_is_structural_and_time_free() {
        let traces = assemble(&sample());
        let dag = traces[0].canonical_dag();
        assert_eq!(
            dag,
            "org0[state_run/propose](org1[state_run/respond](org0[state_run/decide]))"
        );
        // Shifting every timestamp (a different fabric's clock) and
        // renaming every span id (different local allocation) leaves the
        // canonical DAG unchanged.
        let mut shifted = sample();
        for e in &mut shifted {
            e.time_ms += 1000;
            if e.span_id != 0 {
                e.span_id += 500;
            }
            if e.parent_span != 0 {
                e.parent_span += 500;
            }
        }
        let traces2 = assemble(&shifted);
        assert_eq!(traces2[0].canonical_dag(), dag);
    }

    #[test]
    fn ascii_timeline_indents_by_causal_depth() {
        let traces = assemble(&sample());
        let text = traces[0].ascii_timeline();
        assert!(text.starts_with("trace 0000000000000007"));
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("state_run/propose"));
        assert!(lines[2].contains("  state_run/respond"));
        assert!(lines[3].contains("    state_run/decide"));
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let traces = assemble(&sample());
        let json = chrome_trace_json(&traces);
        // Parse it back through the vendored JSON decoder: structurally
        // valid JSON with the required trace-event keys.
        let doc: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let serde::Value::Map(fields) = &doc else {
            panic!("top level must be an object");
        };
        let (_, events) = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .expect("traceEvents key");
        let serde::Value::Seq(events) = events else {
            panic!("traceEvents must be an array");
        };
        // 2 process_name metadata + 4 spans + 2 flow edges × 2 = 10.
        assert_eq!(events.len(), 10);
        let mut phases = BTreeSet::new();
        for e in events {
            let serde::Value::Map(fields) = e else {
                panic!("each event must be an object");
            };
            let ph = fields
                .iter()
                .find(|(k, _)| k == "ph")
                .map(|(_, v)| v.clone())
                .expect("ph field");
            let serde::Value::Str(ph) = ph else {
                panic!("ph must be a string");
            };
            phases.insert(ph);
            assert!(fields.iter().any(|(k, _)| k == "pid"));
        }
        assert_eq!(
            phases.into_iter().collect::<Vec<_>>(),
            vec!["M", "X", "f", "s"]
        );
        // Determinism: rendering twice gives identical bytes.
        assert_eq!(json, chrome_trace_json(&traces));
    }
}
