//! Signature schemes: [`Signer`] / [`SigVerifier`] traits, the production
//! Ed25519 implementation, and an intentionally weak ablation-only signer.
//!
//! The paper (§4.2) requires "a signature scheme such that a signature by a
//! party on data is both verifiable and unforgeable". [`crate::KeyPair`]
//! (Ed25519) provides that. [`InsecureSigner`] exists solely so the
//! benchmark suite can measure what non-repudiation costs (experiment E4);
//! it is forgeable by construction and must never be used outside benches.

use crate::error::CryptoError;
use crate::hash::sha256_concat;
use crate::keys::PublicKey;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The signature scheme a [`Signature`] or [`PublicKey`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignatureScheme {
    /// Ed25519 (production scheme; unforgeable).
    Ed25519,
    /// Truncated-hash pseudo-signature. **Forgeable**: benchmarking only.
    Insecure,
}

impl SignatureScheme {
    /// A short, stable name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            SignatureScheme::Ed25519 => "ed25519",
            SignatureScheme::Insecure => "insecure",
        }
    }
}

/// A detached signature over a byte string.
///
/// Rendered in the paper's notation as `sig_P(x)`. Signatures appear inside
/// protocol messages and evidence records.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    scheme: SignatureScheme,
    bytes: Vec<u8>,
}

// Serialized with the signature bytes as one hex string rather than the
// derived JSON array of integers: like [`crate::Digest32`], signatures
// appear in every message and evidence record, and the dense form keeps
// both the wire frames and the structural serialization cost flat.
impl Serialize for Signature {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("scheme".to_string(), self.scheme.to_value()),
            (
                "bytes".to_string(),
                serde::Value::Str(hex::encode(&self.bytes)),
            ),
        ])
    }
}

impl Deserialize for Signature {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::Error::msg("Signature: expected object"))?;
        let field = |name: &str| {
            entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, val)| val)
                .ok_or_else(|| serde::Error::msg(format!("Signature: missing field {name}")))
        };
        let scheme = SignatureScheme::from_value(field("scheme")?)?;
        let bytes = match field("bytes")? {
            serde::Value::Str(s) => {
                hex::decode(s).map_err(|_| serde::Error::msg("Signature: bytes is not hex"))?
            }
            _ => return Err(serde::Error::msg("Signature: expected hex string bytes")),
        };
        Ok(Signature { scheme, bytes })
    }
}

impl Signature {
    /// Creates a signature value from raw scheme output.
    pub fn new(scheme: SignatureScheme, bytes: Vec<u8>) -> Signature {
        Signature { scheme, bytes }
    }

    /// The scheme that produced this signature.
    pub fn scheme(&self) -> SignatureScheme {
        self.scheme
    }

    /// The raw signature bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl crate::canonical::CanonicalEncode for Signature {
    fn encode(&self, enc: &mut crate::canonical::Encoder) {
        enc.put_u8(match self.scheme {
            SignatureScheme::Ed25519 => 1,
            SignatureScheme::Insecure => 2,
        });
        enc.put_bytes(&self.bytes);
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature({}, {}…)",
            self.scheme.name(),
            hex::encode(&self.bytes[..self.bytes.len().min(4)])
        )
    }
}

/// Types that can produce signatures binding a key-holder to data.
pub trait Signer: Send + Sync {
    /// Signs `msg`, returning a detached signature.
    fn sign(&self, msg: &[u8]) -> Signature;

    /// Returns the public (verification) key corresponding to this signer.
    fn public_key(&self) -> PublicKey;
}

impl<T: Signer + ?Sized> Signer for Box<T> {
    fn sign(&self, msg: &[u8]) -> Signature {
        (**self).sign(msg)
    }
    fn public_key(&self) -> PublicKey {
        (**self).public_key()
    }
}

/// Types that can verify signatures (public keys, key rings).
pub trait SigVerifier {
    /// Verifies `sig` over `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] when verification fails, or a
    /// scheme/format error when the signature is malformed.
    fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), CryptoError>;
}

/// A deliberately forgeable "signature" scheme for the crypto-overhead
/// ablation benchmark (experiment E4).
///
/// The signature is a truncated hash of `public key bytes || message`, so
/// anyone holding the public key can forge it. It exercises the same code
/// paths (sign on send, verify on receive) at negligible CPU cost, which is
/// exactly what the ablation needs to isolate Ed25519's contribution.
#[derive(Clone, Debug)]
pub struct InsecureSigner {
    key_id: [u8; 8],
}

impl InsecureSigner {
    /// Creates an insecure signer with the given 8-byte key identity.
    pub fn new(key_id: [u8; 8]) -> InsecureSigner {
        InsecureSigner { key_id }
    }

    /// Creates an insecure signer whose key identity derives from a seed.
    pub fn from_seed(seed: u64) -> InsecureSigner {
        InsecureSigner {
            key_id: seed.to_be_bytes(),
        }
    }
}

impl Signer for InsecureSigner {
    fn sign(&self, msg: &[u8]) -> Signature {
        let digest = sha256_concat(&[&self.key_id, msg]);
        Signature::new(SignatureScheme::Insecure, digest.as_bytes()[..16].to_vec())
    }

    fn public_key(&self) -> PublicKey {
        PublicKey::new(SignatureScheme::Insecure, self.key_id.to_vec())
    }
}

/// Verifies a batch of `(key, message, signature)` triples in one pass.
///
/// Ed25519 items are handed to the vendored shim's `verify_batch` (one
/// aggregate check standing in for the real scheme's single multi-scalar
/// multiplication); [`SignatureScheme::Insecure`] items are verified
/// individually, since the ablation scheme has no batch form.
///
/// The result is **all-or-nothing**: `Ok(())` exactly when every triple
/// would pass per-item [`SigVerifier::verify`], and the first classifiable
/// error otherwise. Callers needing to attribute a failure to a specific
/// item (§4.4 blame assignment) must fall back to per-item verification.
///
/// # Errors
///
/// Returns the same error classes as per-item verification: a scheme
/// mismatch or failed check is [`CryptoError::BadSignature`]; malformed
/// key/signature lengths are [`CryptoError::MalformedBytes`].
pub fn verify_batch(items: &[(&PublicKey, &[u8], &Signature)]) -> Result<(), CryptoError> {
    use ed25519_dalek::VerifyingKey;

    let mut ed_msgs: Vec<&[u8]> = Vec::new();
    let mut ed_sigs: Vec<ed25519_dalek::Signature> = Vec::new();
    let mut ed_keys: Vec<VerifyingKey> = Vec::new();

    for (key, msg, sig) in items {
        if sig.scheme() != key.scheme() {
            return Err(CryptoError::BadSignature {
                scheme: sig.scheme().name(),
            });
        }
        match key.scheme() {
            SignatureScheme::Ed25519 => {
                let key_bytes: [u8; 32] =
                    key.as_bytes()
                        .try_into()
                        .map_err(|_| CryptoError::MalformedBytes {
                            what: "public key",
                            expected: 32,
                            got: key.as_bytes().len(),
                        })?;
                let vk = VerifyingKey::from_bytes(&key_bytes).map_err(|_| {
                    CryptoError::MalformedBytes {
                        what: "public key",
                        expected: 32,
                        got: key.as_bytes().len(),
                    }
                })?;
                let sig_bytes: [u8; 64] =
                    sig.as_bytes()
                        .try_into()
                        .map_err(|_| CryptoError::MalformedBytes {
                            what: "signature",
                            expected: 64,
                            got: sig.as_bytes().len(),
                        })?;
                ed_msgs.push(msg);
                ed_sigs.push(ed25519_dalek::Signature::from_bytes(&sig_bytes));
                ed_keys.push(vk);
            }
            SignatureScheme::Insecure => verify_insecure(key.as_bytes(), msg, sig)?,
        }
    }

    if ed_msgs.is_empty() {
        return Ok(());
    }
    ed25519_dalek::verify_batch(&ed_msgs, &ed_sigs, &ed_keys).map_err(|_| {
        CryptoError::BadSignature {
            scheme: SignatureScheme::Ed25519.name(),
        }
    })
}

pub(crate) fn verify_insecure(
    key_bytes: &[u8],
    msg: &[u8],
    sig: &Signature,
) -> Result<(), CryptoError> {
    let digest = sha256_concat(&[key_bytes, msg]);
    if sig.as_bytes() == &digest.as_bytes()[..16] {
        Ok(())
    } else {
        Err(CryptoError::BadSignature {
            scheme: SignatureScheme::Insecure.name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insecure_sign_verify_roundtrip() {
        let s = InsecureSigner::from_seed(1);
        let sig = s.sign(b"msg");
        assert!(s.public_key().verify(b"msg", &sig).is_ok());
        assert!(s.public_key().verify(b"other", &sig).is_err());
    }

    #[test]
    fn insecure_different_keys_differ() {
        let a = InsecureSigner::from_seed(1).sign(b"m");
        let b = InsecureSigner::from_seed(2).sign(b"m");
        assert_ne!(a, b);
    }

    #[test]
    fn signature_debug_shows_scheme() {
        let sig = InsecureSigner::from_seed(1).sign(b"m");
        assert!(format!("{sig:?}").contains("insecure"));
    }

    #[test]
    fn scheme_names() {
        assert_eq!(SignatureScheme::Ed25519.name(), "ed25519");
        assert_eq!(SignatureScheme::Insecure.name(), "insecure");
    }
}
