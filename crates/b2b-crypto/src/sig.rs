//! Signature schemes: [`Signer`] / [`SigVerifier`] traits, the production
//! Ed25519 implementation, and an intentionally weak ablation-only signer.
//!
//! The paper (§4.2) requires "a signature scheme such that a signature by a
//! party on data is both verifiable and unforgeable". [`crate::KeyPair`]
//! (Ed25519) provides that. [`InsecureSigner`] exists solely so the
//! benchmark suite can measure what non-repudiation costs (experiment E4);
//! it is forgeable by construction and must never be used outside benches.

use crate::error::CryptoError;
use crate::hash::sha256_concat;
use crate::keys::PublicKey;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The signature scheme a [`Signature`] or [`PublicKey`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignatureScheme {
    /// Ed25519 (production scheme; unforgeable).
    Ed25519,
    /// Truncated-hash pseudo-signature. **Forgeable**: benchmarking only.
    Insecure,
}

impl SignatureScheme {
    /// A short, stable name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            SignatureScheme::Ed25519 => "ed25519",
            SignatureScheme::Insecure => "insecure",
        }
    }
}

/// A detached signature over a byte string.
///
/// Rendered in the paper's notation as `sig_P(x)`. Signatures appear inside
/// protocol messages and evidence records.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    scheme: SignatureScheme,
    bytes: Vec<u8>,
}

impl Signature {
    /// Creates a signature value from raw scheme output.
    pub fn new(scheme: SignatureScheme, bytes: Vec<u8>) -> Signature {
        Signature { scheme, bytes }
    }

    /// The scheme that produced this signature.
    pub fn scheme(&self) -> SignatureScheme {
        self.scheme
    }

    /// The raw signature bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl crate::canonical::CanonicalEncode for Signature {
    fn encode(&self, enc: &mut crate::canonical::Encoder) {
        enc.put_u8(match self.scheme {
            SignatureScheme::Ed25519 => 1,
            SignatureScheme::Insecure => 2,
        });
        enc.put_bytes(&self.bytes);
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature({}, {}…)",
            self.scheme.name(),
            hex::encode(&self.bytes[..self.bytes.len().min(4)])
        )
    }
}

/// Types that can produce signatures binding a key-holder to data.
pub trait Signer: Send + Sync {
    /// Signs `msg`, returning a detached signature.
    fn sign(&self, msg: &[u8]) -> Signature;

    /// Returns the public (verification) key corresponding to this signer.
    fn public_key(&self) -> PublicKey;
}

impl<T: Signer + ?Sized> Signer for Box<T> {
    fn sign(&self, msg: &[u8]) -> Signature {
        (**self).sign(msg)
    }
    fn public_key(&self) -> PublicKey {
        (**self).public_key()
    }
}

/// Types that can verify signatures (public keys, key rings).
pub trait SigVerifier {
    /// Verifies `sig` over `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] when verification fails, or a
    /// scheme/format error when the signature is malformed.
    fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), CryptoError>;
}

/// A deliberately forgeable "signature" scheme for the crypto-overhead
/// ablation benchmark (experiment E4).
///
/// The signature is a truncated hash of `public key bytes || message`, so
/// anyone holding the public key can forge it. It exercises the same code
/// paths (sign on send, verify on receive) at negligible CPU cost, which is
/// exactly what the ablation needs to isolate Ed25519's contribution.
#[derive(Clone, Debug)]
pub struct InsecureSigner {
    key_id: [u8; 8],
}

impl InsecureSigner {
    /// Creates an insecure signer with the given 8-byte key identity.
    pub fn new(key_id: [u8; 8]) -> InsecureSigner {
        InsecureSigner { key_id }
    }

    /// Creates an insecure signer whose key identity derives from a seed.
    pub fn from_seed(seed: u64) -> InsecureSigner {
        InsecureSigner {
            key_id: seed.to_be_bytes(),
        }
    }
}

impl Signer for InsecureSigner {
    fn sign(&self, msg: &[u8]) -> Signature {
        let digest = sha256_concat(&[&self.key_id, msg]);
        Signature::new(SignatureScheme::Insecure, digest.as_bytes()[..16].to_vec())
    }

    fn public_key(&self) -> PublicKey {
        PublicKey::new(SignatureScheme::Insecure, self.key_id.to_vec())
    }
}

pub(crate) fn verify_insecure(
    key_bytes: &[u8],
    msg: &[u8],
    sig: &Signature,
) -> Result<(), CryptoError> {
    let digest = sha256_concat(&[key_bytes, msg]);
    if sig.as_bytes() == &digest.as_bytes()[..16] {
        Ok(())
    } else {
        Err(CryptoError::BadSignature {
            scheme: SignatureScheme::Insecure.name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insecure_sign_verify_roundtrip() {
        let s = InsecureSigner::from_seed(1);
        let sig = s.sign(b"msg");
        assert!(s.public_key().verify(b"msg", &sig).is_ok());
        assert!(s.public_key().verify(b"other", &sig).is_err());
    }

    #[test]
    fn insecure_different_keys_differ() {
        let a = InsecureSigner::from_seed(1).sign(b"m");
        let b = InsecureSigner::from_seed(2).sign(b"m");
        assert_ne!(a, b);
    }

    #[test]
    fn signature_debug_shows_scheme() {
        let sig = InsecureSigner::from_seed(1).sign(b"m");
        assert!(format!("{sig:?}").contains("insecure"));
    }

    #[test]
    fn scheme_names() {
        assert_eq!(SignatureScheme::Ed25519.name(), "ed25519");
        assert_eq!(SignatureScheme::Insecure.name(), "insecure");
    }
}
