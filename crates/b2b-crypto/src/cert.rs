//! Certificate management.
//!
//! The B2BObjects overview (§3) lists "certificate management and
//! non-repudiation services" among the middleware's responsibilities:
//! authentication of access to objects and verification of signatures on
//! actions. This module provides the minimal PKI those services need — a
//! certificate authority all parties accept, identity certificates binding
//! a [`PartyId`] to a [`PublicKey`] over a validity window, and verification.

use crate::canonical::{CanonicalEncode, Encoder};
use crate::identity::PartyId;
use crate::keys::{KeyRing, PublicKey};
use crate::sig::{SigVerifier, Signature, Signer};
use crate::time::TimeMs;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use thiserror::Error;

/// Errors arising from certificate issuance or verification.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// The certificate's signature does not verify under the issuer key.
    #[error("certificate signature invalid")]
    BadSignature,
    /// The certificate is outside its validity window.
    #[error("certificate for {subject} not valid at {at}: window [{not_before}, {not_after})")]
    Expired {
        /// The certificate subject.
        subject: PartyId,
        /// The time at which validity was checked.
        at: TimeMs,
        /// Start of validity.
        not_before: TimeMs,
        /// End of validity (exclusive).
        not_after: TimeMs,
    },
    /// The certificate names a different subject than expected.
    #[error("certificate subject mismatch: expected {expected}, found {found}")]
    SubjectMismatch {
        /// The party the caller expected.
        expected: PartyId,
        /// The party named in the certificate.
        found: PartyId,
    },
}

/// An identity certificate: the CA's signed binding of a party to a key.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// The party whose key this certifies.
    pub subject: PartyId,
    /// The certified verification key.
    pub public_key: PublicKey,
    /// Start of the validity window.
    pub not_before: TimeMs,
    /// End of the validity window (exclusive).
    pub not_after: TimeMs,
    /// Name of the issuing authority.
    pub issuer: PartyId,
    /// The issuer's signature over the above fields.
    pub sig: Signature,
}

impl Certificate {
    fn signed_bytes(
        subject: &PartyId,
        public_key: &PublicKey,
        not_before: TimeMs,
        not_after: TimeMs,
        issuer: &PartyId,
    ) -> Vec<u8> {
        let mut enc = Encoder::new();
        subject.encode(&mut enc);
        enc.put_u8(match public_key.scheme() {
            crate::sig::SignatureScheme::Ed25519 => 1,
            crate::sig::SignatureScheme::Insecure => 2,
        });
        enc.put_bytes(public_key.as_bytes());
        not_before.encode(&mut enc);
        not_after.encode(&mut enc);
        issuer.encode(&mut enc);
        enc.finish()
    }

    /// Verifies this certificate under the issuer's key at time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`CertificateError::BadSignature`] for forged or tampered
    /// certificates and [`CertificateError::Expired`] outside the validity
    /// window.
    pub fn verify(&self, issuer_key: &PublicKey, now: TimeMs) -> Result<(), CertificateError> {
        let bytes = Self::signed_bytes(
            &self.subject,
            &self.public_key,
            self.not_before,
            self.not_after,
            &self.issuer,
        );
        issuer_key
            .verify(&bytes, &self.sig)
            .map_err(|_| CertificateError::BadSignature)?;
        if now < self.not_before || now >= self.not_after {
            return Err(CertificateError::Expired {
                subject: self.subject.clone(),
                at: now,
                not_before: self.not_before,
                not_after: self.not_after,
            });
        }
        Ok(())
    }
}

/// A certificate authority acceptable to all parties.
///
/// # Example
///
/// ```
/// use b2b_crypto::{CertificateAuthority, KeyPair, PartyId, Signer, TimeMs};
/// let ca = CertificateAuthority::new(PartyId::new("ca"), KeyPair::generate_from_seed(1));
/// let alice = KeyPair::generate_from_seed(2);
/// let cert = ca.issue(PartyId::new("alice"), alice.public_key(), TimeMs(0), TimeMs(1_000));
/// assert!(cert.verify(&ca.public_key(), TimeMs(500)).is_ok());
/// assert!(cert.verify(&ca.public_key(), TimeMs(2_000)).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct CertificateAuthority {
    name: PartyId,
    signer: Arc<dyn Signer>,
}

impl CertificateAuthority {
    /// Creates a CA with the given name and signing key.
    pub fn new(name: PartyId, signer: impl Signer + 'static) -> CertificateAuthority {
        CertificateAuthority {
            name,
            signer: Arc::new(signer),
        }
    }

    /// The CA's name, used as the issuer field of its certificates.
    pub fn name(&self) -> &PartyId {
        &self.name
    }

    /// The CA's verification key, distributed out of band to all parties.
    pub fn public_key(&self) -> PublicKey {
        self.signer.public_key()
    }

    /// Issues a certificate binding `subject` to `key` over the window
    /// `[not_before, not_after)`.
    pub fn issue(
        &self,
        subject: PartyId,
        key: PublicKey,
        not_before: TimeMs,
        not_after: TimeMs,
    ) -> Certificate {
        let bytes = Certificate::signed_bytes(&subject, &key, not_before, not_after, &self.name);
        Certificate {
            subject,
            public_key: key,
            not_before,
            not_after,
            issuer: self.name.clone(),
            sig: self.signer.sign(&bytes),
        }
    }
}

/// Builds a [`KeyRing`] from certificates, verifying each against the CA.
///
/// Certificates that fail verification at `now` are skipped and reported.
///
/// # Example
///
/// ```
/// use b2b_crypto::{cert::ring_from_certificates, CertificateAuthority, KeyPair, PartyId, Signer, TimeMs};
/// let ca = CertificateAuthority::new(PartyId::new("ca"), KeyPair::generate_from_seed(1));
/// let kp = KeyPair::generate_from_seed(2);
/// let cert = ca.issue(PartyId::new("a"), kp.public_key(), TimeMs(0), TimeMs(100));
/// let (ring, rejected) = ring_from_certificates(&[cert], &ca.public_key(), TimeMs(50));
/// assert_eq!(ring.len(), 1);
/// assert!(rejected.is_empty());
/// ```
pub fn ring_from_certificates(
    certs: &[Certificate],
    ca_key: &PublicKey,
    now: TimeMs,
) -> (KeyRing, Vec<(PartyId, CertificateError)>) {
    let mut ring = KeyRing::new();
    let mut rejected = Vec::new();
    for cert in certs {
        match cert.verify(ca_key, now) {
            Ok(()) => ring.register(cert.subject.clone(), cert.public_key.clone()),
            Err(e) => rejected.push((cert.subject.clone(), e)),
        }
    }
    (ring, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new(PartyId::new("ca"), KeyPair::generate_from_seed(100))
    }

    #[test]
    fn issue_and_verify() {
        let ca = ca();
        let kp = KeyPair::generate_from_seed(1);
        let cert = ca.issue(PartyId::new("a"), kp.public_key(), TimeMs(0), TimeMs(100));
        assert!(cert.verify(&ca.public_key(), TimeMs(0)).is_ok());
        assert!(cert.verify(&ca.public_key(), TimeMs(99)).is_ok());
    }

    #[test]
    fn expired_certificate_rejected() {
        let ca = ca();
        let kp = KeyPair::generate_from_seed(1);
        let cert = ca.issue(PartyId::new("a"), kp.public_key(), TimeMs(10), TimeMs(100));
        assert!(matches!(
            cert.verify(&ca.public_key(), TimeMs(100)),
            Err(CertificateError::Expired { .. })
        ));
        assert!(matches!(
            cert.verify(&ca.public_key(), TimeMs(5)),
            Err(CertificateError::Expired { .. })
        ));
    }

    #[test]
    fn tampered_subject_rejected() {
        let ca = ca();
        let kp = KeyPair::generate_from_seed(1);
        let mut cert = ca.issue(PartyId::new("a"), kp.public_key(), TimeMs(0), TimeMs(100));
        cert.subject = PartyId::new("mallory");
        assert_eq!(
            cert.verify(&ca.public_key(), TimeMs(50)),
            Err(CertificateError::BadSignature)
        );
    }

    #[test]
    fn tampered_key_rejected() {
        let ca = ca();
        let mut cert = ca.issue(
            PartyId::new("a"),
            KeyPair::generate_from_seed(1).public_key(),
            TimeMs(0),
            TimeMs(100),
        );
        cert.public_key = KeyPair::generate_from_seed(2).public_key();
        assert_eq!(
            cert.verify(&ca.public_key(), TimeMs(50)),
            Err(CertificateError::BadSignature)
        );
    }

    #[test]
    fn ring_from_certificates_filters_invalid() {
        let ca = ca();
        let good = ca.issue(
            PartyId::new("good"),
            KeyPair::generate_from_seed(1).public_key(),
            TimeMs(0),
            TimeMs(100),
        );
        let expired = ca.issue(
            PartyId::new("late"),
            KeyPair::generate_from_seed(2).public_key(),
            TimeMs(0),
            TimeMs(10),
        );
        let (ring, rejected) =
            ring_from_certificates(&[good, expired], &ca.public_key(), TimeMs(50));
        assert_eq!(ring.len(), 1);
        assert!(ring.key_for(&PartyId::new("good")).is_some());
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].0, PartyId::new("late"));
    }
}
