//! Deterministic canonical encoding for signed content.
//!
//! A signature is only meaningful if every party serialises the signed
//! structure to exactly the same bytes. General-purpose serialisation
//! formats do not promise that, so the "signed parts" of every protocol
//! message implement [`CanonicalEncode`]: a tiny, explicitly-specified
//! big-endian, length-prefixed encoding.
//!
//! # Example
//!
//! ```
//! use b2b_crypto::{CanonicalEncode, Encoder};
//!
//! struct Pair { a: u64, b: String }
//! impl CanonicalEncode for Pair {
//!     fn encode(&self, enc: &mut Encoder) {
//!         self.a.encode(enc);
//!         self.b.encode(enc);
//!     }
//! }
//!
//! let p = Pair { a: 7, b: "x".into() };
//! assert_eq!(p.canonical_bytes(), Pair { a: 7, b: "x".into() }.canonical_bytes());
//! ```

use crate::hash::{sha256, Digest32};
use crate::identity::PartyId;
use crate::time::TimeMs;

/// An append-only byte buffer with deterministic primitive encoders.
///
/// All integers are big-endian; all variable-length data is prefixed with a
/// `u64` byte count; `Option` is a presence byte followed by the value;
/// sequences are a `u64` element count followed by the elements.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Creates an empty encoder whose buffer can hold `capacity` bytes
    /// before reallocating. Signing paths that know the rough size of a
    /// message use this to avoid the doubling-growth copies of an empty
    /// `Vec`.
    pub fn with_capacity(capacity: usize) -> Encoder {
        Encoder {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Consumes the encoder, returning the encoded bytes.
    ///
    /// This moves the buffer out without reallocating or trimming; callers
    /// that need a tight allocation can `shrink_to_fit` themselves.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends variable-length bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.reserve(8 + v.len());
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a fixed 32-byte digest with no length prefix.
    pub fn put_digest(&mut self, d: &Digest32) {
        self.buf.extend_from_slice(d.as_bytes());
    }

    /// Returns the number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Types that have a single, deterministic byte representation for signing.
pub trait CanonicalEncode {
    /// Appends this value's canonical encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// A rough upper bound on the encoded size, used to pre-size buffers.
    /// The default suits small fixed-shape protocol parts; types with
    /// variable payloads can override it.
    fn encoded_size_hint(&self) -> usize {
        128
    }

    /// Returns this value's canonical encoding as a fresh byte vector.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(self.encoded_size_hint());
        self.encode(&mut enc);
        enc.finish()
    }

    /// Returns the SHA-256 digest of the canonical encoding.
    fn canonical_digest(&self) -> Digest32 {
        sha256(&self.canonical_bytes())
    }
}

impl CanonicalEncode for u8 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
}

impl CanonicalEncode for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
}

impl CanonicalEncode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
}

impl CanonicalEncode for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
}

impl CanonicalEncode for str {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
}

impl CanonicalEncode for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
}

impl CanonicalEncode for [u8] {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
}

impl CanonicalEncode for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
}

impl CanonicalEncode for Digest32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_digest(self);
    }
}

impl CanonicalEncode for PartyId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.as_str());
    }
}

impl CanonicalEncode for TimeMs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.as_millis());
    }
}

impl<T: CanonicalEncode> CanonicalEncode for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
}

impl<T: CanonicalEncode + ?Sized> CanonicalEncode for &T {
    fn encode(&self, enc: &mut Encoder) {
        (**self).encode(enc);
    }
}

/// Encodes a slice of non-byte elements (element count + elements).
///
/// `Vec<u8>` intentionally encodes as raw bytes, so sequences of structured
/// values use this helper instead of a conflicting `Vec<T>` impl.
pub fn encode_seq<T: CanonicalEncode>(items: &[T], enc: &mut Encoder) {
    enc.put_u64(items.len() as u64);
    for item in items {
        item.encode(enc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_deterministic() {
        let mut a = Encoder::new();
        7u64.encode(&mut a);
        "hi".encode(&mut a);
        true.encode(&mut a);
        let mut b = Encoder::new();
        7u64.encode(&mut b);
        "hi".encode(&mut b);
        true.encode(&mut b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_ambiguity() {
        // ("ab","c") must differ from ("a","bc")
        let mut a = Encoder::new();
        "ab".encode(&mut a);
        "c".encode(&mut a);
        let mut b = Encoder::new();
        "a".encode(&mut b);
        "bc".encode(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn option_encoding_distinguishes_none_some() {
        let none: Option<u64> = None;
        let some: Option<u64> = Some(0);
        assert_ne!(none.canonical_bytes(), some.canonical_bytes());
    }

    #[test]
    fn seq_encoding_includes_count() {
        let mut a = Encoder::new();
        encode_seq(&[1u64, 2u64], &mut a);
        let bytes = a.finish();
        assert_eq!(&bytes[..8], &2u64.to_be_bytes());
        assert_eq!(bytes.len(), 8 + 16);
    }

    #[test]
    fn digest_is_fixed_width() {
        let d = sha256(b"x");
        assert_eq!(d.canonical_bytes().len(), 32);
    }

    #[test]
    fn canonical_digest_matches_manual_hash() {
        let v = 42u64;
        assert_eq!(v.canonical_digest(), sha256(&42u64.to_be_bytes()));
    }

    #[test]
    fn empty_encoder_reports_empty() {
        let enc = Encoder::new();
        assert!(enc.is_empty());
        assert_eq!(enc.len(), 0);
    }
}
