//! Secure pseudo-random sequence generation.
//!
//! The paper (§4.2) requires "a secure pseudo-random sequence generator to
//! generate statistically random and unpredictable sequences of bits"; the
//! proposer uses it for the authenticator `r_P` whose hash commits the final
//! decide message to the protocol run.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A seedable pseudo-random generator facade.
///
/// Under the deterministic simulator every party derives its RNG from the
/// scenario seed so runs are reproducible; a deployment seeds from OS
/// entropy via [`SecureRng::from_entropy`].
///
/// # Example
///
/// ```
/// use b2b_crypto::SecureRng;
/// let mut a = SecureRng::seeded(1);
/// let mut b = SecureRng::seeded(1);
/// assert_eq!(a.nonce(), b.nonce());
/// ```
#[derive(Debug, Clone)]
pub struct SecureRng {
    inner: StdRng,
}

impl SecureRng {
    /// Creates a generator from a fixed seed (reproducible).
    pub fn seeded(seed: u64) -> SecureRng {
        SecureRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a generator seeded from operating-system entropy.
    pub fn from_entropy() -> SecureRng {
        SecureRng {
            inner: StdRng::from_entropy(),
        }
    }

    /// Returns 32 random bytes (the paper's random `r`).
    pub fn nonce(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.inner.fill_bytes(&mut out);
        out
    }

    /// Returns a random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Returns a one-off 32-byte nonce from OS entropy.
pub fn random_nonce() -> [u8; 32] {
    SecureRng::from_entropy().nonce()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SecureRng::seeded(7);
        let mut b = SecureRng::seeded(7);
        assert_eq!(a.nonce(), b.nonce());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SecureRng::seeded(1);
        let mut b = SecureRng::seeded(2);
        assert_ne!(a.nonce(), b.nonce());
    }

    #[test]
    fn sequential_nonces_differ() {
        let mut rng = SecureRng::seeded(3);
        assert_ne!(rng.nonce(), rng.nonce());
    }

    #[test]
    fn entropy_nonces_differ() {
        assert_ne!(random_nonce(), random_nonce());
    }
}
