#![warn(missing_docs)]

//! Cryptographic substrate for the B2BObjects middleware.
//!
//! The DSN 2002 paper (§4.2) assumes each party has access to:
//!
//! * a signature scheme whose signatures are *verifiable and unforgeable*;
//! * a secure (one-way, collision-resistant) hash function;
//! * a secure pseudo-random sequence generator; and
//! * a trusted time-stamping service acceptable to all parties.
//!
//! This crate provides all four, plus the certificate management the paper's
//! middleware overview (§3) calls for, and a deterministic *canonical
//! encoding* so that the "signed parts" of protocol messages have a stable
//! byte representation across parties.
//!
//! # Example
//!
//! ```
//! use b2b_crypto::{KeyPair, PartyId, Signer, SigVerifier, sha256};
//!
//! let alice = KeyPair::generate_from_seed(7);
//! let msg = b"proposal bytes";
//! let sig = alice.sign(msg);
//! assert!(alice.public_key().verify(msg, &sig).is_ok());
//! let digest = sha256(msg);
//! assert_eq!(digest, sha256(msg));
//! ```

pub mod cache;
pub mod canonical;
pub mod cert;
pub mod error;
pub mod hash;
pub mod identity;
pub mod keys;
pub mod pool;
pub mod rng;
pub mod sig;
pub mod time;
pub mod timestamp;

pub use cache::{CachedCanonical, SigVerifyCache};
pub use canonical::{CanonicalEncode, Encoder};
pub use cert::{Certificate, CertificateAuthority, CertificateError};
pub use error::CryptoError;
pub use hash::{sha256, sha256_concat, Digest32};
pub use identity::PartyId;
pub use keys::{KeyPair, KeyRing, PublicKey};
pub use pool::{VerifyItem, VerifyPool};
pub use rng::{random_nonce, SecureRng};
pub use sig::{verify_batch, InsecureSigner, SigVerifier, Signature, SignatureScheme, Signer};
pub use time::TimeMs;
pub use timestamp::{TimeStamp, TimeStampAuthority};
