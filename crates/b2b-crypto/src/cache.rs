//! Hot-path caches for the signing and verification machinery.
//!
//! Two independent optimisations live here:
//!
//! * [`CachedCanonical`] — a per-message memo of a signed part's canonical
//!   encoding (and its SHA-256 digest), so a proposal or response is
//!   encoded once per message lifetime instead of once per use (signing,
//!   run-id derivation, verification, evidence logging).
//! * [`SigVerifyCache`] — a bounded, deterministically-evicting LRU of
//!   signature checks that already *succeeded*, keyed by
//!   `(party, digest32, sig)`. A signature verified at m2 receipt need not
//!   be cryptographically re-verified at m3 aggregation.
//!
//! Neither cache may weaken §4.4 detection: the memo is re-derived from the
//! value on first use (a tampered wire byte decodes into a fresh message
//! whose memo is empty), failed verifications are never cached, and the
//! verification cache must be flushed whenever the key ring changes
//! (`Coordinator::update_ring` does this).

use crate::canonical::CanonicalEncode;
use crate::hash::{sha256, Digest32};
use crate::identity::PartyId;
use crate::sig::Signature;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

/// A lazily-memoized canonical encoding of a signed protocol part.
///
/// Embed one next to the signed value (skipped by serde, ignored by
/// equality) and route all canonical-bytes uses through
/// [`CachedCanonical::get_or_encode`]. Clones keep the memo, so a message
/// cloned into a run record does not re-encode.
///
/// The memo assumes the neighbouring value is not mutated after the first
/// encoding — protocol messages are immutable once built. Deserialisation
/// always starts with an empty memo, so bytes arriving off the wire are
/// encoded (and therefore verified) from what was actually received.
#[derive(Debug, Default)]
pub struct CachedCanonical {
    cell: OnceLock<(Arc<[u8]>, Digest32)>,
}

impl CachedCanonical {
    /// Creates an empty (not-yet-encoded) memo.
    pub fn new() -> CachedCanonical {
        CachedCanonical::default()
    }

    /// Returns `true` if the encoding has already been computed.
    pub fn is_cached(&self) -> bool {
        self.cell.get().is_some()
    }

    /// Returns the canonical bytes and digest of `value`, encoding it on
    /// first use and replaying the memo afterwards.
    pub fn get_or_encode<T: CanonicalEncode + ?Sized>(&self, value: &T) -> (Arc<[u8]>, Digest32) {
        self.cell
            .get_or_init(|| {
                let bytes = value.canonical_bytes();
                let digest = sha256(&bytes);
                (Arc::from(bytes), digest)
            })
            .clone()
    }
}

impl Clone for CachedCanonical {
    fn clone(&self) -> Self {
        let cell = OnceLock::new();
        if let Some(v) = self.cell.get() {
            let _ = cell.set(v.clone());
        }
        CachedCanonical { cell }
    }
}

// The memo is derived state: two messages are equal iff their real fields
// are, regardless of which copies have been encoded yet.
impl PartialEq for CachedCanonical {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl Eq for CachedCanonical {}

// The memo never travels: it serializes as `null` and deserializes empty,
// so a message decoded off the wire always re-encodes — and therefore
// verifies — exactly the bytes that were received (§4.4).
impl serde::Serialize for CachedCanonical {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for CachedCanonical {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(CachedCanonical::new())
    }
}

type VerifyKey = (PartyId, Digest32, Signature);

/// A bounded LRU cache of *successful* signature verifications.
///
/// The key binds the claimed signer, the SHA-256 digest of the exact signed
/// bytes, and the full signature, so a hit asserts precisely "this party's
/// key verified this signature over these bytes earlier in this session".
/// Any tampered byte, substituted signature or impersonated origin changes
/// the key and misses, falling through to a real verification — §4.4
/// detection is unaffected.
///
/// Failed verifications are never inserted, and the owner must [`clear`]
/// the cache whenever its key ring changes so a cached accept cannot
/// outlive the key material it was checked against.
///
/// Eviction is deterministic (strict least-recently-used order), keeping
/// same-seed simulator runs reproducible.
///
/// [`clear`]: SigVerifyCache::clear
#[derive(Debug, Default)]
pub struct SigVerifyCache {
    capacity: usize,
    stamp: u64,
    by_key: HashMap<VerifyKey, u64>,
    by_stamp: BTreeMap<u64, VerifyKey>,
}

impl SigVerifyCache {
    /// Creates a cache holding at most `capacity` entries; `0` disables
    /// caching entirely (every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> SigVerifyCache {
        SigVerifyCache {
            capacity,
            ..SigVerifyCache::default()
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of cached verifications.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Returns `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Looks up a previously-successful verification, refreshing its LRU
    /// position on a hit.
    pub fn check(&mut self, party: &PartyId, digest: &Digest32, sig: &Signature) -> bool {
        let key = (party.clone(), *digest, sig.clone());
        let Some(stamp) = self.by_key.get_mut(&key) else {
            return false;
        };
        let old = *stamp;
        self.stamp += 1;
        *stamp = self.stamp;
        self.by_stamp.remove(&old);
        self.by_stamp.insert(self.stamp, key);
        true
    }

    /// Records a successful verification, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, party: PartyId, digest: Digest32, sig: Signature) {
        if self.capacity == 0 {
            return;
        }
        let key = (party, digest, sig);
        self.stamp += 1;
        if let Some(old) = self.by_key.insert(key.clone(), self.stamp) {
            self.by_stamp.remove(&old);
        }
        self.by_stamp.insert(self.stamp, key);
        while self.by_key.len() > self.capacity {
            let (&oldest, _) = self.by_stamp.iter().next().expect("non-empty");
            let victim = self.by_stamp.remove(&oldest).expect("present");
            self.by_key.remove(&victim);
        }
    }

    /// Drops every cached verification. Must be called whenever the key
    /// material used for verification changes.
    pub fn clear(&mut self) {
        self.by_key.clear();
        self.by_stamp.clear();
        self.stamp = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::SignatureScheme;

    fn sig(b: u8) -> Signature {
        Signature::new(SignatureScheme::Insecure, vec![b; 8])
    }

    fn party(s: &str) -> PartyId {
        PartyId::new(s)
    }

    struct Blob(Vec<u8>);
    impl CanonicalEncode for Blob {
        fn encode(&self, enc: &mut crate::Encoder) {
            enc.put_bytes(&self.0);
        }
    }

    #[test]
    fn memo_encodes_once_and_survives_clone() {
        let memo = CachedCanonical::new();
        let blob = Blob(vec![1, 2, 3]);
        assert!(!memo.is_cached());
        let (bytes, digest) = memo.get_or_encode(&blob);
        assert!(memo.is_cached());
        assert_eq!(&bytes[..], &blob.0.canonical_bytes()[..]);
        assert_eq!(digest, sha256(&bytes));
        let clone = memo.clone();
        assert!(clone.is_cached());
        let (again, _) = clone.get_or_encode(&blob);
        assert!(Arc::ptr_eq(&bytes, &again));
    }

    #[test]
    fn cache_hits_only_on_exact_triple() {
        let mut c = SigVerifyCache::new(8);
        let d = sha256(b"msg");
        c.insert(party("a"), d, sig(1));
        assert!(c.check(&party("a"), &d, &sig(1)));
        assert!(!c.check(&party("b"), &d, &sig(1)));
        assert!(!c.check(&party("a"), &sha256(b"other"), &sig(1)));
        assert!(!c.check(&party("a"), &d, &sig(2)));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut c = SigVerifyCache::new(2);
        let d = sha256(b"m");
        c.insert(party("a"), d, sig(1));
        c.insert(party("b"), d, sig(2));
        assert!(c.check(&party("a"), &d, &sig(1))); // refresh a
        c.insert(party("c"), d, sig(3)); // evicts b
        assert!(c.check(&party("a"), &d, &sig(1)));
        assert!(!c.check(&party("b"), &d, &sig(2)));
        assert!(c.check(&party("c"), &d, &sig(3)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut c = SigVerifyCache::new(0);
        let d = sha256(b"m");
        c.insert(party("a"), d, sig(1));
        assert!(c.is_empty());
        assert!(!c.check(&party("a"), &d, &sig(1)));
    }

    #[test]
    fn clear_forgets_everything() {
        let mut c = SigVerifyCache::new(4);
        let d = sha256(b"m");
        c.insert(party("a"), d, sig(1));
        c.clear();
        assert!(c.is_empty());
        assert!(!c.check(&party("a"), &d, &sig(1)));
    }
}
