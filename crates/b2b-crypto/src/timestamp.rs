//! Trusted time-stamping service.
//!
//! "Since a signature is only valid if it can be asserted that the signing
//! key was not compromised at the time of use, all signed evidence must be
//! time-stamped. It is assumed that a trusted time-stamping service …
//! acceptable to all parties is available" (§4.2, citing Zhou & Gollmann).
//!
//! Given a message `m` by party `P` at time `t`, the authority produces
//! `TS_T(m) = (t, sig_T(H(m) || t))`, which any party can verify against the
//! authority's public key.

use crate::canonical::{CanonicalEncode, Encoder};
use crate::error::CryptoError;
use crate::hash::{sha256, Digest32};
use crate::keys::PublicKey;
use crate::sig::{SigVerifier, Signature, Signer};
use crate::time::TimeMs;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A time-stamp token binding a message digest to a time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeStamp {
    /// Digest of the time-stamped message.
    pub digest: Digest32,
    /// The time at which the authority observed the message.
    pub time: TimeMs,
    /// The authority's signature over `(digest, time)`.
    pub sig: Signature,
}

impl TimeStamp {
    fn signed_bytes(digest: &Digest32, time: TimeMs) -> Vec<u8> {
        let mut enc = Encoder::new();
        digest.encode(&mut enc);
        time.encode(&mut enc);
        enc.finish()
    }

    /// Verifies this token against the authority's public key and the
    /// message it claims to stamp.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadTimeStamp`] if the digest does not match
    /// `message`, or a signature error if the token was not produced by the
    /// holder of `authority_key`.
    pub fn verify(&self, authority_key: &PublicKey, message: &[u8]) -> Result<(), CryptoError> {
        if sha256(message) != self.digest {
            return Err(CryptoError::BadTimeStamp("digest does not match message"));
        }
        authority_key.verify(&Self::signed_bytes(&self.digest, self.time), &self.sig)
    }
}

/// A trusted time-stamping authority (TSA).
///
/// In deployment this would be an external service; here it is a value the
/// test harness hands to every coordinator, with a clock callback so the
/// simulator can supply virtual time.
///
/// # Example
///
/// ```
/// use b2b_crypto::{KeyPair, TimeMs, TimeStampAuthority};
/// let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(99));
/// let token = tsa.stamp(b"evidence", TimeMs(1234));
/// assert!(token.verify(&tsa.public_key(), b"evidence").is_ok());
/// assert_eq!(token.time, TimeMs(1234));
/// ```
#[derive(Clone, Debug)]
pub struct TimeStampAuthority {
    signer: Arc<dyn Signer>,
}

impl TimeStampAuthority {
    /// Creates an authority from any signer.
    pub fn new(signer: impl Signer + 'static) -> TimeStampAuthority {
        TimeStampAuthority {
            signer: Arc::new(signer),
        }
    }

    /// Stamps `message` as having existed at `time`.
    pub fn stamp(&self, message: &[u8], time: TimeMs) -> TimeStamp {
        let digest = sha256(message);
        let sig = self.signer.sign(&TimeStamp::signed_bytes(&digest, time));
        TimeStamp { digest, time, sig }
    }

    /// The authority's verification key, distributed to all parties.
    pub fn public_key(&self) -> PublicKey {
        self.signer.public_key()
    }
}

impl std::fmt::Debug for dyn Signer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signer({:?})", self.public_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn tsa() -> TimeStampAuthority {
        TimeStampAuthority::new(KeyPair::generate_from_seed(77))
    }

    #[test]
    fn stamp_verifies() {
        let tsa = tsa();
        let token = tsa.stamp(b"msg", TimeMs(10));
        assert!(token.verify(&tsa.public_key(), b"msg").is_ok());
    }

    #[test]
    fn stamp_rejects_other_message() {
        let tsa = tsa();
        let token = tsa.stamp(b"msg", TimeMs(10));
        assert_eq!(
            token.verify(&tsa.public_key(), b"other"),
            Err(CryptoError::BadTimeStamp("digest does not match message"))
        );
    }

    #[test]
    fn stamp_rejects_forged_time() {
        let tsa = tsa();
        let mut token = tsa.stamp(b"msg", TimeMs(10));
        token.time = TimeMs(99); // backdating attempt
        assert!(token.verify(&tsa.public_key(), b"msg").is_err());
    }

    #[test]
    fn stamp_rejects_wrong_authority() {
        let a = tsa();
        let b = TimeStampAuthority::new(KeyPair::generate_from_seed(78));
        let token = a.stamp(b"msg", TimeMs(10));
        assert!(token.verify(&b.public_key(), b"msg").is_err());
    }
}
