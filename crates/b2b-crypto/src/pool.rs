//! A fixed-size worker pool for signature verification.
//!
//! Signature verification is pure CPU work with no shared mutable state, so
//! independent groups' batches can verify on all cores. [`VerifyPool`] owns
//! `n` OS threads pulling [`VerifyJob`]s off a shared channel; callers hand
//! in an owned batch of `(key, message, signature)` triples and block on a
//! per-call reply channel. The pool deliberately stays below the protocol
//! layer: it knows nothing about caches, rings or parties — the coordinator
//! composes it with its LRU verify-cache (cache hits never reach the pool).
//!
//! Verification inside a job is all-or-nothing ([`crate::sig::verify_batch`]
//! semantics); a caller that needs to attribute a failure re-verifies the
//! failing batch item by item on its own thread.

use crate::keys::PublicKey;
use crate::sig::{verify_batch, Signature};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One owned verification triple: `(key, message, signature)`.
///
/// Messages travel as `Arc<[u8]>` so multicast payloads already held by the
/// wire layer cross into the pool without copying.
pub type VerifyItem = (PublicKey, Arc<[u8]>, Signature);

struct VerifyJob {
    items: Vec<VerifyItem>,
    reply: Sender<bool>,
}

/// A pool of verification worker threads sharing one job queue.
///
/// # Example
///
/// ```
/// use b2b_crypto::{KeyPair, Signer, VerifyPool};
/// use std::sync::Arc;
///
/// let pool = VerifyPool::new(2);
/// let kp = KeyPair::generate_from_seed(1);
/// let msg: Arc<[u8]> = Arc::from(b"payload".as_slice());
/// let sig = kp.sign(&msg);
/// assert!(pool.verify(vec![(kp.public_key(), msg, sig)]));
/// ```
pub struct VerifyPool {
    tx: Option<Sender<VerifyJob>>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl VerifyPool {
    /// Spawns a pool with `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> VerifyPool {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<VerifyJob>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("b2b-verify-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn verify worker")
            })
            .collect();
        VerifyPool {
            tx: Some(tx),
            workers,
            handles,
        }
    }

    /// Spawns a pool sized to the machine's available parallelism.
    pub fn with_default_parallelism() -> VerifyPool {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        VerifyPool::new(n)
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Verifies `items`, splitting them into chunks across the workers.
    ///
    /// Blocks the calling thread until every chunk reports. Returns `true`
    /// only if **all** items verify (all-or-nothing, like
    /// [`crate::sig::verify_batch`]); callers needing to identify the
    /// offending item fall back to per-item verification.
    pub fn verify(&self, items: Vec<VerifyItem>) -> bool {
        if items.is_empty() {
            return true;
        }
        let tx = self.tx.as_ref().expect("pool alive");
        let chunk = items.len().div_ceil(self.workers);
        let (reply_tx, reply_rx) = unbounded::<bool>();
        let mut jobs = 0usize;
        let mut items = items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            let job = VerifyJob {
                items: std::mem::replace(&mut items, rest),
                reply: reply_tx.clone(),
            };
            if tx.send(job).is_err() {
                return false;
            }
            jobs += 1;
        }
        drop(reply_tx);
        let mut ok = true;
        for _ in 0..jobs {
            match reply_rx.recv() {
                Ok(chunk_ok) => ok &= chunk_ok,
                Err(_) => return false,
            }
        }
        ok
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker's recv() return Err and the
        // thread exit; join so no worker outlives the pool.
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<VerifyJob>>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok(job) = job else { return };
        let borrowed: Vec<(&PublicKey, &[u8], &Signature)> = job
            .items
            .iter()
            .map(|(k, m, s)| (k, m.as_ref(), s))
            .collect();
        let ok = verify_batch(&borrowed).is_ok();
        // The caller may have given up (send error is fine to ignore).
        let _ = job.reply.send(ok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use crate::sig::Signer;

    fn item(seed: u64, msg: &[u8]) -> VerifyItem {
        let kp = KeyPair::generate_from_seed(seed);
        let sig = kp.sign(msg);
        (kp.public_key(), Arc::from(msg), sig)
    }

    #[test]
    fn all_good_batch_passes() {
        let pool = VerifyPool::new(3);
        let items: Vec<VerifyItem> = (0..10)
            .map(|i| item(i, format!("m{i}").as_bytes()))
            .collect();
        assert!(pool.verify(items));
    }

    #[test]
    fn one_bad_item_fails_the_whole_batch() {
        let pool = VerifyPool::new(3);
        let mut items: Vec<VerifyItem> = (0..10).map(|i| item(i, b"msg")).collect();
        // Swap one signature for a signature over different bytes.
        let forged = KeyPair::generate_from_seed(4).sign(b"other");
        items[4].2 = forged;
        assert!(!pool.verify(items));
    }

    #[test]
    fn empty_batch_is_trivially_valid() {
        let pool = VerifyPool::new(1);
        assert!(pool.verify(Vec::new()));
    }

    #[test]
    fn more_items_than_workers_still_all_verified() {
        let pool = VerifyPool::new(2);
        let mut items: Vec<VerifyItem> = (0..33).map(|i| item(i, b"x")).collect();
        assert!(pool.verify(items.clone()));
        // Corrupt the last item: chunking must not drop the tail.
        items[32].2 = KeyPair::generate_from_seed(32).sign(b"tampered");
        assert!(!pool.verify(items));
    }

    #[test]
    fn pool_shuts_down_cleanly_on_drop() {
        let pool = VerifyPool::new(4);
        assert!(pool.verify(vec![item(1, b"m")]));
        drop(pool); // must not hang
    }
}
