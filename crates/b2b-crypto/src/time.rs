//! Millisecond time values shared by the time-stamping service, the network
//! simulator's virtual clock, and protocol deadlines.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time (or a duration), in milliseconds.
///
/// The middleware never assumes wall-clock time: under the deterministic
/// network simulator this is virtual time, under the threaded runtime it is
/// milliseconds since process start.
///
/// # Example
///
/// ```
/// use b2b_crypto::TimeMs;
/// let t = TimeMs(100) + TimeMs(50);
/// assert_eq!(t, TimeMs(150));
/// assert_eq!(t - TimeMs(150), TimeMs::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct TimeMs(pub u64);

impl TimeMs {
    /// Time zero.
    pub const ZERO: TimeMs = TimeMs(0);

    /// Returns the raw millisecond count.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: never underflows below zero.
    pub fn saturating_sub(self, rhs: TimeMs) -> TimeMs {
        TimeMs(self.0.saturating_sub(rhs.0))
    }
}

impl Add for TimeMs {
    type Output = TimeMs;
    fn add(self, rhs: TimeMs) -> TimeMs {
        TimeMs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeMs {
    fn add_assign(&mut self, rhs: TimeMs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeMs {
    type Output = TimeMs;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`TimeMs::saturating_sub`] when that is possible.
    fn sub(self, rhs: TimeMs) -> TimeMs {
        TimeMs(self.0 - rhs.0)
    }
}

impl fmt::Display for TimeMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Debug for TimeMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeMs({})", self.0)
    }
}

impl From<u64> for TimeMs {
    fn from(ms: u64) -> Self {
        TimeMs(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(TimeMs(5) + TimeMs(7), TimeMs(12));
        assert_eq!(TimeMs(12) - TimeMs(7), TimeMs(5));
        let mut t = TimeMs(1);
        t += TimeMs(2);
        assert_eq!(t, TimeMs(3));
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(TimeMs(3).saturating_sub(TimeMs(10)), TimeMs::ZERO);
        assert_eq!(TimeMs(10).saturating_sub(TimeMs(3)), TimeMs(7));
    }

    #[test]
    fn display() {
        assert_eq!(TimeMs(42).to_string(), "42ms");
    }

    #[test]
    fn ordering() {
        assert!(TimeMs(1) < TimeMs(2));
        assert_eq!(TimeMs::default(), TimeMs::ZERO);
    }
}
