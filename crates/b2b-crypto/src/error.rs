//! Error types for the crypto substrate.

use thiserror::Error;

/// Errors arising from cryptographic operations.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed verification against the claimed key and message.
    #[error("signature verification failed for scheme {scheme}")]
    BadSignature {
        /// The scheme the signature claimed to use.
        scheme: &'static str,
    },
    /// A signature used a scheme the verifier does not recognise.
    #[error("unknown signature scheme tag {0}")]
    UnknownScheme(u8),
    /// A signature or key had the wrong byte length for its scheme.
    #[error("malformed {what}: expected {expected} bytes, got {got}")]
    MalformedBytes {
        /// What was malformed ("signature", "public key", ...).
        what: &'static str,
        /// The expected length.
        expected: usize,
        /// The actual length.
        got: usize,
    },
    /// A key was requested for a party not present in the key ring.
    #[error("no public key registered for party {0}")]
    UnknownParty(String),
    /// A time-stamp token failed verification.
    #[error("time-stamp verification failed: {0}")]
    BadTimeStamp(&'static str),
}
