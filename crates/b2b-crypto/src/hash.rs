//! Secure hashing (SHA-256) and the [`Digest32`] newtype.
//!
//! The paper (§4.2) requires a one-way, collision-resistant hash `H` used to
//! bind state identifier tuples to object state, to commit to the proposer's
//! random authenticator, and to identify group membership.

use serde::{Deserialize, Serialize};
use sha2::{Digest, Sha256};
use std::fmt;

/// A 32-byte SHA-256 digest.
///
/// Used throughout the middleware wherever the paper writes `H(x)`:
/// `H(state)`, `H(random)`, `H(members)`, `H(update)`.
///
/// # Example
///
/// ```
/// use b2b_crypto::{sha256, Digest32};
/// let d: Digest32 = sha256(b"state bytes");
/// assert_ne!(d, Digest32::ZERO);
/// assert_eq!(d.to_string().len(), 64); // hex
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest32(pub [u8; 32]);

// Serialized as a 64-character hex string rather than the derived form (a
// JSON array of 32 integers). Digests are the most common leaf in every
// message, snapshot and evidence record; one string node keeps wire frames
// dense and makes structural serialization O(1) tree nodes per digest
// instead of 32.
impl Serialize for Digest32 {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(hex::encode(self.0))
    }
}

impl Deserialize for Digest32 {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => Digest32::from_hex(s)
                .ok_or_else(|| serde::Error::msg("Digest32: expected 64 hex characters")),
            _ => Err(serde::Error::msg("Digest32: expected hex string")),
        }
    }
}

impl Digest32 {
    /// The all-zero digest, usable as a sentinel for "no state yet".
    pub const ZERO: Digest32 = Digest32([0u8; 32]);

    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Renders the first four bytes as hex, for compact log output.
    pub fn short_hex(&self) -> String {
        hex::encode(&self.0[..4])
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns `None` if `s` is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Digest32> {
        let bytes = hex::decode(s).ok()?;
        let arr: [u8; 32] = bytes.try_into().ok()?;
        Some(Digest32(arr))
    }
}

impl fmt::Display for Digest32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&hex::encode(self.0))
    }
}

impl fmt::Debug for Digest32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest32({}…)", self.short_hex())
    }
}

impl AsRef<[u8]> for Digest32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest32 {
    fn from(bytes: [u8; 32]) -> Self {
        Digest32(bytes)
    }
}

/// Hashes `data` with SHA-256.
///
/// # Example
///
/// ```
/// use b2b_crypto::sha256;
/// assert_eq!(sha256(b"abc"), sha256(b"abc"));
/// assert_ne!(sha256(b"abc"), sha256(b"abd"));
/// ```
pub fn sha256(data: &[u8]) -> Digest32 {
    let mut hasher = Sha256::new();
    hasher.update(data);
    Digest32(hasher.finalize())
}

/// Hashes the concatenation of several byte slices, each length-prefixed so
/// that `(["ab"], ["c"])` and `(["a"], ["bc"])` hash differently.
///
/// # Example
///
/// ```
/// use b2b_crypto::sha256_concat;
/// let a = sha256_concat(&[b"ab", b"c"]);
/// let b = sha256_concat(&[b"a", b"bc"]);
/// assert_ne!(a, b);
/// ```
pub fn sha256_concat(parts: &[&[u8]]) -> Digest32 {
    let mut hasher = Sha256::new();
    for part in parts {
        hasher.update((part.len() as u64).to_be_bytes());
        hasher.update(part);
    }
    Digest32(hasher.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_display_is_hex() {
        let d = sha256(b"hello");
        let s = d.to_string();
        assert_eq!(s.len(), 64);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = sha256(b"roundtrip");
        let parsed = Digest32::from_hex(&d.to_string()).unwrap();
        assert_eq!(d, parsed);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Digest32::from_hex("zz").is_none());
        assert!(Digest32::from_hex(&"a".repeat(63)).is_none());
        assert!(Digest32::from_hex(&"g".repeat(64)).is_none());
    }

    #[test]
    fn concat_is_length_prefixed() {
        assert_ne!(sha256_concat(&[b"ab", b"c"]), sha256_concat(&[b"a", b"bc"]));
        assert_ne!(sha256_concat(&[b"abc"]), sha256(b"abc"));
    }

    #[test]
    fn zero_is_distinct_from_real_digests() {
        assert_ne!(sha256(b""), Digest32::ZERO);
    }

    #[test]
    fn known_vector() {
        // SHA-256("abc") from FIPS 180-2.
        assert_eq!(
            sha256(b"abc").to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn debug_is_nonempty_and_short() {
        let dbg = format!("{:?}", sha256(b"x"));
        assert!(dbg.starts_with("Digest32("));
        assert!(dbg.len() < 24);
    }
}
