//! Key material: [`KeyPair`] (Ed25519 signing keys), [`PublicKey`]
//! (verification keys) and the [`KeyRing`] mapping parties to keys.
//!
//! "All parties are assumed to have the means to verify each other's
//! signatures" (§4.2) — the key ring is that means; in a deployment it would
//! be populated from certificates issued by a mutually acceptable CA (see
//! [`crate::cert`]).

use crate::error::CryptoError;
use crate::identity::PartyId;
use crate::sig::{verify_insecure, SigVerifier, Signature, SignatureScheme, Signer};
use ed25519_dalek::{Signer as DalekSigner, SigningKey, Verifier, VerifyingKey};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A verification (public) key, tagged with its scheme.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    scheme: SignatureScheme,
    bytes: Vec<u8>,
}

impl PublicKey {
    /// Creates a public key from raw scheme bytes.
    pub fn new(scheme: SignatureScheme, bytes: Vec<u8>) -> PublicKey {
        PublicKey { scheme, bytes }
    }

    /// The scheme this key verifies.
    pub fn scheme(&self) -> SignatureScheme {
        self.scheme
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PublicKey({}, {}…)",
            self.scheme.name(),
            hex::encode(&self.bytes[..self.bytes.len().min(4)])
        )
    }
}

impl SigVerifier for PublicKey {
    fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), CryptoError> {
        if sig.scheme() != self.scheme {
            return Err(CryptoError::BadSignature {
                scheme: sig.scheme().name(),
            });
        }
        match self.scheme {
            SignatureScheme::Ed25519 => {
                let key_bytes: [u8; 32] =
                    self.bytes
                        .as_slice()
                        .try_into()
                        .map_err(|_| CryptoError::MalformedBytes {
                            what: "public key",
                            expected: 32,
                            got: self.bytes.len(),
                        })?;
                let key = VerifyingKey::from_bytes(&key_bytes).map_err(|_| {
                    CryptoError::MalformedBytes {
                        what: "public key",
                        expected: 32,
                        got: self.bytes.len(),
                    }
                })?;
                let sig_bytes: [u8; 64] =
                    sig.as_bytes()
                        .try_into()
                        .map_err(|_| CryptoError::MalformedBytes {
                            what: "signature",
                            expected: 64,
                            got: sig.as_bytes().len(),
                        })?;
                let dalek_sig = ed25519_dalek::Signature::from_bytes(&sig_bytes);
                key.verify(msg, &dalek_sig)
                    .map_err(|_| CryptoError::BadSignature {
                        scheme: SignatureScheme::Ed25519.name(),
                    })
            }
            SignatureScheme::Insecure => verify_insecure(&self.bytes, msg, sig),
        }
    }
}

/// An Ed25519 signing key pair for one party.
///
/// # Example
///
/// ```
/// use b2b_crypto::{KeyPair, Signer, SigVerifier};
/// let kp = KeyPair::generate_from_seed(42);
/// let sig = kp.sign(b"data");
/// assert!(kp.public_key().verify(b"data", &sig).is_ok());
/// ```
#[derive(Clone)]
pub struct KeyPair {
    signing: SigningKey,
}

impl KeyPair {
    /// Generates a fresh key pair from a cryptographically secure RNG.
    pub fn generate(rng: &mut (impl RngCore + rand::CryptoRng)) -> KeyPair {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        KeyPair {
            signing: SigningKey::from_bytes(&seed),
        }
    }

    /// Generates a deterministic key pair from a seed.
    ///
    /// Intended for tests and reproducible simulations; a deployment would
    /// use [`KeyPair::generate`].
    pub fn generate_from_seed(seed: u64) -> KeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        KeyPair {
            signing: SigningKey::from_bytes(&bytes),
        }
    }
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyPair({:?})", self.public_key())
    }
}

impl Signer for KeyPair {
    fn sign(&self, msg: &[u8]) -> Signature {
        let sig = self.signing.sign(msg);
        Signature::new(SignatureScheme::Ed25519, sig.to_bytes().to_vec())
    }

    fn public_key(&self) -> PublicKey {
        PublicKey::new(
            SignatureScheme::Ed25519,
            self.signing.verifying_key().to_bytes().to_vec(),
        )
    }
}

/// A shared directory mapping parties to their verification keys.
///
/// Cloning a `KeyRing` is cheap; clones share the same underlying map
/// snapshot semantics are copy-on-write via `Arc` per registration epoch.
///
/// # Example
///
/// ```
/// use b2b_crypto::{KeyPair, KeyRing, PartyId, Signer};
/// let alice = KeyPair::generate_from_seed(1);
/// let mut ring = KeyRing::new();
/// ring.register(PartyId::new("alice"), alice.public_key());
/// let sig = alice.sign(b"m");
/// assert!(ring.verify_for(&PartyId::new("alice"), b"m", &sig).is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct KeyRing {
    keys: Arc<HashMap<PartyId, PublicKey>>,
}

impl KeyRing {
    /// Creates an empty key ring.
    pub fn new() -> KeyRing {
        KeyRing::default()
    }

    /// Registers (or replaces) the key for `party`.
    pub fn register(&mut self, party: PartyId, key: PublicKey) {
        Arc::make_mut(&mut self.keys).insert(party, key);
    }

    /// Looks up the key for `party`.
    pub fn key_for(&self, party: &PartyId) -> Option<&PublicKey> {
        self.keys.get(party)
    }

    /// Verifies `sig` over `msg` as a signature by `party`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnknownParty`] if `party` has no registered
    /// key, or a verification error from the key itself.
    pub fn verify_for(
        &self,
        party: &PartyId,
        msg: &[u8],
        sig: &Signature,
    ) -> Result<(), CryptoError> {
        let key = self
            .keys
            .get(party)
            .ok_or_else(|| CryptoError::UnknownParty(party.to_string()))?;
        key.verify(msg, sig)
    }

    /// Returns the number of registered parties.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` if no parties are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over `(party, key)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&PartyId, &PublicKey)> {
        self.keys.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::InsecureSigner;

    #[test]
    fn ed25519_roundtrip() {
        let kp = KeyPair::generate_from_seed(3);
        let sig = kp.sign(b"hello");
        assert!(kp.public_key().verify(b"hello", &sig).is_ok());
    }

    #[test]
    fn ed25519_rejects_tampered_message() {
        let kp = KeyPair::generate_from_seed(3);
        let sig = kp.sign(b"hello");
        assert_eq!(
            kp.public_key().verify(b"hellp", &sig),
            Err(CryptoError::BadSignature { scheme: "ed25519" })
        );
    }

    #[test]
    fn ed25519_rejects_wrong_key() {
        let a = KeyPair::generate_from_seed(1);
        let b = KeyPair::generate_from_seed(2);
        let sig = a.sign(b"m");
        assert!(b.public_key().verify(b"m", &sig).is_err());
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = KeyPair::generate_from_seed(9);
        let b = KeyPair::generate_from_seed(9);
        assert_eq!(a.public_key(), b.public_key());
        assert_ne!(a.public_key(), KeyPair::generate_from_seed(10).public_key());
    }

    #[test]
    fn scheme_mismatch_is_rejected() {
        let ed = KeyPair::generate_from_seed(1);
        let insecure = InsecureSigner::from_seed(1);
        let sig = insecure.sign(b"m");
        assert!(ed.public_key().verify(b"m", &sig).is_err());
    }

    #[test]
    fn keyring_lookup_and_verify() {
        let kp = KeyPair::generate_from_seed(5);
        let mut ring = KeyRing::new();
        assert!(ring.is_empty());
        ring.register(PartyId::new("p"), kp.public_key());
        assert_eq!(ring.len(), 1);
        let sig = kp.sign(b"x");
        assert!(ring.verify_for(&PartyId::new("p"), b"x", &sig).is_ok());
        assert!(matches!(
            ring.verify_for(&PartyId::new("q"), b"x", &sig),
            Err(CryptoError::UnknownParty(_))
        ));
    }

    #[test]
    fn keyring_clones_share_then_diverge() {
        let mut a = KeyRing::new();
        a.register(
            PartyId::new("p"),
            KeyPair::generate_from_seed(1).public_key(),
        );
        let b = a.clone();
        a.register(
            PartyId::new("q"),
            KeyPair::generate_from_seed(2).public_key(),
        );
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn malformed_signature_length_reported() {
        let kp = KeyPair::generate_from_seed(1);
        let bad = Signature::new(SignatureScheme::Ed25519, vec![0u8; 10]);
        assert_eq!(
            kp.public_key().verify(b"m", &bad),
            Err(CryptoError::MalformedBytes {
                what: "signature",
                expected: 64,
                got: 10
            })
        );
    }
}
