//! Party identity.
//!
//! The paper identifies protocol participants as `P_1 … P_n`; a participant
//! identifier "is assumed to provide access to the information necessary
//! both to establish a connection with the party and to verify the party's
//! signature" (§4.5.3). [`PartyId`] is the name half of that assumption; the
//! [`crate::KeyRing`] and [`crate::Certificate`] machinery provide the rest.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;

/// The identity of an organisation participating in information sharing.
///
/// # Example
///
/// ```
/// use b2b_crypto::PartyId;
/// let customer = PartyId::new("customer");
/// assert_eq!(customer.as_str(), "customer");
/// assert_eq!(customer.to_string(), "customer");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PartyId(String);

impl PartyId {
    /// Creates a party identifier from any string-like name.
    pub fn new(name: impl Into<String>) -> PartyId {
        PartyId(name.into())
    }

    /// Returns the identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PartyId({})", self.0)
    }
}

impl From<&str> for PartyId {
    fn from(s: &str) -> Self {
        PartyId::new(s)
    }
}

impl From<String> for PartyId {
    fn from(s: String) -> Self {
        PartyId::new(s)
    }
}

impl Borrow<str> for PartyId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for PartyId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn construction_and_display() {
        let p = PartyId::new("org1");
        assert_eq!(p.to_string(), "org1");
        assert_eq!(format!("{p:?}"), "PartyId(org1)");
    }

    #[test]
    fn conversions() {
        let a: PartyId = "x".into();
        let b: PartyId = String::from("x").into();
        assert_eq!(a, b);
    }

    #[test]
    fn borrow_str_allows_map_lookup_without_allocation() {
        let mut m: HashMap<PartyId, u32> = HashMap::new();
        m.insert(PartyId::new("supplier"), 1);
        assert_eq!(m.get("supplier"), Some(&1));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(PartyId::new("a") < PartyId::new("b"));
    }
}
