//! Property-based tests of the cryptographic substrate: signature
//! soundness over arbitrary messages, canonical-encoding injectivity, and
//! certificate window semantics.

use b2b_crypto::{
    sha256, CanonicalEncode, CertificateAuthority, Encoder, KeyPair, PartyId, SigVerifier, Signer,
    TimeMs, TimeStampAuthority,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Signatures verify on the signed message and fail on any other.
    #[test]
    fn signatures_bind_exactly_one_message(seed in 0u64..1_000, a: Vec<u8>, b: Vec<u8>) {
        let kp = KeyPair::generate_from_seed(seed);
        let sig = kp.sign(&a);
        prop_assert!(kp.public_key().verify(&a, &sig).is_ok());
        prop_assert_eq!(kp.public_key().verify(&b, &sig).is_ok(), a == b);
    }

    /// Signatures do not verify under a different key.
    #[test]
    fn signatures_bind_exactly_one_key(s1 in 0u64..500, s2 in 0u64..500, msg: Vec<u8>) {
        let k1 = KeyPair::generate_from_seed(s1);
        let k2 = KeyPair::generate_from_seed(s2);
        let sig = k1.sign(&msg);
        prop_assert_eq!(k2.public_key().verify(&msg, &sig).is_ok(), s1 == s2);
    }

    /// The length-prefixed string encoding is injective over sequences:
    /// two different string lists never produce the same bytes.
    #[test]
    fn canonical_string_sequences_are_injective(
        xs in proptest::collection::vec(".{0,12}", 0..6),
        ys in proptest::collection::vec(".{0,12}", 0..6),
    ) {
        let encode = |list: &[String]| {
            let mut enc = Encoder::new();
            enc.put_u64(list.len() as u64);
            for s in list {
                s.encode(&mut enc);
            }
            enc.finish()
        };
        prop_assert_eq!(encode(&xs) == encode(&ys), xs == ys);
    }

    /// Hash concatenation with length prefixes is injective over splits.
    #[test]
    fn sha256_concat_resists_splice(a: Vec<u8>, b: Vec<u8>, c: Vec<u8>) {
        use b2b_crypto::sha256_concat;
        let left = sha256_concat(&[&a, &b]);
        let right = sha256_concat(&[&c]);
        // A two-part hash never equals a one-part hash of the concatenation
        // (length prefixes differ) unless it is the trivially same input
        // structure — which it never is here.
        prop_assert_ne!(left, right);
    }

    /// Time-stamp tokens verify exactly on the stamped message.
    #[test]
    fn timestamps_bind_message_and_time(t in 0u64..1_000_000, msg: Vec<u8>, other: Vec<u8>) {
        let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(9));
        let token = tsa.stamp(&msg, TimeMs(t));
        prop_assert!(token.verify(&tsa.public_key(), &msg).is_ok());
        prop_assert_eq!(token.verify(&tsa.public_key(), &other).is_ok(), msg == other);
    }

    /// Certificates are valid exactly within their window.
    #[test]
    fn certificate_window_is_half_open(
        nb in 0u64..1_000,
        len in 1u64..1_000,
        probe in 0u64..3_000,
    ) {
        let ca = CertificateAuthority::new(PartyId::new("ca"), KeyPair::generate_from_seed(1));
        let kp = KeyPair::generate_from_seed(2);
        let cert = ca.issue(PartyId::new("s"), kp.public_key(), TimeMs(nb), TimeMs(nb + len));
        let valid = probe >= nb && probe < nb + len;
        prop_assert_eq!(cert.verify(&ca.public_key(), TimeMs(probe)).is_ok(), valid);
    }

    /// Digests are stable and collision-free over distinct small inputs
    /// (sanity property, not a cryptographic claim).
    #[test]
    fn digest_equality_mirrors_input_equality(a: Vec<u8>, b: Vec<u8>) {
        prop_assert_eq!(sha256(&a) == sha256(&b), a == b);
    }
}
