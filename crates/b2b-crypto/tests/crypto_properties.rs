//! Randomized tests of the cryptographic substrate: signature soundness
//! over arbitrary messages, canonical-encoding injectivity, and certificate
//! window semantics.
//!
//! These were property-based (proptest) tests; the offline build vendors no
//! proptest, so each property runs as a seeded deterministic loop instead —
//! same invariants, reproducible cases.

use b2b_crypto::{
    sha256, CanonicalEncode, CertificateAuthority, Encoder, KeyPair, PartyId, SigVerifier, Signer,
    TimeMs, TimeStampAuthority,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: u64 = 32;

fn bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect()
}

/// Half the time returns a copy of `a`, so `eq`-conditioned assertions
/// exercise both branches (random byte vectors are almost never equal).
fn same_or_fresh(rng: &mut StdRng, a: &[u8], max_len: usize) -> Vec<u8> {
    if rng.gen_bool(0.5) {
        a.to_vec()
    } else {
        bytes(rng, max_len)
    }
}

fn words(rng: &mut StdRng, max_items: usize, max_len: usize) -> Vec<String> {
    let n = rng.gen_range(0..=max_items);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(0..=max_len);
            (0..len)
                .map(|_| (b'a' + rng.gen_range(0..26u32) as u8) as char)
                .collect()
        })
        .collect()
}

/// Signatures verify on the signed message and fail on any other.
#[test]
fn signatures_bind_exactly_one_message() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51B1 ^ case);
        let kp = KeyPair::generate_from_seed(rng.gen_range(0..1_000u64));
        let a = bytes(&mut rng, 48);
        let b = same_or_fresh(&mut rng, &a, 48);
        let sig = kp.sign(&a);
        assert!(kp.public_key().verify(&a, &sig).is_ok());
        assert_eq!(kp.public_key().verify(&b, &sig).is_ok(), a == b);
    }
}

/// Signatures do not verify under a different key.
#[test]
fn signatures_bind_exactly_one_key() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51B2 ^ case);
        let s1 = rng.gen_range(0..500u64);
        let s2 = if rng.gen_bool(0.5) {
            s1
        } else {
            rng.gen_range(0..500u64)
        };
        let msg = bytes(&mut rng, 48);
        let k1 = KeyPair::generate_from_seed(s1);
        let k2 = KeyPair::generate_from_seed(s2);
        let sig = k1.sign(&msg);
        assert_eq!(k2.public_key().verify(&msg, &sig).is_ok(), s1 == s2);
    }
}

/// The length-prefixed string encoding is injective over sequences:
/// two different string lists never produce the same bytes.
#[test]
fn canonical_string_sequences_are_injective() {
    let encode = |list: &[String]| {
        let mut enc = Encoder::new();
        enc.put_u64(list.len() as u64);
        for s in list {
            s.encode(&mut enc);
        }
        enc.finish()
    };
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51B3 ^ case);
        let xs = words(&mut rng, 5, 12);
        let ys = if rng.gen_bool(0.5) {
            xs.clone()
        } else {
            words(&mut rng, 5, 12)
        };
        assert_eq!(encode(&xs) == encode(&ys), xs == ys);
    }
}

/// Hash concatenation with length prefixes is injective over splits.
#[test]
fn sha256_concat_resists_splice() {
    use b2b_crypto::sha256_concat;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51B4 ^ case);
        let a = bytes(&mut rng, 32);
        let b = bytes(&mut rng, 32);
        let c = bytes(&mut rng, 32);
        // A two-part hash never equals a one-part hash of the concatenation
        // (length prefixes differ) unless it is the trivially same input
        // structure — which it never is here.
        assert_ne!(sha256_concat(&[&a, &b]), sha256_concat(&[&c]));
    }
}

/// Time-stamp tokens verify exactly on the stamped message.
#[test]
fn timestamps_bind_message_and_time() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51B5 ^ case);
        let t = rng.gen_range(0..1_000_000u64);
        let msg = bytes(&mut rng, 48);
        let other = same_or_fresh(&mut rng, &msg, 48);
        let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(9));
        let token = tsa.stamp(&msg, TimeMs(t));
        assert!(token.verify(&tsa.public_key(), &msg).is_ok());
        assert_eq!(
            token.verify(&tsa.public_key(), &other).is_ok(),
            msg == other
        );
    }
}

/// Certificates are valid exactly within their window.
#[test]
fn certificate_window_is_half_open() {
    let ca = CertificateAuthority::new(PartyId::new("ca"), KeyPair::generate_from_seed(1));
    let kp = KeyPair::generate_from_seed(2);
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51B6 ^ case);
        let nb = rng.gen_range(0..1_000u64);
        let len = rng.gen_range(1..1_000u64);
        // Bias probes toward the window edges to hit both boundaries.
        let probe = match rng.gen_range(0..4u32) {
            0 => nb,
            1 => nb + len,
            _ => rng.gen_range(0..3_000u64),
        };
        let cert = ca.issue(
            PartyId::new("s"),
            kp.public_key(),
            TimeMs(nb),
            TimeMs(nb + len),
        );
        let valid = probe >= nb && probe < nb + len;
        assert_eq!(cert.verify(&ca.public_key(), TimeMs(probe)).is_ok(), valid);
    }
}

/// Digests are stable and collision-free over distinct small inputs
/// (sanity property, not a cryptographic claim).
#[test]
fn digest_equality_mirrors_input_equality() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51B7 ^ case);
        let a = bytes(&mut rng, 48);
        let b = same_or_fresh(&mut rng, &a, 48);
        assert_eq!(sha256(&a) == sha256(&b), a == b);
    }
}
