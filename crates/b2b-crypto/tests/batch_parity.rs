//! Satellite: vendored-shim parity. `vendor/ed25519-dalek::verify_batch`
//! (reached through `b2b_crypto::verify_batch`) must agree with per-signature
//! `verify` on every (good, forged, wrong-key) mix — a batch passes exactly
//! when each of its items would pass individually.
//!
//! There is no property-testing crate in the build environment, so this is a
//! seeded exhaustive-ish sweep: every mix vector of length ≤ 4 over the three
//! item kinds (3^1 + … + 3^4 = 120 batches), plus a randomized long-batch
//! sweep driven by a seeded RNG.

use b2b_crypto::{verify_batch, KeyPair, PublicKey, SigVerifier, Signature, Signer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Copy, Debug, PartialEq)]
enum ItemKind {
    Good,
    Forged,
    WrongKey,
}

const KINDS: [ItemKind; 3] = [ItemKind::Good, ItemKind::Forged, ItemKind::WrongKey];

/// Builds one `(key, msg, sig)` triple of the given kind.
fn build_item(kind: ItemKind, index: u64, msg: &[u8]) -> (PublicKey, Vec<u8>, Signature) {
    let signer = KeyPair::generate_from_seed(1000 + index);
    let other = KeyPair::generate_from_seed(5000 + index);
    match kind {
        ItemKind::Good => (signer.public_key(), msg.to_vec(), signer.sign(msg)),
        ItemKind::Forged => {
            // A valid signature by the right key — over different bytes.
            let mut tampered = msg.to_vec();
            tampered.push(0xFF);
            (signer.public_key(), msg.to_vec(), signer.sign(&tampered))
        }
        // A valid signature over the right bytes — by the wrong key.
        ItemKind::WrongKey => (signer.public_key(), msg.to_vec(), other.sign(msg)),
    }
}

fn check_mix(mix: &[ItemKind], salt: u64) {
    let items: Vec<(PublicKey, Vec<u8>, Signature)> = mix
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            build_item(
                *kind,
                salt * 100 + i as u64,
                format!("payload-{salt}-{i}").as_bytes(),
            )
        })
        .collect();
    let borrowed: Vec<(&PublicKey, &[u8], &Signature)> =
        items.iter().map(|(k, m, s)| (k, m.as_slice(), s)).collect();

    let per_item_ok = borrowed.iter().all(|(k, m, s)| k.verify(m, s).is_ok());
    let batch_ok = verify_batch(&borrowed).is_ok();
    assert_eq!(
        batch_ok, per_item_ok,
        "batch/per-item disagreement on mix {mix:?}"
    );
    // Ground truth without running any verifier: a batch is valid iff every
    // item is Good.
    assert_eq!(per_item_ok, mix.iter().all(|k| *k == ItemKind::Good));
}

#[test]
fn every_short_mix_agrees_with_per_item_verify() {
    let mut salt = 0u64;
    for len in 1..=4usize {
        let combos = 3usize.pow(len as u32);
        for c in 0..combos {
            let mut mix = Vec::with_capacity(len);
            let mut rem = c;
            for _ in 0..len {
                mix.push(KINDS[rem % 3]);
                rem /= 3;
            }
            check_mix(&mix, salt);
            salt += 1;
        }
    }
}

#[test]
fn random_long_mixes_agree_with_per_item_verify() {
    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..50u64 {
        let len = rng.gen_range(5usize..24);
        // Bias towards all-good so both branches of the agreement property
        // (accept and reject) are exercised.
        let mix: Vec<ItemKind> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    ItemKind::Good
                } else {
                    KINDS[rng.gen_range(1usize..3)]
                }
            })
            .collect();
        check_mix(&mix, 10_000 + round);
    }
}

#[test]
fn empty_batch_is_valid() {
    assert!(verify_batch(&[]).is_ok());
}
