//! The explorer's acceptance suite: the mutation self-test (every
//! ablated §4.2 invariant is found and shrunk within a fixed
//! deterministic budget, while the unmutated build reports the same
//! seeds clean), replay byte-identity, and the committed counterexample
//! fixtures as regression tests.

use b2b_check::{
    explore, kill_matrix, run_schedule, scenarios, CheckConfig, Counterexample, SchedulePlan,
};
use b2b_core::MutationFlags;
use b2b_telemetry::{names, Telemetry};

/// The acceptance budget: a kill must land within this many schedules.
const KILL_BUDGET: u64 = 500;

/// Schedules swept per scenario on the unmutated build. This always
/// covers every seed a kill run visited (kills land on the very first
/// seeds), and the CI smoke job sweeps a larger window.
const CLEAN_BUDGET: u64 = 60;

/// Every seed is pinned so the suite is deterministic end to end.
const BASE_SEED: u64 = 1;

#[test]
fn each_ablated_invariant_is_killed_and_shrunk_within_budget() {
    for (scenario, flags, label) in kill_matrix() {
        let telemetry = Telemetry::default();
        let cfg = CheckConfig {
            base_seed: BASE_SEED,
            budget: KILL_BUDGET,
            mutation: flags,
            telemetry: telemetry.clone(),
        };
        let out = explore(scenario, &cfg);
        let cx = out
            .counterexample
            .unwrap_or_else(|| panic!("{label}: no violation within {KILL_BUDGET} schedules"));
        assert!(
            out.schedules_run <= KILL_BUDGET,
            "{label}: budget overrun ({})",
            out.schedules_run
        );
        assert!(
            cx.plan.events.len() <= 8,
            "{label}: shrunk plan still has {} fault events",
            cx.plan.events.len()
        );
        assert!(!cx.violations.is_empty(), "{label}: empty violation list");

        // The explorer's own instrumentation moved.
        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter(names::SCHEDULES_EXPLORED), out.schedules_run);
        assert_eq!(snap.counter(names::VIOLATIONS_FOUND), 1);
        assert_eq!(snap.counter(names::SHRINK_STEPS), out.shrink_steps);
        assert!(out.shrink_steps > 0, "{label}: shrinker never ran");

        // The artifact survives a JSON roundtrip and replays to the
        // identical oracle verdict and evidence digests.
        let json = cx.to_json();
        let back = Counterexample::from_json(&json).expect("artifact parses");
        assert_eq!(back, cx);
        back.replay()
            .unwrap_or_else(|e| panic!("{label}: counterexample failed to replay: {e}"));
    }
}

#[test]
fn unmutated_build_reports_the_same_seeds_clean() {
    for scenario in scenarios() {
        let cfg = CheckConfig {
            base_seed: BASE_SEED,
            budget: CLEAN_BUDGET,
            mutation: MutationFlags::default(),
            telemetry: Telemetry::default(),
        };
        let out = explore(scenario, &cfg);
        assert_eq!(
            out.schedules_run,
            CLEAN_BUDGET,
            "{}: clean sweep stopped early: {:?}",
            scenario.id(),
            out.counterexample.map(|cx| cx.violations)
        );
    }
}

#[test]
fn run_schedule_is_deterministic() {
    let (scenario, flags, _) = kill_matrix().remove(0);
    let parties: Vec<_> = (0..scenario.parties())
        .map(|i| b2b_crypto::PartyId::new(format!("org{i}")))
        .collect();
    let plan = SchedulePlan::generate(17, &parties, &scenario.protected());
    let a = run_schedule(scenario, &plan, flags);
    let b = run_schedule(scenario, &plan, flags);
    assert_eq!(
        a, b,
        "identical (scenario, plan, mutation) must replay identically"
    );
}

/// The multi-group smoke scenario models the sharded runtime inside the
/// deterministic explorer: the same seed must replay to the identical
/// verdict (including evidence digests), and the production protocol
/// must hold both groups safe and live under its schedules.
#[test]
fn sharded_pair_smoke_is_deterministic_and_clean() {
    let scenario = b2b_check::scenario("sharded-pair-smoke").expect("registered");
    let parties: Vec<_> = (0..scenario.parties())
        .map(|i| b2b_crypto::PartyId::new(format!("org{i}")))
        .collect();
    for seed in [23, 24, 25] {
        let plan = SchedulePlan::generate(seed, &parties, &scenario.protected());
        let a = run_schedule(scenario, &plan, MutationFlags::default());
        let b = run_schedule(scenario, &plan, MutationFlags::default());
        assert_eq!(
            a, b,
            "seed {seed}: grouped schedule must replay identically"
        );
        assert!(
            !a.violated(),
            "seed {seed}: production protocol fired an oracle: {:?}",
            a.violations
        );
    }
}

/// Every committed counterexample under `tests/fixtures/faultplans/` —
/// including at least one shrunk plan per kill-matrix row — must keep
/// replaying byte-identically: same violations, same evidence digests.
#[test]
fn committed_counterexample_fixtures_still_replay() {
    let dir = format!("{}/tests/fixtures/faultplans", env!("CARGO_MANIFEST_DIR"));
    let mut fixtures: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixture directory present")
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension().map(|x| x == "json") == Some(true)).then_some(path)
        })
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 5,
        "one promoted counterexample per kill-matrix row expected"
    );
    for path in fixtures {
        let json = std::fs::read_to_string(&path).unwrap();
        let cx =
            Counterexample::from_json(&json).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        cx.replay()
            .unwrap_or_else(|e| panic!("{} no longer replays: {e}", path.display()));
    }
}
