//! Seeded generation of serializable whole-schedule fault plans.
//!
//! A [`SchedulePlan`] is everything the explorer injects into one protocol
//! run beyond the scenario's own scripted behaviour: the per-link
//! [`FaultPlan`] (loss, duplication, delay jitter) plus a list of timed
//! [`FaultEvent`]s — crash/recover windows, temporary isolation of a
//! party, and scripted Dolev-Yao intruder actions. Plans serialize to
//! JSON so a counterexample can be committed as a regression fixture and
//! replayed byte-identically.

use b2b_crypto::{PartyId, TimeMs};
use b2b_net::intruder::{ScriptAction, ScriptRule};
use b2b_net::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One timed fault injected into a schedule. Times are virtual-time
/// offsets from the instant the plan is applied (after group setup).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Crash party `party` (a scenario index) at offset `at`, recover it
    /// at offset `until`. Volatile protocol state is lost; the party
    /// restarts from its checkpoint/evidence log.
    Crash {
        /// Scenario index of the crashed party.
        party: usize,
        /// Crash time, as an offset from plan application.
        at: TimeMs,
        /// Recovery time, as an offset from plan application.
        until: TimeMs,
    },
    /// Cut party `party` off from everyone else until offset `until`
    /// (both directions; the partition heals on its own).
    Isolate {
        /// Scenario index of the isolated party.
        party: usize,
        /// Heal time, as an offset from plan application.
        until: TimeMs,
    },
    /// A scripted man-in-the-middle action on a matching data frame
    /// (drop, delay, or later replay), applied by a
    /// [`b2b_net::intruder::ScriptedIntruder`] spliced into every link.
    Script(ScriptRule),
}

/// A complete, replayable fault environment for one schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedulePlan {
    /// Seed this plan was generated from (also reused to seed the
    /// simulator RNG, so drop/dup/jitter rolls replay identically).
    pub seed: u64,
    /// Fault plan applied to every link once setup has completed.
    pub link: FaultPlan,
    /// Timed fault events, in generation order.
    pub events: Vec<FaultEvent>,
}

/// Ceilings of the generator's fault budget. Kept deliberately inside the
/// protocols' bounded-failure envelope: every crash recovers, every
/// partition heals, loss stays probabilistic (< 1.0), so the liveness
/// oracle is entitled to expect eventual termination.
const MAX_DROP_RATE: f64 = 0.4;
const MAX_DUP_RATE: f64 = 0.2;
const MAX_JITTER_MS: u64 = 30;
const MAX_EVENTS: usize = 4;
const MAX_WINDOW_MS: u64 = 2_000;

impl SchedulePlan {
    /// The empty plan: perfect links, no fault events.
    pub fn quiescent(seed: u64) -> SchedulePlan {
        SchedulePlan {
            seed,
            link: FaultPlan::new(),
            events: Vec::new(),
        }
    }

    /// Generates a random plan within the fault budget.
    ///
    /// `parties` are the scenario's member ids in index order; crash and
    /// isolation events are only aimed at indices *not* listed in
    /// `protected` (scenarios protect their driver and insider, whose
    /// scripted invocations would panic on a crashed node).
    pub fn generate(seed: u64, parties: &[PartyId], protected: &[usize]) -> SchedulePlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let link = FaultPlan::new()
            .drop_rate(f64::from(rng.gen_range(0..=(MAX_DROP_RATE * 100.0) as u32)) / 100.0)
            .dup_rate(f64::from(rng.gen_range(0..=(MAX_DUP_RATE * 100.0) as u32)) / 100.0)
            .delay(TimeMs(1), TimeMs(rng.gen_range(1..=MAX_JITTER_MS)));

        let faultable: Vec<usize> = (0..parties.len())
            .filter(|i| !protected.contains(i))
            .collect();

        let mut events = Vec::new();
        for _ in 0..rng.gen_range(0..=MAX_EVENTS) {
            // Weight scripted intruder actions evenly against the two
            // node-level faults; fall back to scripts when every party is
            // protected (the two-party insider scenarios).
            let kind = rng.gen_range(0u32..3);
            match kind {
                0 | 1 if !faultable.is_empty() => {
                    let party = faultable[rng.gen_range(0..faultable.len())];
                    if kind == 0 {
                        let at = TimeMs(rng.gen_range(0..=MAX_WINDOW_MS));
                        let len = rng.gen_range(100..=1_500u64);
                        events.push(FaultEvent::Crash {
                            party,
                            at,
                            until: TimeMs(at.0 + len),
                        });
                    } else {
                        events.push(FaultEvent::Isolate {
                            party,
                            until: TimeMs(rng.gen_range(100..=MAX_WINDOW_MS)),
                        });
                    }
                }
                _ => {
                    let from = if rng.gen_bool(0.5) {
                        Some(parties[rng.gen_range(0..parties.len())].clone())
                    } else {
                        None
                    };
                    let to = if rng.gen_bool(0.5) {
                        Some(parties[rng.gen_range(0..parties.len())].clone())
                    } else {
                        None
                    };
                    let action = match rng.gen_range(0u32..3) {
                        0 => ScriptAction::Drop,
                        1 => ScriptAction::Delay {
                            by: TimeMs(rng.gen_range(10..=400u64)),
                        },
                        _ => ScriptAction::Replay {
                            after: TimeMs(rng.gen_range(5..=200u64)),
                        },
                    };
                    events.push(FaultEvent::Script(ScriptRule {
                        from,
                        to,
                        nth: rng.gen_range(0..=6u64),
                        action,
                    }));
                }
            }
        }
        SchedulePlan { seed, link, events }
    }

    /// The intruder script embedded in this plan, in event order.
    pub fn script(&self) -> Vec<ScriptRule> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Script(rule) => Some(rule.clone()),
                _ => None,
            })
            .collect()
    }

    /// Serializes the plan to JSON (deterministic emitter: the same plan
    /// always yields the same bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("SchedulePlan serializes")
    }

    /// Parses a plan from JSON.
    pub fn from_json(json: &str) -> Result<SchedulePlan, String> {
        serde_json::from_str(json).map_err(|e| format!("bad SchedulePlan JSON: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parties(n: usize) -> Vec<PartyId> {
        (0..n).map(|i| PartyId::new(format!("org{i}"))).collect()
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let ps = parties(3);
        let a = SchedulePlan::generate(42, &ps, &[0]);
        let b = SchedulePlan::generate(42, &ps, &[0]);
        let c = SchedulePlan::generate(43, &ps, &[0]);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_ne!(a.to_json(), c.to_json(), "different seeds diverge");
    }

    #[test]
    fn respects_the_fault_budget_and_protected_parties() {
        let ps = parties(4);
        for seed in 0..200 {
            let plan = SchedulePlan::generate(seed, &ps, &[0, 2]);
            assert!(plan.link.drop_rate <= MAX_DROP_RATE);
            assert!(plan.link.dup_rate <= MAX_DUP_RATE);
            assert!(plan.link.max_delay.0 <= MAX_JITTER_MS);
            assert!(plan.events.len() <= MAX_EVENTS);
            for ev in &plan.events {
                match ev {
                    FaultEvent::Crash { party, at, until } => {
                        assert!(matches!(party, 1 | 3), "crashed a protected party");
                        assert!(at < until, "crash window must recover");
                        assert!(until.0 <= MAX_WINDOW_MS + 1_500);
                    }
                    FaultEvent::Isolate { party, until } => {
                        assert!(matches!(party, 1 | 3), "isolated a protected party");
                        assert!(until.0 <= MAX_WINDOW_MS, "partition must heal");
                    }
                    FaultEvent::Script(_) => {}
                }
            }
        }
    }

    #[test]
    fn all_protected_parties_yields_scripts_only() {
        let ps = parties(2);
        for seed in 0..100 {
            let plan = SchedulePlan::generate(seed, &ps, &[0, 1]);
            for ev in &plan.events {
                assert!(
                    matches!(ev, FaultEvent::Script(_)),
                    "only intruder scripts may target a fully protected group"
                );
            }
        }
    }

    #[test]
    fn json_roundtrip_is_lossless_and_stable() {
        let ps = parties(3);
        // Find a seed exercising every event variant across a few plans.
        for seed in [7u64, 11, 23, 99] {
            let plan = SchedulePlan::generate(seed, &ps, &[]);
            let json = plan.to_json();
            let back = SchedulePlan::from_json(&json).unwrap();
            assert_eq!(plan, back);
            assert_eq!(json, back.to_json(), "emitter is deterministic");
        }
        assert!(SchedulePlan::from_json("{nope").is_err());
    }

    #[test]
    fn script_extracts_intruder_rules_in_order() {
        let mut plan = SchedulePlan::quiescent(1);
        plan.events.push(FaultEvent::Isolate {
            party: 1,
            until: TimeMs(500),
        });
        plan.events.push(FaultEvent::Script(ScriptRule {
            from: None,
            to: None,
            nth: 2,
            action: ScriptAction::Drop,
        }));
        plan.events.push(FaultEvent::Script(ScriptRule {
            from: Some(PartyId::new("org0")),
            to: None,
            nth: 0,
            action: ScriptAction::Delay { by: TimeMs(50) },
        }));
        let script = plan.script();
        assert_eq!(script.len(), 2);
        assert_eq!(script[0].nth, 2);
        assert_eq!(script[1].from, Some(PartyId::new("org0")));
    }
}
