//! Greedy counterexample shrinking.
//!
//! Given a violating [`SchedulePlan`], the shrinker searches for a
//! smaller plan that still makes *some* oracle fire, in three passes:
//! greedy event removal to a fixpoint, link-fault simplification (no
//! loss, no duplication, fixed minimal delay), and bounded halving of
//! the surviving windows and delays. Every candidate costs one full
//! deterministic protocol run, counted in `shrink_steps` telemetry.

use crate::explore::run_schedule;
use crate::plan::{FaultEvent, SchedulePlan};
use crate::scenario::Scenario;
use b2b_core::MutationFlags;
use b2b_crypto::TimeMs;
use b2b_net::intruder::ScriptAction;
use b2b_net::FaultPlan;
use b2b_telemetry::{names, Telemetry};

/// How many rounds of window/delay halving to attempt per field.
const HALVING_ROUNDS: u32 = 4;

/// Shrinks `plan` while `scenario` under `mutation` keeps violating.
/// Returns the smallest plan found and the number of candidate runs.
pub fn shrink(
    scenario: &dyn Scenario,
    plan: &SchedulePlan,
    mutation: MutationFlags,
    telemetry: &Telemetry,
) -> (SchedulePlan, u64) {
    let mut steps = 0u64;
    let mut still_fails = |candidate: &SchedulePlan| {
        steps += 1;
        telemetry.inc(names::SHRINK_STEPS);
        run_schedule(scenario, candidate, mutation).violated()
    };
    let mut best = plan.clone();

    // Pass 1 — greedy event removal, restarting until a fixpoint: a
    // removal that fails alone may succeed once another event is gone.
    loop {
        let mut removed_any = false;
        let mut idx = 0;
        while idx < best.events.len() {
            let mut candidate = best.clone();
            candidate.events.remove(idx);
            if still_fails(&candidate) {
                best = candidate;
                removed_any = true;
            } else {
                idx += 1;
            }
        }
        if !removed_any {
            break;
        }
    }

    // Pass 2 — link simplification, one axis at a time.
    for simplify in [
        (|l: FaultPlan| l.drop_rate(0.0)) as fn(FaultPlan) -> FaultPlan,
        |l| l.dup_rate(0.0),
        |l| l.delay(TimeMs(1), TimeMs(1)),
    ] {
        let mut candidate = best.clone();
        candidate.link = simplify(candidate.link);
        if candidate.link != best.link && still_fails(&candidate) {
            best = candidate;
        }
    }

    // Pass 3 — bounded halving of windows and delays.
    for _ in 0..HALVING_ROUNDS {
        let mut narrowed_any = false;
        for idx in 0..best.events.len() {
            let mut candidate = best.clone();
            if !halve_event(&mut candidate.events[idx]) {
                continue;
            }
            if still_fails(&candidate) {
                best = candidate;
                narrowed_any = true;
            }
        }
        if !narrowed_any {
            break;
        }
    }

    (best, steps)
}

/// Halves an event's window/delay in place; `false` if already minimal.
fn halve_event(ev: &mut FaultEvent) -> bool {
    fn halve(t: TimeMs, floor: u64) -> Option<TimeMs> {
        let next = (t.0 / 2).max(floor);
        (next < t.0).then_some(TimeMs(next))
    }
    match ev {
        FaultEvent::Crash { at, until, .. } => {
            // Keep the window non-empty: halve its length, then its start.
            let len = until.0.saturating_sub(at.0);
            if let Some(shorter) = halve(TimeMs(len), 100) {
                *until = TimeMs(at.0 + shorter.0);
                return true;
            }
            if let Some(earlier) = halve(*at, 0) {
                let keep = until.0 - at.0;
                *at = earlier;
                *until = TimeMs(earlier.0 + keep);
                return true;
            }
            false
        }
        FaultEvent::Isolate { until, .. } => match halve(*until, 100) {
            Some(t) => {
                *until = t;
                true
            }
            None => false,
        },
        FaultEvent::Script(rule) => match &mut rule.action {
            ScriptAction::Delay { by } => match halve(*by, 10) {
                Some(t) => {
                    *by = t;
                    true
                }
                None => false,
            },
            ScriptAction::Replay { after } => match halve(*after, 5) {
                Some(t) => {
                    *after = t;
                    true
                }
                None => false,
            },
            ScriptAction::Drop => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_net::intruder::ScriptRule;

    #[test]
    fn halving_respects_floors_and_terminates() {
        let mut ev = FaultEvent::Isolate {
            party: 1,
            until: TimeMs(1_600),
        };
        let mut rounds = 0;
        while halve_event(&mut ev) {
            rounds += 1;
            assert!(rounds < 20, "halving must terminate");
        }
        match ev {
            FaultEvent::Isolate { until, .. } => assert_eq!(until, TimeMs(100)),
            _ => unreachable!(),
        }

        let mut drop_rule = FaultEvent::Script(ScriptRule {
            from: None,
            to: None,
            nth: 0,
            action: ScriptAction::Drop,
        });
        assert!(!halve_event(&mut drop_rule), "a drop has no magnitude");

        let mut crash = FaultEvent::Crash {
            party: 2,
            at: TimeMs(800),
            until: TimeMs(2_000),
        };
        while halve_event(&mut crash) {}
        match crash {
            FaultEvent::Crash { at, until, .. } => {
                assert_eq!(at, TimeMs(0));
                assert_eq!(until.0 - at.0, 100, "window shrinks to the floor");
            }
            _ => unreachable!(),
        }
    }
}
