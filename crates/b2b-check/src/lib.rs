#![warn(missing_docs)]

//! `b2b-check`: a deterministic schedule explorer and counterexample
//! shrinker for the B2BObjects coordination protocols.
//!
//! The paper's §4.2/§4.4 analysis argues the coordination protocols keep
//! two promises under network faults and a Dolev-Yao adversary: *safety*
//! (no correctly behaving party installs ill-founded or divergent state,
//! and every installed state carries unanimous signed agreement) and
//! *liveness* within a bounded-failure envelope. This crate turns that
//! informal argument into a mechanical search:
//!
//! 1. [`plan`] — a seeded generator of serializable [`SchedulePlan`]s:
//!    per-link fault plans, crash and partition windows, and scripted
//!    Dolev-Yao intruder actions, all within a configurable budget;
//! 2. [`scenario`] — a small registry of whole-group protocol drives,
//!    including *misbehaving-insider* scenarios that craft validly signed
//!    proposals violating exactly one §4.2 invariant;
//! 3. [`oracle`] — pluggable checks evaluated after every schedule:
//!    install divergence, per-party chain contiguity and lineage,
//!    proposal-tuple freshness, decide well-formedness (unanimous signed
//!    agreement behind every install, via the evidence log), a full
//!    [`b2b_evidence::LogAuditor`] pass, and bounded-envelope liveness;
//! 4. [`explore`] — drives seed after seed through a scenario until an
//!    oracle fires or the budget is exhausted;
//! 5. [`shrink`] — greedily removes fault events and narrows windows from
//!    a failing plan while the violation persists;
//! 6. [`artifact`] — a replayable [`Counterexample`]: scenario id, seed,
//!    shrunk plan and expected verdict, byte-identical on replay.
//!
//! The explorer proves its own teeth through mutation testing: with one
//! §4.2 acceptance check ablated ([`b2b_core::MutationFlags`]) it must
//! find and shrink a violating schedule within a fixed budget, while the
//! unmutated build reports the same budget clean.

pub mod artifact;
pub mod explore;
pub mod harness;
pub mod oracle;
pub mod plan;
pub mod scenario;
pub mod shrink;

pub use artifact::Counterexample;
pub use explore::{explore, run_schedule, CheckConfig, CheckOutcome, RunVerdict};
pub use harness::Fleet;
pub use oracle::Violation;
pub use plan::{FaultEvent, SchedulePlan};
pub use scenario::{kill_matrix, scenario, scenarios, DrivenOp, Scenario};
pub use shrink::shrink;
