//! Safety and liveness oracles evaluated after every schedule.
//!
//! Each oracle checks one promise the paper makes about the coordination
//! protocols, judged only at *correctly behaving* parties (never at a
//! scenario's insider — a misbehaving party's own replica carries no
//! guarantee). The per-party history oracles (chain contiguity, lineage)
//! additionally skip parties the schedule crashed, because a crash loses
//! the volatile event buffer — not because the guarantee lapses.

use crate::harness::{party, Fleet};
use crate::scenario::{DrivenOp, Scenario};
use b2b_core::messages::{DecideMsg, ProposeMsg, WireMsg};
use b2b_core::{CoordEventKind, Outcome, RunId, StateId};
use b2b_crypto::sha256;
use b2b_evidence::{EvidenceKind, EvidenceStore, LogAuditor};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One oracle violation. `Display` renders the stable one-line form that
/// counterexample artifacts record and replay compares against.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Two correct parties installed different states at the same
    /// sequence number (§4.1: "all parties see the same sequence of
    /// state changes").
    Divergence {
        /// The sequence number both installs claim.
        seq: u64,
        /// First party index and its installed state id.
        a: (usize, StateId),
        /// Second party index and its conflicting state id.
        b: (usize, StateId),
    },
    /// A correct party's installed sequence numbers skipped a value
    /// (§4.2 invariant 3 is what forbids this end to end).
    ChainGap {
        /// The party whose chain has the gap.
        party: usize,
        /// The sequence number the next install should have carried.
        expected_seq: u64,
        /// The sequence number actually installed.
        got_seq: u64,
    },
    /// A correct party installed a state whose signed proposal names a
    /// predecessor other than the state the party actually held (§4.2
    /// invariant 1 is what forbids this).
    Lineage {
        /// The party that installed the ill-founded state.
        party: usize,
        /// The predecessor named in the proposal on the wire.
        wire_prev: StateId,
        /// The predecessor the party actually held.
        held_prev: StateId,
    },
    /// A correct party installed a run whose proposal tuple
    /// `(seq, H(random))` it had already processed under an earlier,
    /// different run label (§4.4: the tuple "uniquely labels" a
    /// transition; reuse lets one receipt vouch for two states).
    TupleReuse {
        /// The party that accepted the reused tuple.
        party: usize,
        /// The installing run (hex label).
        run: String,
        /// The earlier run that first carried the tuple (hex label).
        earlier_run: String,
        /// The reused sequence number.
        seq: u64,
    },
    /// An installed state is not backed by well-formed unanimous signed
    /// agreement in the party's own evidence log (§4.3: `m3` aggregates
    /// "all decisions and … non-repudiation evidence").
    MalformedDecide {
        /// The party holding the defective evidence.
        party: usize,
        /// The run concerned (hex label).
        run: String,
        /// What was wrong.
        reason: String,
    },
    /// A correct party's evidence log failed the full `b2b-evidence`
    /// audit (missing signatures, broken timestamps, tampered records).
    AuditFault {
        /// The party whose log is defective.
        party: usize,
        /// Number of faulted records.
        faults: usize,
    },
    /// A correct party's held state bytes do not hash to the state hash
    /// its own agreed [`StateId`] claims (§4.2: the signed proposal pins
    /// the installed bytes; for a batched round, the signed per-update
    /// chain must end at exactly the installed state). Installing such a
    /// state means a receipt vouches for bytes the party never held.
    StateHashMismatch {
        /// The party holding the ill-founded state.
        party: usize,
        /// Hex of the state hash the agreed id claims.
        claimed: String,
        /// Hex of the hash of the bytes actually held.
        actual: String,
    },
    /// Bounded-envelope liveness failure: a driven run never terminated,
    /// or the group failed to converge after the net went quiet.
    Stalled {
        /// What failed to make progress.
        reason: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Divergence { seq, a, b } => write!(
                f,
                "divergence: seq {seq} installed as {:?} at org{} but {:?} at org{}",
                a.1, a.0, b.1, b.0
            ),
            Violation::ChainGap {
                party,
                expected_seq,
                got_seq,
            } => write!(
                f,
                "chain-gap: org{party} installed seq {got_seq} where {expected_seq} was due"
            ),
            Violation::Lineage {
                party,
                wire_prev,
                held_prev,
            } => write!(
                f,
                "lineage: org{party} installed over wire prev {wire_prev:?} while holding {held_prev:?}"
            ),
            Violation::TupleReuse {
                party,
                run,
                earlier_run,
                seq,
            } => write!(
                f,
                "tuple-reuse: org{party} installed run {} reusing the tuple (seq {seq}) of earlier run {}",
                &run[..12.min(run.len())],
                &earlier_run[..12.min(earlier_run.len())]
            ),
            Violation::MalformedDecide { party, run, reason } => write!(
                f,
                "malformed-decide: org{party} run {}: {reason}",
                &run[..12.min(run.len())]
            ),
            Violation::AuditFault { party, faults } => {
                write!(f, "audit-fault: org{party} log has {faults} faulted records")
            }
            Violation::StateHashMismatch {
                party,
                claimed,
                actual,
            } => write!(
                f,
                "state-hash-mismatch: org{party} holds bytes hashing to {} while its agreed id claims {}",
                &actual[..12.min(actual.len())],
                &claimed[..12.min(claimed.len())]
            ),
            Violation::Stalled { reason } => write!(f, "stalled: {reason}"),
        }
    }
}

/// One install drained from a party's event stream.
struct Install {
    run: RunId,
    id: StateId,
}

/// Runs every oracle against the finished schedule. Call exactly once
/// per schedule: it drains the coordinators' event buffers.
pub fn check_all(fleet: &mut Fleet, scenario: &dyn Scenario, ops: &[DrivenOp]) -> Vec<Violation> {
    let n = fleet.len();
    let insider = scenario.insider();
    let correct: Vec<usize> = (0..n).filter(|&i| Some(i) != insider).collect();

    // Per-party installs, in event order (volatile: crashed parties lose
    // theirs, which is why the history oracles skip them).
    let installs: Vec<Vec<Install>> = (0..n)
        .map(|i| {
            fleet
                .take_events(i)
                .into_iter()
                .filter_map(|e| match e.event {
                    CoordEventKind::Completed {
                        outcome: Outcome::Installed { state },
                    } => Some(Install {
                        run: e.run,
                        id: state,
                    }),
                    _ => None,
                })
                .collect()
        })
        .collect();

    // First wire appearance of every distinct proposal, by run label:
    // (message, tap position). The tap records at send time — the
    // Dolev-Yao observer's view, independent of later drops.
    let mut m1s: BTreeMap<String, (ProposeMsg, usize)> = BTreeMap::new();
    for (pos, (_, _, msg, _)) in fleet.wire().into_iter().enumerate() {
        if let WireMsg::Propose(m) = msg {
            m1s.entry(m.proposal.run_id().to_hex()).or_insert((m, pos));
        }
    }

    let mut violations = Vec::new();

    // Oracle 1 — install divergence across correct parties. Keyed by
    // (group, seq): independent groups advance their own chains, so the
    // same sequence number legitimately carries different states in
    // different groups.
    let mut by_seq: BTreeMap<(usize, u64), (usize, StateId)> = BTreeMap::new();
    for &i in &correct {
        for ins in &installs[i] {
            match by_seq.get(&(fleet.group_of(i), ins.id.seq)) {
                None => {
                    by_seq.insert((fleet.group_of(i), ins.id.seq), (i, ins.id));
                }
                Some((j, other)) if *other != ins.id => {
                    violations.push(Violation::Divergence {
                        seq: ins.id.seq,
                        a: (*j, *other),
                        b: (i, ins.id),
                    });
                }
                Some(_) => {}
            }
        }
    }

    // Oracles 2+3 — per-party chain contiguity and lineage, judged
    // against the wire tap (correct, never-crashed parties only).
    for &i in &correct {
        if fleet.crashed_ever(i) {
            continue;
        }
        let mut held = fleet.baseline(i);
        for ins in &installs[i] {
            if ins.id.seq != held.seq + 1 {
                violations.push(Violation::ChainGap {
                    party: i,
                    expected_seq: held.seq + 1,
                    got_seq: ins.id.seq,
                });
            }
            if let Some((m1, _)) = m1s.get(&ins.run.to_hex()) {
                if m1.proposal.prev != held {
                    violations.push(Violation::Lineage {
                        party: i,
                        wire_prev: m1.proposal.prev,
                        held_prev: held,
                    });
                }
            }
            held = ins.id;
        }
    }

    // Oracle 4 — proposal-tuple freshness: an install whose tuple an
    // earlier, differently labelled run already carried — and which the
    // party itself demonstrably processed (it logged evidence for the
    // earlier run; tuples it never saw put it under no obligation).
    for &i in &correct {
        for ins in &installs[i] {
            let run_hex = ins.run.to_hex();
            let Some((m1, first_seen)) = m1s.get(&run_hex) else {
                continue;
            };
            let tuple = (m1.proposal.proposed.seq, m1.proposal.proposed.rand_hash);
            for (other_hex, (other, other_seen)) in &m1s {
                if *other_hex == run_hex
                    || (
                        other.proposal.proposed.seq,
                        other.proposal.proposed.rand_hash,
                    ) != tuple
                    || other_seen >= first_seen
                    || fleet.store(i).records_for_run(other_hex).is_empty()
                {
                    continue;
                }
                violations.push(Violation::TupleReuse {
                    party: i,
                    run: run_hex.clone(),
                    earlier_run: other_hex.clone(),
                    seq: tuple.0,
                });
            }
        }
    }

    // Oracle 5 — decide well-formedness: every install is backed by a
    // parseable m3 in the party's own log, revealing the committed
    // authenticator and carrying a complete, unanimous, correctly signed
    // response set.
    for &i in &correct {
        for ins in &installs[i] {
            let run_hex = ins.run.to_hex();
            if let Some(reason) = decide_defect(fleet, i, &run_hex, m1s.get(&run_hex)) {
                violations.push(Violation::MalformedDecide {
                    party: i,
                    run: run_hex,
                    reason,
                });
            }
        }
    }

    // Oracle 6 — the full evidence audit.
    let auditor = LogAuditor::new(fleet.ring().clone(), Some(fleet.tsa().public_key()));
    for &i in &correct {
        let report = auditor.audit(fleet.store(i).as_ref());
        if !report.is_clean() {
            violations.push(Violation::AuditFault {
                party: i,
                faults: report.total.saturating_sub(report.valid),
            });
        }
    }

    // Oracle 7 — held-state well-foundedness: every correct party's
    // agreed bytes hash to exactly what its agreed id claims. This is
    // what a batch-chain forgery that slips past an ablated §4.2 check
    // produces: the signed tuple and the installed bytes disagree.
    for &i in &correct {
        let held = fleet.agreed_state(i);
        let id = fleet.agreed_id(i);
        let actual = sha256(&held);
        if actual != id.state_hash {
            violations.push(Violation::StateHashMismatch {
                party: i,
                claimed: hex::encode(id.state_hash.as_ref()),
                actual: hex::encode(actual.as_ref()),
            });
        }
    }

    // Oracle 8 — bounded-envelope liveness (honest scenarios only).
    if scenario.check_liveness() {
        for (k, op) in ops.iter().enumerate() {
            match &op.run {
                None => violations.push(Violation::Stalled {
                    reason: format!("op {k}: proposal refused at org{}", op.proposer),
                }),
                Some(run) => {
                    if fleet.outcome(op.proposer, run).is_none() {
                        violations.push(Violation::Stalled {
                            reason: format!(
                                "op {k}: run {} never decided at proposing org{}",
                                &run.to_hex()[..12],
                                op.proposer
                            ),
                        });
                    }
                }
            }
        }
        // Convergence is a per-group promise: each group settles on one
        // final state, independent of what its co-scheduled neighbours
        // agreed.
        for g in 0..fleet.groups() {
            let members: Vec<usize> = fleet
                .group_members(g)
                .into_iter()
                .filter(|i| correct.contains(i))
                .collect();
            let ids: BTreeSet<String> = members
                .iter()
                .map(|&i| format!("{:?}", fleet.agreed_id(i)))
                .collect();
            let states: BTreeSet<Vec<u8>> =
                members.iter().map(|&i| fleet.agreed_state(i)).collect();
            if ids.len() > 1 || states.len() > 1 {
                violations.push(Violation::Stalled {
                    reason: format!(
                        "group {g} failed to converge: {} distinct final states",
                        ids.len().max(states.len())
                    ),
                });
            }
        }
    }

    violations
}

/// Checks one install's decide evidence; `Some(reason)` on any defect.
fn decide_defect(
    fleet: &Fleet,
    i: usize,
    run_hex: &str,
    m1: Option<&(ProposeMsg, usize)>,
) -> Option<String> {
    let records = fleet.store(i).records_for_run(run_hex);
    let rec = records
        .iter()
        .find(|r| r.kind == EvidenceKind::StateDecide)?
        .clone();
    let m3: DecideMsg = match serde_json::from_slice(&rec.payload) {
        Ok(m) => m,
        Err(e) => return Some(format!("undecodable StateDecide evidence: {e}")),
    };
    let Some((m1, _)) = m1 else {
        // No proposal on the tap (pre-plan run): nothing more to check.
        return verify_responses(fleet, &m3, None);
    };
    if sha256(&m3.authenticator) != m1.proposal.auth_commit {
        return Some("revealed authenticator does not match the signed commitment".into());
    }
    verify_responses(fleet, &m3, Some(&m1.proposal.proposer))
}

// A missing StateDecide record would itself be a defect, but `?` above
// returns None (no defect) for it: installs are logged transactionally
// with their decide, so an absent record only occurs for installs that
// predate the tap. Completeness of the response set is still enforced
// whenever the record exists.
fn verify_responses(
    fleet: &Fleet,
    m3: &DecideMsg,
    proposer: Option<&b2b_crypto::PartyId>,
) -> Option<String> {
    let mut seen = BTreeSet::new();
    for r in &m3.responses {
        if r.response.run != m3.run {
            return Some("response for a different run aggregated into the decide".into());
        }
        if !r.response.decision.is_accept() {
            return Some(format!(
                "installed despite a non-accepting response from {}",
                r.response.responder
            ));
        }
        if fleet
            .ring()
            .verify_for(&r.response.responder, &r.response_bytes(), &r.sig)
            .is_err()
        {
            return Some(format!(
                "bad signature on {}'s response",
                r.response.responder
            ));
        }
        if !seen.insert(r.response.responder.clone()) {
            return Some(format!("duplicate response from {}", r.response.responder));
        }
    }
    if let Some(proposer) = proposer {
        // The recipient set is the proposer's *group*, not the whole
        // process — co-scheduled groups never vote in each other's rounds.
        let group = fleet
            .index_of(proposer)
            .map(|i| fleet.group_of(i))
            .expect("proposer is a fleet member");
        let mut expected: BTreeSet<_> = fleet.group_members(group).into_iter().map(party).collect();
        expected.remove(proposer);
        if seen != expected {
            return Some(format!(
                "response set {{{}}} is not the full recipient set",
                seen.iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    None
}
