//! The schedule-exploration loop: generate, run, judge, shrink.

use crate::artifact::Counterexample;
use crate::harness::{party, Fleet};
use crate::oracle;
use crate::plan::SchedulePlan;
use crate::scenario::Scenario;
use crate::shrink;
use b2b_core::MutationFlags;
use b2b_telemetry::{names, Telemetry, TraceEvent};

/// Exploration budget and instrumentation for one [`explore`] call.
#[derive(Clone)]
pub struct CheckConfig {
    /// First seed; schedule `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Maximum number of schedules to run.
    pub budget: u64,
    /// §4.2 ablations under which the fleet is built (all-false = the
    /// production protocol).
    pub mutation: MutationFlags,
    /// Telemetry for the `schedules_explored` / `violations_found` /
    /// `shrink_steps` counters.
    pub telemetry: Telemetry,
}

impl CheckConfig {
    /// A default-budget configuration (500 schedules from seed 1).
    pub fn new() -> CheckConfig {
        CheckConfig {
            base_seed: 1,
            budget: 500,
            mutation: MutationFlags::default(),
            telemetry: Telemetry::default(),
        }
    }
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig::new()
    }
}

/// The oracles' verdict on one schedule, in replay-comparable form.
#[derive(Clone, Debug, PartialEq)]
pub struct RunVerdict {
    /// Rendered oracle violations (empty = the schedule passed).
    pub violations: Vec<String>,
    /// Per-party hex digests over the full serialized evidence logs —
    /// the determinism fingerprint a replayed counterexample must match.
    pub evidence_digests: Vec<String>,
    /// The merged flight-recorder events of the schedule (everything after
    /// the plan was applied) — the distributed trace a counterexample
    /// ships for replay and visualisation.
    pub trace: Vec<TraceEvent>,
}

impl RunVerdict {
    /// `true` when any oracle fired.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Result of one [`explore`] call.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Schedules actually run (≤ budget; stops at the first violation).
    pub schedules_run: u64,
    /// Shrink candidates evaluated (0 when no violation was found).
    pub shrink_steps: u64,
    /// The shrunk, replayable counterexample, if any oracle fired.
    pub counterexample: Option<Counterexample>,
}

/// Runs one complete schedule — build the fleet under `mutation`, apply
/// `plan`, drive the scenario, settle, judge — and returns the verdict.
/// Fully deterministic: the same `(scenario, plan, mutation)` triple
/// always yields the same verdict and the same evidence digests.
pub fn run_schedule(
    scenario: &dyn Scenario,
    plan: &SchedulePlan,
    mutation: MutationFlags,
) -> RunVerdict {
    let mut fleet = Fleet::new_grouped(
        scenario.parties() / scenario.groups(),
        scenario.groups(),
        plan.seed,
        mutation,
    );
    fleet.apply(plan);
    let ops = scenario.drive(&mut fleet);
    fleet.run();
    let violations = oracle::check_all(&mut fleet, scenario, &ops)
        .iter()
        .map(|v| v.to_string())
        .collect();
    let evidence_digests = (0..fleet.len()).map(|i| fleet.evidence_digest(i)).collect();
    let trace = fleet.trace_events();
    RunVerdict {
        violations,
        evidence_digests,
        trace,
    }
}

/// Explores up to `cfg.budget` schedules of `scenario`. Stops at the
/// first violating schedule, shrinks its plan, and packages the result
/// as a replayable [`Counterexample`].
pub fn explore(scenario: &dyn Scenario, cfg: &CheckConfig) -> CheckOutcome {
    let parties: Vec<_> = (0..scenario.parties()).map(party).collect();
    let protected = scenario.protected();
    for k in 0..cfg.budget {
        let plan = SchedulePlan::generate(cfg.base_seed.wrapping_add(k), &parties, &protected);
        let verdict = run_schedule(scenario, &plan, cfg.mutation);
        cfg.telemetry.inc(names::SCHEDULES_EXPLORED);
        if verdict.violated() {
            cfg.telemetry.inc(names::VIOLATIONS_FOUND);
            let (shrunk, steps) = shrink::shrink(scenario, &plan, cfg.mutation, &cfg.telemetry);
            let final_verdict = run_schedule(scenario, &shrunk, cfg.mutation);
            debug_assert!(final_verdict.violated(), "shrinking must preserve failure");
            return CheckOutcome {
                schedules_run: k + 1,
                shrink_steps: steps,
                counterexample: Some(Counterexample {
                    scenario: scenario.id().to_string(),
                    mutation: cfg.mutation,
                    plan: shrunk,
                    violations: final_verdict.violations,
                    evidence_digests: final_verdict.evidence_digests,
                    trace: final_verdict.trace,
                }),
            };
        }
    }
    CheckOutcome {
        schedules_run: cfg.budget,
        shrink_steps: 0,
        counterexample: None,
    }
}
