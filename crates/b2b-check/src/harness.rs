//! The whole-group protocol harness the explorer drives.
//!
//! A [`Fleet`] is a simulated cluster of coordinators (shared key ring and
//! TSA, per-party in-memory evidence stores) brought up on perfect links,
//! onto which one [`SchedulePlan`] is applied: the link fault plan, the
//! crash/partition timeline, and a wire tap chained with the plan's
//! scripted intruder. Scenarios ([`crate::scenario`]) then drive protocol
//! runs and, for the misbehaving-insider cases, speak raw frames on
//! behalf of a compromised member.

use crate::plan::{FaultEvent, SchedulePlan};
use b2b_core::messages::WireMsg;
use b2b_core::{
    CoordEvent, Coordinator, CoordinatorConfig, MutationFlags, ObjectId, Outcome, RunId, StateId,
};
use b2b_crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs, TimeStampAuthority};
use b2b_evidence::{EvidenceStore, MemStore};
use b2b_net::intruder::{Chain, ScriptedIntruder, SharedTap};
use b2b_net::SimNet;
use b2b_telemetry::{RingRecorder, Telemetry, TraceEvent};
use std::sync::Arc;

/// Virtual-time ceiling for settling the network (absolute, generous: the
/// fault budget keeps every crash and partition window far below it).
const QUIET: TimeMs = TimeMs(600_000);

/// Reliable-layer frame header: kind(1) + epoch(8) + seq(8) + trace(17).
const FRAME_HEADER_LEN: usize = 34;

/// Flight-recorder capacity shared by a whole fleet. Shrunk schedules are
/// short; the bound only matters for runaway exploration runs, where
/// dropping the oldest events is deterministic per seed and so preserves
/// replay-comparability.
const RECORDER_CAPACITY: usize = 16_384;

/// Epoch namespace for frames forged by insider scenarios, far away from
/// the reliable layer's organic epochs and the intruder's replay epochs.
const FORGED_EPOCH_BASE: u64 = 0xb2bc_c4af_0000_0000;

/// The deterministic party name for scenario index `i` (key seed
/// `1000 + i`, like every harness in the workspace).
pub fn party(i: usize) -> PartyId {
    PartyId::new(format!("org{i}"))
}

/// A simulated cluster plus the wire tap and bookkeeping the oracles need.
pub struct Fleet {
    /// The simulator (public: scenarios script arbitrary node actions).
    pub net: SimNet<Coordinator>,
    parties: Vec<PartyId>,
    stores: Vec<Arc<MemStore>>,
    ring: KeyRing,
    tsa: TimeStampAuthority,
    object: ObjectId,
    per_group: usize,
    tap: SharedTap,
    baseline: Vec<StateId>,
    crashed_ever: Vec<bool>,
    forged_epochs: u64,
    /// The fleet-wide flight recorder every coordinator traces into;
    /// events carry party labels, so one merged ring serves the trace
    /// assembler directly.
    recorder: Arc<RingRecorder>,
}

impl Fleet {
    /// Builds `n` coordinators with the given mutation flags on perfect
    /// links and connects them all to one grow-only counter object.
    pub fn new(n: usize, seed: u64, mutation: MutationFlags) -> Fleet {
        Fleet::new_grouped(n, 1, seed, mutation)
    }

    /// Builds `groups` *independent* coordination groups of `per_group`
    /// organisations each, all in one simulated process — the explorer's
    /// model of the sharded multi-group runtime. Party indexes are laid
    /// out group-major (`group_of(i) = i / per_group`); every group
    /// coordinates its own instance of the grow-only counter, and the
    /// groups share nothing but the process: key ring, TSA and the wire
    /// live side by side, exactly like co-scheduled groups on the worker
    /// pool.
    pub fn new_grouped(
        per_group: usize,
        groups: usize,
        seed: u64,
        mutation: MutationFlags,
    ) -> Fleet {
        let n = per_group * groups;
        assert!(
            per_group >= 2,
            "a coordination group needs at least two organisations"
        );
        assert!(groups >= 1, "a fleet needs at least one group");
        let mut ring = KeyRing::new();
        let mut keys = Vec::new();
        for i in 0..n {
            let kp = KeyPair::generate_from_seed(1000 + i as u64);
            ring.register(party(i), kp.public_key());
            keys.push(kp);
        }
        let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(9999));
        let mut net = SimNet::new(seed);
        let mut stores = Vec::new();
        let config = CoordinatorConfig::default().mutation(mutation);
        let recorder = Arc::new(RingRecorder::new(RECORDER_CAPACITY));
        for (i, kp) in keys.into_iter().enumerate() {
            let store = Arc::new(MemStore::new());
            stores.push(store.clone());
            net.add_node(
                Coordinator::builder(party(i), kp)
                    .ring(ring.clone())
                    .tsa(tsa.clone())
                    .config(config.clone())
                    .store(store)
                    .seed(seed.wrapping_add(i as u64))
                    .telemetry(Telemetry::with_sink(recorder.clone()))
                    .build(),
            );
        }
        let mut fleet = Fleet {
            net,
            parties: (0..n).map(party).collect(),
            stores,
            ring,
            tsa,
            object: ObjectId::new("counter"),
            per_group,
            tap: SharedTap::new(),
            baseline: Vec::new(),
            crashed_ever: vec![false; n],
            forged_epochs: 0,
            recorder,
        };
        fleet.setup();
        fleet
    }

    /// Per group: registers the shared counter at the group's first
    /// member and connects the rest sequentially (sponsored by the
    /// previously joined member, §4.5.1). The groups share the object
    /// *alias* but never a membership — group identity lives in the
    /// signed group id, and messages are point-to-point between members,
    /// so the instances are fully isolated.
    fn setup(&mut self) {
        for g in 0..self.groups() {
            let members = self.group_members(g);
            let oid = self.object.clone();
            self.net.invoke(&party(members[0]), {
                let oid = oid.clone();
                move |c, _| c.register_object(oid, counter_factory()).unwrap()
            });
            for w in members.windows(2) {
                let (sponsor, joiner) = (w[0], w[1]);
                let oid = oid.clone();
                let sponsor = party(sponsor);
                self.net.invoke(&party(joiner), move |c, ctx| {
                    c.request_connect(oid, counter_factory(), sponsor, ctx)
                        .unwrap();
                });
                self.run();
                assert!(
                    self.net.node(&party(joiner)).is_member(&self.object),
                    "org{joiner} failed to join group {g}'s object"
                );
            }
        }
    }

    /// Number of independent coordination groups.
    pub fn groups(&self) -> usize {
        self.parties.len() / self.per_group
    }

    /// The group party `i` belongs to.
    pub fn group_of(&self, i: usize) -> usize {
        i / self.per_group
    }

    /// The party indexes of group `g`, in join order.
    pub fn group_members(&self, g: usize) -> Vec<usize> {
        (g * self.per_group..(g + 1) * self.per_group).collect()
    }

    /// The fleet index of `p`, if it names a fleet member.
    pub fn index_of(&self, p: &PartyId) -> Option<usize> {
        self.parties.iter().position(|q| q == p)
    }

    /// Applies a schedule plan: settles and drains all setup traffic and
    /// events, records the per-party baseline state, then installs the
    /// link faults, the tap + scripted intruder, and the crash/partition
    /// timeline (plan offsets are relative to this instant).
    pub fn apply(&mut self, plan: &SchedulePlan) {
        self.run();
        self.baseline = (0..self.parties.len())
            .map(|i| {
                self.net.invoke(&party(i), |c, _| {
                    let _ = c.take_events();
                });
                self.agreed_id(i)
            })
            .collect();
        // The artifact trace should cover the schedule under test, not
        // the fleet bring-up.
        self.recorder.clear();
        let t0 = self.net.now();
        self.net.set_default_plan(plan.link);
        self.net.set_intruder(Chain::new(
            self.tap.clone(),
            ScriptedIntruder::new(plan.script()),
        ));
        for ev in &plan.events {
            match *ev {
                FaultEvent::Crash {
                    party: p,
                    at,
                    until,
                } => {
                    self.crashed_ever[p] = true;
                    self.net.crash_at(TimeMs(t0.0 + at.0), party(p));
                    self.net.recover_at(TimeMs(t0.0 + until.0), party(p));
                }
                FaultEvent::Isolate { party: p, until } => {
                    let others = (0..self.parties.len()).filter(|&j| j != p).map(party);
                    self.net
                        .partition([party(p)], others, TimeMs(t0.0 + until.0));
                }
                FaultEvent::Script(_) => {} // lives inside the intruder
            }
        }
    }

    /// Runs the network until quiescent.
    pub fn run(&mut self) {
        self.net.run_until_quiet(QUIET);
    }

    /// The flight-recorder events captured since the plan was applied —
    /// the raw material of a counterexample's distributed trace.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.recorder.events()
    }

    /// Number of organisations.
    pub fn len(&self) -> usize {
        self.parties.len()
    }

    /// `true` only for the degenerate empty fleet (never constructed).
    pub fn is_empty(&self) -> bool {
        self.parties.is_empty()
    }

    /// The shared object every fleet coordinates.
    pub fn object(&self) -> ObjectId {
        self.object.clone()
    }

    /// The shared key ring (all member verification keys).
    pub fn ring(&self) -> &KeyRing {
        &self.ring
    }

    /// The shared timestamping authority.
    pub fn tsa(&self) -> &TimeStampAuthority {
        &self.tsa
    }

    /// The signing key of party `i` — available to scenarios because a
    /// misbehaving *insider* is a group member using its own key.
    pub fn keypair(&self, i: usize) -> KeyPair {
        KeyPair::generate_from_seed(1000 + i as u64)
    }

    /// Party `i`'s agreed state id (panics if the object is unknown).
    pub fn agreed_id(&self, i: usize) -> StateId {
        self.net
            .node(&party(i))
            .agreed_id(&self.object)
            .expect("fleet object present")
    }

    /// Party `i`'s agreed state bytes.
    pub fn agreed_state(&self, i: usize) -> Vec<u8> {
        self.net
            .node(&party(i))
            .agreed_state(&self.object)
            .expect("fleet object present")
    }

    /// Party `i`'s agreed state id at the instant the plan was applied.
    pub fn baseline(&self, i: usize) -> StateId {
        self.baseline[i]
    }

    /// Whether the plan ever crashes party `i` (its volatile protocol
    /// events are lost, so per-party history oracles must skip it).
    pub fn crashed_ever(&self, i: usize) -> bool {
        self.crashed_ever[i]
    }

    /// Proposes `value` from party `i` and settles the net. `None` when
    /// the coordinator refuses the proposal (e.g. replica busy).
    pub fn propose(&mut self, i: usize, value: u64) -> Option<RunId> {
        let oid = self.object.clone();
        let body = serde_json::to_vec(&value).unwrap();
        let run = self.net.invoke(&party(i), move |c, ctx| {
            c.propose_overwrite(&oid, body, ctx).ok()
        });
        self.run();
        run
    }

    /// Party `i`'s outcome for `run`, if decided.
    pub fn outcome(&self, i: usize, run: &RunId) -> Option<Outcome> {
        self.net.node(&party(i)).outcome_of(run).cloned()
    }

    /// Drains party `i`'s coordination events (empty for a currently
    /// crashed node — a crashed party has no event history to judge).
    pub fn take_events(&mut self, i: usize) -> Vec<CoordEvent> {
        if self.net.is_crashed(&party(i)) {
            return Vec::new();
        }
        self.net.invoke(&party(i), |c, _| c.take_events())
    }

    /// Sends `msg` from party `i` to party `j` as raw one-shot data
    /// frames, outside any reliable mux. Three copies go out under
    /// distinct forged epochs so a single probabilistic drop cannot
    /// silently disarm an insider scenario; the receiver's coordinator
    /// dedups the extras at the protocol layer (replay detection /
    /// already-decided outcome).
    pub fn send_forged(&mut self, i: usize, j: usize, msg: &WireMsg) {
        let body = msg.to_bytes();
        for _ in 0..3 {
            self.forged_epochs += 1;
            let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
            frame.push(0u8);
            frame.extend_from_slice(&(FORGED_EPOCH_BASE + self.forged_epochs).to_be_bytes());
            frame.extend_from_slice(&0u64.to_be_bytes());
            frame.extend_from_slice(&[0u8; 17]); // trace context (untraced)
            frame.extend_from_slice(&body);
            let to = party(j);
            self.net
                .invoke(&party(i), move |_c, ctx| ctx.send(to, frame));
        }
    }

    /// Every protocol message the wire tap has seen since the plan was
    /// applied, decoded: `(from, to, message, at)`. Includes frames the
    /// fault plan or intruder subsequently dropped — the tap records at
    /// send time, which is exactly the Dolev-Yao observer the lineage and
    /// freshness oracles need.
    pub fn wire(&self) -> Vec<(PartyId, PartyId, WireMsg, TimeMs)> {
        self.tap
            .seen()
            .into_iter()
            .filter_map(|(from, to, raw, at)| {
                if raw.len() <= FRAME_HEADER_LEN || raw[0] != 0 {
                    return None; // ack or malformed
                }
                WireMsg::from_bytes(&raw[FRAME_HEADER_LEN..]).map(|m| (from, to, m, at))
            })
            .collect()
    }

    /// Party `i`'s evidence store.
    pub fn store(&self, i: usize) -> &Arc<MemStore> {
        &self.stores[i]
    }

    /// Hex SHA-256 over party `i`'s serialized evidence records — the
    /// replay-stability fingerprint of a whole schedule.
    pub fn evidence_digest(&self, i: usize) -> String {
        let records = self.stores[i].records();
        let bytes = serde_json::to_vec(&records).expect("evidence serialises");
        hex::encode(b2b_crypto::sha256(&bytes).as_ref())
    }
}

/// The fleet's shared object: a grow-only counter (JSON `u64`; a
/// transition is valid iff the value does not decrease) — the same
/// application the paper's order-processing example reduces to, and rich
/// enough to give insiders an application-level veto to exploit.
fn grow_only_counter() -> Box<dyn b2b_core::B2BObject> {
    Box::new(
        b2b_core::SharedCell::new(0u64).with_validator(|_who, old, new| {
            if new >= old {
                b2b_core::Decision::accept()
            } else {
                b2b_core::Decision::reject("counter may not decrease")
            }
        }),
    )
}

fn counter_factory() -> b2b_core::ObjectFactory {
    Box::new(grow_only_counter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_comes_up_and_coordinates_on_perfect_links() {
        let mut fleet = Fleet::new(3, 7, MutationFlags::default());
        fleet.apply(&SchedulePlan::quiescent(7));
        let run = fleet.propose(0, 5).expect("proposal accepted");
        assert!(fleet.outcome(0, &run).unwrap().is_installed());
        for i in 0..3 {
            assert_eq!(fleet.agreed_id(i).seq, fleet.baseline(i).seq + 1);
        }
        // The tap saw the full post-plan round: m1, m2s, m3.
        let wire = fleet.wire();
        assert!(wire
            .iter()
            .any(|(_, _, m, _)| matches!(m, WireMsg::Propose(_))));
        assert!(wire
            .iter()
            .any(|(_, _, m, _)| matches!(m, WireMsg::Respond(_))));
        assert!(wire
            .iter()
            .any(|(_, _, m, _)| matches!(m, WireMsg::Decide(_))));
    }

    #[test]
    fn grouped_fleet_keeps_groups_isolated() {
        // Two 2-party groups in one process: each advances its own chain
        // and never learns the neighbour's state.
        let mut fleet = Fleet::new_grouped(2, 2, 13, MutationFlags::default());
        assert_eq!(fleet.groups(), 2);
        assert_eq!(fleet.group_members(1), vec![2, 3]);
        fleet.apply(&SchedulePlan::quiescent(13));
        let run_a = fleet.propose(0, 5).expect("group 0 proposal accepted");
        let run_b = fleet.propose(2, 9).expect("group 1 proposal accepted");
        assert!(fleet.outcome(0, &run_a).unwrap().is_installed());
        assert!(fleet.outcome(2, &run_b).unwrap().is_installed());
        for i in [0, 1] {
            assert_eq!(fleet.agreed_state(i), b"5".to_vec(), "group 0 member {i}");
            assert!(
                fleet.outcome(i, &run_b).is_none(),
                "group 0 saw group 1's run"
            );
        }
        for i in [2, 3] {
            assert_eq!(fleet.agreed_state(i), b"9".to_vec(), "group 1 member {i}");
            assert!(
                fleet.outcome(i, &run_a).is_none(),
                "group 1 saw group 0's run"
            );
        }
    }

    #[test]
    fn evidence_digests_are_replay_stable() {
        let digest = |_| {
            let mut fleet = Fleet::new(2, 11, MutationFlags::default());
            fleet.apply(&SchedulePlan::generate(11, &[party(0), party(1)], &[0, 1]));
            fleet.propose(0, 3);
            (fleet.evidence_digest(0), fleet.evidence_digest(1))
        };
        assert_eq!(digest(0), digest(1));
    }
}
