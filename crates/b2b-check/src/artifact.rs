//! Replayable counterexample artifacts.
//!
//! A [`Counterexample`] pins everything needed to reproduce a violation:
//! the scenario id, the mutation flags the fleet was built under, the
//! shrunk [`SchedulePlan`] (which embeds the seed), the rendered oracle
//! violations, and the per-party evidence-log digests. [`Counterexample::
//! replay`] re-runs the schedule from scratch and demands byte-identical
//! results — the artifact either reproduces exactly or reports how the
//! replay diverged. Serialized artifacts are committed as regression
//! fixtures under `tests/fixtures/faultplans/`.

use crate::explore::run_schedule;
use crate::plan::SchedulePlan;
use crate::scenario;
use b2b_core::MutationFlags;
use b2b_telemetry::TraceEvent;
use serde::{Deserialize, Serialize};

/// A shrunk, self-contained, replayable protocol violation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Counterexample {
    /// Id of the scenario that was driven ([`crate::scenario::scenario`]).
    pub scenario: String,
    /// The §4.2 ablations the violating fleet was built under.
    pub mutation: MutationFlags,
    /// The shrunk schedule (embeds the generating seed).
    pub plan: SchedulePlan,
    /// Rendered oracle violations the replay must reproduce verbatim.
    pub violations: Vec<String>,
    /// Per-party evidence-log digests the replay must reproduce.
    pub evidence_digests: Vec<String>,
    /// The distributed trace of the shrunk schedule: the merged per-node
    /// flight-recorder events, replayable byte-identically and exportable
    /// as a Chrome trace (`exp -- check --emit`).
    pub trace: Vec<TraceEvent>,
}

impl Counterexample {
    /// Serializes to JSON (deterministic emitter — stable bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("counterexample serialises")
    }

    /// Parses an artifact from JSON.
    pub fn from_json(json: &str) -> Result<Counterexample, String> {
        serde_json::from_str(json).map_err(|e| format!("bad counterexample JSON: {e}"))
    }

    /// Re-runs the recorded schedule and verifies the violation
    /// reproduces with identical oracle output and identical per-party
    /// evidence digests. `Err` describes the first divergence.
    pub fn replay(&self) -> Result<(), String> {
        let scenario = scenario::scenario(&self.scenario)
            .ok_or_else(|| format!("unknown scenario '{}'", self.scenario))?;
        let verdict = run_schedule(scenario, &self.plan, self.mutation);
        if verdict.violations != self.violations {
            return Err(format!(
                "violations diverged on replay: recorded {:?}, got {:?}",
                self.violations, verdict.violations
            ));
        }
        if verdict.evidence_digests != self.evidence_digests {
            return Err(format!(
                "evidence digests diverged on replay: recorded {:?}, got {:?}",
                self.evidence_digests, verdict.evidence_digests
            ));
        }
        if verdict.trace != self.trace {
            return Err(format!(
                "distributed trace diverged on replay: recorded {} events, got {}",
                self.trace.len(),
                verdict.trace.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_is_lossless_and_stable() {
        let cx = Counterexample {
            scenario: "insider-stale-prev".into(),
            mutation: MutationFlags {
                skip_predecessor: true,
                ..MutationFlags::default()
            },
            plan: SchedulePlan::quiescent(77),
            violations: vec!["lineage: org0 …".into()],
            evidence_digests: vec!["aa".into(), "bb".into()],
            trace: vec![TraceEvent {
                time_ms: 1,
                party: "org0".into(),
                span: "state_run".into(),
                phase: "propose".into(),
                detail: "run=ab".into(),
                trace_id: 7,
                span_id: 8,
                parent_span: 0,
            }],
        };
        let json = cx.to_json();
        let back = Counterexample::from_json(&json).unwrap();
        assert_eq!(cx, back);
        assert_eq!(json, back.to_json());
        assert!(Counterexample::from_json("{").is_err());
    }

    #[test]
    fn replay_rejects_unknown_scenarios() {
        let cx = Counterexample {
            scenario: "not-a-scenario".into(),
            mutation: MutationFlags::default(),
            plan: SchedulePlan::quiescent(1),
            violations: vec![],
            evidence_digests: vec![],
            trace: vec![],
        };
        assert!(cx.replay().unwrap_err().contains("unknown scenario"));
    }
}
