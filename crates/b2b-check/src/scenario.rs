//! Protocol drives the explorer schedules, including misbehaving insiders.
//!
//! A [`Scenario`] owns everything schedule-independent about a check run:
//! how many organisations, which of them (if any) is a misbehaving
//! insider, which parties the fault generator must leave alone, and how
//! the group is driven. The insider scenarios are executable versions of
//! the paper's §4.4 insider analysis: a *member* of the group — holding a
//! legitimate signing key — crafts proposals that violate exactly one
//! §4.2 acceptance invariant, then completes the 3-step round by forging
//! the unsigned `m3` from the victim's own signed `m2` (captured off the
//! wire, as any Dolev-Yao insider can). On an unmutated build every such
//! attack dies at the victim's §4.2 checks; with the matching check
//! ablated it installs ill-founded state, which the oracles then catch.

use crate::harness::{party, Fleet};
use b2b_core::messages::{
    encode_batch_body, BatchLink, DecideMsg, Proposal, ProposalKind, ProposeMsg, RespondMsg,
    WireMsg,
};
use b2b_core::{MutationFlags, ObjectId, RunId, StateId};
use b2b_crypto::{sha256, CanonicalEncode, Signer};

/// One protocol run a scenario started through the public API.
#[derive(Clone, Debug)]
pub struct DrivenOp {
    /// Index of the proposing party.
    pub proposer: usize,
    /// The run label, or `None` if the coordinator refused the proposal.
    pub run: Option<RunId>,
}

/// A schedulable whole-group protocol drive.
pub trait Scenario: Sync {
    /// Stable identifier (recorded in counterexample artifacts).
    fn id(&self) -> &'static str;
    /// One-line description for CLI listings.
    fn describe(&self) -> &'static str;
    /// Total number of organisations across all groups.
    fn parties(&self) -> usize;
    /// Number of independent coordination groups the organisations are
    /// split into (group-major: `parties() / groups()` members each).
    /// Scenarios with more than one group model the sharded multi-group
    /// runtime inside the deterministic explorer.
    fn groups(&self) -> usize {
        1
    }
    /// Index of the misbehaving insider, if the scenario has one.
    /// Oracles never judge the insider's own replica.
    fn insider(&self) -> Option<usize> {
        None
    }
    /// Party indexes the fault generator must not crash or isolate
    /// (scripted invocations panic on a crashed node).
    fn protected(&self) -> Vec<usize>;
    /// Whether the bounded-envelope liveness oracle applies. Only
    /// meaningful for scenarios without an insider: a forged round that
    /// fizzles is not a liveness failure.
    fn check_liveness(&self) -> bool {
        false
    }
    /// Drives the group (the fleet already has the schedule applied).
    fn drive(&self, fleet: &mut Fleet) -> Vec<DrivenOp>;
}

/// All registered scenarios.
pub fn scenarios() -> Vec<&'static dyn Scenario> {
    vec![
        &TemporalFaults,
        &ShardedPairSmoke,
        &InsiderStalePrev,
        &InsiderSeqJump,
        &InsiderTupleReuse,
        &InsiderBatchForge,
        &InsiderBatchSeqJump,
    ]
}

/// Looks a scenario up by id.
pub fn scenario(id: &str) -> Option<&'static dyn Scenario> {
    scenarios().into_iter().find(|s| s.id() == id)
}

/// The mutation kill matrix: each insider scenario paired with the one
/// `MutationFlags` ablation it is built to expose. The explorer must find
/// and shrink a violation for every row when the flag is set, and report
/// the same seeds clean when it is not.
pub fn kill_matrix() -> Vec<(&'static dyn Scenario, MutationFlags, &'static str)> {
    vec![
        (
            &InsiderStalePrev,
            MutationFlags {
                skip_predecessor: true,
                ..MutationFlags::default()
            },
            "invariant 1 (predecessor)",
        ),
        (
            &InsiderSeqJump,
            MutationFlags {
                skip_sequence: true,
                ..MutationFlags::default()
            },
            "invariant 3 (exact increment)",
        ),
        (
            &InsiderTupleReuse,
            MutationFlags {
                skip_replay: true,
                ..MutationFlags::default()
            },
            "invariant 4 (tuple freshness)",
        ),
        (
            &InsiderBatchForge,
            MutationFlags {
                skip_batch_chain: true,
                ..MutationFlags::default()
            },
            "batch chain (per-update hash chaining)",
        ),
        (
            &InsiderBatchSeqJump,
            MutationFlags {
                skip_sequence: true,
                ..MutationFlags::default()
            },
            "invariant 3 (exact increment at a batch boundary)",
        ),
    ]
}

/// Honest group under temporal faults only: three organisations, the
/// driver proposes a run of counter increments while the generator
/// crashes, partitions and delays the other two. Safety oracles must stay
/// silent and — this being inside the paper's bounded-failure envelope —
/// the liveness oracle must see every run terminate and all parties
/// converge.
pub struct TemporalFaults;

impl Scenario for TemporalFaults {
    fn id(&self) -> &'static str {
        "temporal-faults"
    }
    fn describe(&self) -> &'static str {
        "honest 3-party group under crashes, partitions, loss and intruder delays"
    }
    fn parties(&self) -> usize {
        3
    }
    fn protected(&self) -> Vec<usize> {
        vec![0]
    }
    fn check_liveness(&self) -> bool {
        true
    }
    fn drive(&self, fleet: &mut Fleet) -> Vec<DrivenOp> {
        (1..=3u64)
            .map(|v| DrivenOp {
                proposer: 0,
                run: fleet.propose(0, v),
            })
            .collect()
    }
}

/// The multi-group smoke drive: two *independent* 2-party groups in one
/// simulated process — the explorer's model of the sharded runtime
/// multiplexing co-scheduled groups on a worker pool. Each group's first
/// member proposes an interleaved run of counter values while the fault
/// generator crashes, partitions and delays the non-proposers. Safety
/// oracles are judged per group (divergence, recipient sets and
/// convergence are group-scoped), and liveness demands both groups'
/// rounds terminate — a stall in one group must never be masked by
/// progress in the other.
pub struct ShardedPairSmoke;

impl Scenario for ShardedPairSmoke {
    fn id(&self) -> &'static str {
        "sharded-pair-smoke"
    }
    fn describe(&self) -> &'static str {
        "two independent 2-party groups co-scheduled in one process under temporal faults"
    }
    fn parties(&self) -> usize {
        4
    }
    fn groups(&self) -> usize {
        2
    }
    fn protected(&self) -> Vec<usize> {
        // The two proposers (first member of each group) script the
        // invocations and must stay up.
        vec![0, 2]
    }
    fn check_liveness(&self) -> bool {
        true
    }
    fn drive(&self, fleet: &mut Fleet) -> Vec<DrivenOp> {
        // Alternate the groups' rounds so the plan's crash and partition
        // windows cut across both groups' traffic, not just one's.
        (1..=2u64)
            .flat_map(|v| {
                [0usize, 2].map(|proposer| DrivenOp {
                    proposer,
                    run: fleet.propose(proposer, v),
                })
            })
            .collect()
    }
}

/// §4.2 invariant 1: an insider proposes on top of a *stale* predecessor
/// (the pre-schedule baseline) with an otherwise perfectly valid, freshly
/// numbered proposal — only the predecessor check stands in its way.
pub struct InsiderStalePrev;

impl Scenario for InsiderStalePrev {
    fn id(&self) -> &'static str {
        "insider-stale-prev"
    }
    fn describe(&self) -> &'static str {
        "insider proposes from a stale predecessor (kills: skip_predecessor)"
    }
    fn parties(&self) -> usize {
        2
    }
    fn insider(&self) -> Option<usize> {
        Some(1)
    }
    fn protected(&self) -> Vec<usize> {
        vec![0, 1]
    }
    fn drive(&self, fleet: &mut Fleet) -> Vec<DrivenOp> {
        let ops = vec![DrivenOp {
            proposer: 0,
            run: fleet.propose(0, 1),
        }];
        let stale = fleet.baseline(0);
        let agreed = fleet.agreed_id(0);
        let auth = [0x42u8; 32];
        // Fresh tuple, correct exact-increment seq — but `prev` pins the
        // transition to a predecessor the group has already moved past.
        let m1 = forge_m1(fleet, 1, stale, agreed.seq + 1, b"stale-prev", 2, auth);
        run_forged_round(fleet, 1, 0, &m1, auth);
        ops
    }
}

/// §4.2 invariant 3: an insider proposes from the *current* agreed state
/// but jumps the sequence number by five — only the exact-increment check
/// stands in its way.
pub struct InsiderSeqJump;

impl Scenario for InsiderSeqJump {
    fn id(&self) -> &'static str {
        "insider-seq-jump"
    }
    fn describe(&self) -> &'static str {
        "insider jumps the sequence number (kills: skip_sequence)"
    }
    fn parties(&self) -> usize {
        2
    }
    fn insider(&self) -> Option<usize> {
        Some(1)
    }
    fn protected(&self) -> Vec<usize> {
        vec![0, 1]
    }
    fn drive(&self, fleet: &mut Fleet) -> Vec<DrivenOp> {
        let ops = vec![DrivenOp {
            proposer: 0,
            run: fleet.propose(0, 1),
        }];
        let agreed = fleet.agreed_id(0);
        let auth = [0x51u8; 32];
        let m1 = forge_m1(fleet, 1, agreed, agreed.seq + 5, b"seq-jump", 2, auth);
        run_forged_round(fleet, 1, 0, &m1, auth);
        ops
    }
}

/// §4.2 replay detection (invariant 4): the insider burns a proposal
/// tuple `(seq, H(random))` in a round the application vetoes, then
/// *reuses the same tuple* in a second round carrying different state
/// under a fresh run label — only the tuple-freshness check stands in its
/// way. (The paper: `t_prop` "uniquely labels" each attempted
/// transition; accepting a reused label lets one receipt vouch for two
/// different states.)
pub struct InsiderTupleReuse;

impl Scenario for InsiderTupleReuse {
    fn id(&self) -> &'static str {
        "insider-tuple-reuse"
    }
    fn describe(&self) -> &'static str {
        "insider reuses a burnt proposal tuple (kills: skip_replay)"
    }
    fn parties(&self) -> usize {
        2
    }
    fn insider(&self) -> Option<usize> {
        Some(1)
    }
    fn protected(&self) -> Vec<usize> {
        vec![0, 1]
    }
    fn drive(&self, fleet: &mut Fleet) -> Vec<DrivenOp> {
        let ops = vec![DrivenOp {
            proposer: 0,
            run: fleet.propose(0, 5),
        }];
        let agreed = fleet.agreed_id(0);
        // Round A: a fully §4.2-valid proposal the *application* vetoes
        // (the counter may not decrease), completed honestly with its
        // rejecting m3 — which burns the tuple into the victim's replay
        // window and frees the replica.
        let auth_a = [0xA1u8; 32];
        let m1a = forge_m1(fleet, 1, agreed, agreed.seq + 1, b"reused", 2, auth_a);
        run_forged_round(fleet, 1, 0, &m1a, auth_a);
        // Round B: the same (seq, rand_hash) tuple, now carrying an
        // acceptable state under a fresh authenticator commitment.
        let auth_b = [0xB2u8; 32];
        let m1b = forge_m1(fleet, 1, agreed, agreed.seq + 1, b"reused", 9, auth_b);
        run_forged_round(fleet, 1, 0, &m1b, auth_b);
        ops
    }
}

/// Batched-round §4.2: an insider signs an honest per-update hash chain
/// for the batch `[5, 7]` but ships a body whose second update says `9` —
/// the forged update grows the counter, so only the signed chain (checked
/// per update inside the batch) stands between it and installation. With
/// `skip_batch_chain` ablated the victim replays and installs the forged
/// bytes under the honestly signed tuple, and the held-state
/// well-foundedness oracle convicts the install.
pub struct InsiderBatchForge;

impl Scenario for InsiderBatchForge {
    fn id(&self) -> &'static str {
        "insider-batch-forge"
    }
    fn describe(&self) -> &'static str {
        "insider forges one update inside a signed batch (kills: skip_batch_chain)"
    }
    fn parties(&self) -> usize {
        2
    }
    fn insider(&self) -> Option<usize> {
        Some(1)
    }
    fn protected(&self) -> Vec<usize> {
        vec![0, 1]
    }
    fn drive(&self, fleet: &mut Fleet) -> Vec<DrivenOp> {
        let ops = vec![DrivenOp {
            proposer: 0,
            run: fleet.propose(0, 1),
        }];
        let agreed = fleet.agreed_id(1);
        let auth = [0x63u8; 32];
        let honest = [5u64, 7];
        let forged = [5u64, 9];
        let (mut m1, _) = forge_batch_m1(
            fleet,
            1,
            agreed,
            agreed.seq + 1,
            b"batch-forge",
            &honest,
            auth,
        );
        // Links and signature stay honest; only the unsigned body lies.
        m1.body = encode_batch_body(
            &forged
                .iter()
                .map(|v| serde_json::to_vec(v).unwrap())
                .collect::<Vec<_>>(),
        );
        run_forged_round(fleet, 1, 0, &m1, auth);
        ops
    }
}

/// Batched-round §4.2 invariant 3: the insider numbers a 2-update batch
/// as if the sequence advanced once per update (`agreed + 2`) instead of
/// once per round — the natural batch-boundary off-by-k. Everything else
/// (chain, links, signature, body) is honest, so only the exact-increment
/// check stands in its way; ablated, the victim's install chain skips a
/// sequence number and the chain-gap oracle convicts it.
pub struct InsiderBatchSeqJump;

impl Scenario for InsiderBatchSeqJump {
    fn id(&self) -> &'static str {
        "insider-batch-seq-jump"
    }
    fn describe(&self) -> &'static str {
        "insider numbers a batch once per update, not per round (kills: skip_sequence)"
    }
    fn parties(&self) -> usize {
        2
    }
    fn insider(&self) -> Option<usize> {
        Some(1)
    }
    fn protected(&self) -> Vec<usize> {
        vec![0, 1]
    }
    fn drive(&self, fleet: &mut Fleet) -> Vec<DrivenOp> {
        let ops = vec![DrivenOp {
            proposer: 0,
            run: fleet.propose(0, 1),
        }];
        let agreed = fleet.agreed_id(1);
        let auth = [0x71u8; 32];
        let (m1, _) = forge_batch_m1(
            fleet,
            1,
            agreed,
            agreed.seq + 2,
            b"batch-seq-jump",
            &[3u64, 6],
            auth,
        );
        run_forged_round(fleet, 1, 0, &m1, auth);
        ops
    }
}

/// Crafts a validly signed insider *batch* proposal over `values` (each a
/// whole-state replacement for the fleet counter), with an honest
/// per-update hash chain: `links[i] = (H(update_i), H(state_i))` and the
/// proposed tuple's state hash pinned to the chain's end. Returns the
/// message and the chain's final state bytes.
fn forge_batch_m1(
    fleet: &Fleet,
    insider: usize,
    prev: StateId,
    seq: u64,
    rand_tag: &[u8],
    values: &[u64],
    auth: [u8; 32],
) -> (ProposeMsg, Vec<u8>) {
    let object: ObjectId = fleet.object();
    let updates: Vec<Vec<u8>> = values
        .iter()
        .map(|v| serde_json::to_vec(v).unwrap())
        .collect();
    // SharedCell updates are whole-state replacements, so each link's
    // intermediate state is the update itself.
    let links: Vec<BatchLink> = updates
        .iter()
        .map(|u| BatchLink {
            update_hash: sha256(u),
            state_hash: sha256(u),
        })
        .collect();
    let final_state = updates.last().unwrap().clone();
    let group = fleet
        .net
        .node(&party(insider))
        .group(&object)
        .expect("insider is a member");
    let proposal = Proposal {
        object,
        proposer: party(insider),
        group,
        prev,
        proposed: StateId {
            seq,
            rand_hash: sha256(rand_tag),
            state_hash: sha256(&final_state),
        },
        auth_commit: sha256(&auth),
        kind: ProposalKind::Batch { links },
    };
    let sig = fleet.keypair(insider).sign(&proposal.canonical_bytes());
    (
        ProposeMsg {
            proposal,
            body: encode_batch_body(&updates),
            sig,
            memo: Default::default(),
        },
        final_state,
    )
}

/// Crafts a validly signed insider proposal. The insider is a group
/// member: the signature is genuine, the group id correct, the body hash
/// matches — every field honest except the ones the scenario is lying
/// about.
fn forge_m1(
    fleet: &Fleet,
    insider: usize,
    prev: StateId,
    seq: u64,
    rand_tag: &[u8],
    value: u64,
    auth: [u8; 32],
) -> ProposeMsg {
    let object: ObjectId = fleet.object();
    let body = serde_json::to_vec(&value).unwrap();
    let group = fleet
        .net
        .node(&party(insider))
        .group(&object)
        .expect("insider is a member");
    let proposal = Proposal {
        object,
        proposer: party(insider),
        group,
        prev,
        proposed: StateId {
            seq,
            rand_hash: sha256(rand_tag),
            state_hash: sha256(&body),
        },
        auth_commit: sha256(&auth),
        kind: ProposalKind::Overwrite,
    };
    let sig = fleet.keypair(insider).sign(&proposal.canonical_bytes());
    ProposeMsg {
        proposal,
        body,
        sig,
        memo: Default::default(),
    }
}

/// Plays a forged 3-step round end to end: sends the insider's `m1`,
/// lets the net settle, captures the victim's signed `m2` off the wire
/// tap, and — if one appeared — reveals the authenticator in a forged,
/// unsigned `m3` (the paper: "`m3` requires no signature"). Returns the
/// run label when the round got as far as a decide.
fn run_forged_round(
    fleet: &mut Fleet,
    insider: usize,
    victim: usize,
    m1: &ProposeMsg,
    auth: [u8; 32],
) -> Option<RunId> {
    let run = m1.proposal.run_id();
    fleet.send_forged(insider, victim, &WireMsg::Propose(m1.clone()));
    fleet.run();
    let response = victim_response(fleet, &run)?;
    let m3 = DecideMsg {
        object: m1.proposal.object.clone(),
        run,
        authenticator: auth,
        responses: vec![response],
    };
    fleet.send_forged(insider, victim, &WireMsg::Decide(m3));
    fleet.run();
    Some(run)
}

/// The victim's signed `m2` for `run`, captured off the wire tap (the
/// insider controls the network, so a response addressed to it is always
/// observable — even when a fault plan drops the frame, the victim's
/// reliable layer keeps retransmitting until the insider acks).
fn victim_response(fleet: &Fleet, run: &RunId) -> Option<RespondMsg> {
    fleet
        .wire()
        .into_iter()
        .find_map(|(_, _, msg, _)| match msg {
            WireMsg::Respond(r) if r.response.run == *run => Some(r),
            _ => None,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let all = scenarios();
        assert_eq!(all.len(), 7);
        for s in &all {
            assert_eq!(scenario(s.id()).unwrap().id(), s.id());
            assert!(s.parties() >= 2);
            assert!(s.groups() >= 1);
            assert_eq!(
                s.parties() % s.groups(),
                0,
                "group-major layout needs equal-size groups"
            );
            assert!(
                s.parties() / s.groups() >= 2,
                "every group needs at least two organisations"
            );
            if let Some(i) = s.insider() {
                assert!(i < s.parties());
                assert!(
                    s.protected().contains(&i),
                    "the insider scripts invocations, so it must be protected"
                );
                assert!(
                    !s.check_liveness(),
                    "insider rounds may legitimately fizzle"
                );
            }
            for p in s.protected() {
                assert!(p < s.parties());
            }
        }
        assert!(scenario("no-such-scenario").is_none());
    }

    #[test]
    fn kill_matrix_rows_ablate_exactly_one_check() {
        for (s, flags, label) in kill_matrix() {
            assert!(s.insider().is_some(), "{label} must be an insider scenario");
            let ablated = [
                flags.skip_replay,
                flags.skip_predecessor,
                flags.skip_sequence,
                flags.skip_batch_chain,
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            assert_eq!(ablated, 1, "{label} must ablate exactly one check");
        }
    }
}
