//! E9 — §7 termination extensions: cost of resolving a run blocked by a
//! silent party, by deadline abort (unanimous rule) or majority decision.

use b2b_bench::{counter_factory, enc, party, Crypto, Fleet};
use b2b_core::{CoordinatorConfig, DecisionRule, ObjectId};
use b2b_crypto::TimeMs;
use b2b_net::FaultPlan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn resolve_with(rule: DecisionRule) {
    let config = CoordinatorConfig::new()
        .decision_rule(rule)
        .run_deadline(TimeMs(500));
    let mut fleet = Fleet::with_options(5, 9, config, FaultPlan::default(), Crypto::Ed25519, false);
    fleet.setup_object("c", counter_factory);
    fleet.net.partition(
        [party(4)],
        (0..4).map(party).collect::<Vec<_>>(),
        TimeMs(u64::MAX),
    );
    let oid = ObjectId::new("c");
    let run = fleet.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(5), ctx).unwrap()
    });
    let t0 = fleet.net.now();
    while fleet.outcome(0, &run).is_none() {
        if fleet.net.now() - t0 > TimeMs(60_000) || !fleet.net.step() {
            panic!("run failed to resolve");
        }
    }
}

fn bench_termination(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_termination");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (label, rule) in [
        ("deadline_abort", DecisionRule::Unanimous),
        ("majority_resolve", DecisionRule::Majority),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| resolve_with(rule));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_termination);
criterion_main!(benches);
