//! E1 — message complexity: wall time and (via the `exp` binary) message
//! counts of one state-coordination run as the group grows. The paper's §7
//! claim: the protocol is "efficient in terms of the number of messages
//! required for n parties" — 3(n−1) per run.

use b2b_bench::{counter_factory, enc, Fleet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_state_run_by_group_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_state_run");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut fleet = Fleet::new(n, 1);
            fleet.setup_object("c", counter_factory);
            // The message-count assertion for the run we are timing.
            let before = fleet.total_protocol_messages();
            let mut v = 0u64;
            v += 1;
            fleet.propose(0, "c", enc(v));
            assert_eq!(fleet.total_protocol_messages() - before, 3 * (n as u64 - 1));
            b.iter(|| {
                v += 1;
                fleet.propose((v % n as u64) as usize, "c", enc(v));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_state_run_by_group_size);
criterion_main!(benches);
