//! E5 — communication modes (§5): sequential synchronous coordination vs
//! pipelining independent coordinations (the deferred-synchronous /
//! asynchronous pattern) across k objects.

use b2b_bench::{counter_factory, enc, party, Fleet};
use b2b_core::ObjectId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_modes");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let k = 8usize;
    group.bench_function(BenchmarkId::new("sync_sequential", k), |b| {
        let mut fleet = Fleet::new(2, 5);
        for i in 0..k {
            fleet.setup_object(&format!("obj{i}"), counter_factory);
        }
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            for i in 0..k {
                // Each proposal runs to completion before the next starts.
                fleet.propose(0, &format!("obj{i}"), enc(v));
            }
        });
    });
    group.bench_function(BenchmarkId::new("deferred_pipelined", k), |b| {
        let mut fleet = Fleet::new(2, 6);
        for i in 0..k {
            fleet.setup_object(&format!("obj{i}"), counter_factory);
        }
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            for i in 0..k {
                let oid = ObjectId::new(format!("obj{i}"));
                let value = enc(v);
                fleet.net.invoke(&party(0), move |c, ctx| {
                    c.propose_overwrite(&oid, value, ctx).unwrap();
                });
            }
            fleet.run(); // all k runs complete together
        });
    });
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
