//! E2 — the three-step protocol's completion latency. Virtual-time
//! latency is exactly three one-way link delays regardless of group size
//! (sends fan out in parallel); this bench tracks the wall-clock cost of
//! processing one run end to end as link delay is held at 1 ms.

use b2b_bench::{counter_factory, enc, Crypto, Fleet};
use b2b_core::CoordinatorConfig;
use b2b_crypto::TimeMs;
use b2b_net::FaultPlan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_latency_by_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_latency");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for delay in [1u64, 10, 50] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{delay}ms")),
            &delay,
            |b, &delay| {
                let mut fleet = Fleet::with_options(
                    4,
                    2,
                    CoordinatorConfig::default(),
                    FaultPlan::new().delay(TimeMs(delay), TimeMs(delay)),
                    Crypto::Ed25519,
                    true,
                );
                fleet.setup_object("c", counter_factory);
                let mut v = 0u64;
                b.iter(|| {
                    v += 1;
                    fleet.propose(0, "c", enc(v));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_latency_by_delay);
criterion_main!(benches);
