//! E8 — membership protocols (§4.5): cost of admitting a member as the
//! group grows (3n−1 messages) and of evicting one (3(n−2) messages when
//! the sponsor proposes).

use b2b_bench::{counter_factory, party, Fleet};
use b2b_core::ObjectId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_connect(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_membership");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("connect_into", n), &n, |b, &n| {
            // Each iteration builds the n-group then times the (n+1)-th join.
            b.iter_with_setup(
                || {
                    let mut fleet = Fleet::new(n + 1, 8);
                    fleet.net.invoke(&party(0), |c, _| {
                        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
                            .unwrap();
                    });
                    for i in 1..n {
                        let sponsor = party(i - 1);
                        fleet.net.invoke(&party(i), move |c, ctx| {
                            c.request_connect(
                                ObjectId::new("c"),
                                Box::new(counter_factory),
                                sponsor,
                                ctx,
                            )
                            .unwrap();
                        });
                        fleet.run();
                    }
                    fleet
                },
                |mut fleet| {
                    let sponsor = party(n - 1);
                    fleet.net.invoke(&party(n), move |c, ctx| {
                        c.request_connect(
                            ObjectId::new("c"),
                            Box::new(counter_factory),
                            sponsor,
                            ctx,
                        )
                        .unwrap();
                    });
                    fleet.run();
                    assert!(fleet.net.node(&party(n)).is_member(&ObjectId::new("c")));
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_connect);
criterion_main!(benches);
