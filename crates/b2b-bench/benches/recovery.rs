//! E7 — crash/recovery (§3 check-pointing): the cost of completing a run
//! whose recipient crashes mid-protocol and recovers from its WAL.

use b2b_bench::{counter_factory, enc, party, Fleet};
use b2b_crypto::TimeMs;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_recovery");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("run_through_crash_and_recovery", |b| {
        b.iter(|| {
            let mut fleet = Fleet::new(2, 60);
            fleet.setup_object("c", counter_factory);
            let t0 = fleet.net.now();
            fleet.net.crash_at(t0 + TimeMs(1), party(1));
            fleet.net.recover_at(t0 + TimeMs(500), party(1));
            let run = fleet.propose(0, "c", enc(5));
            assert!(fleet.outcome(0, &run).unwrap().is_installed());
        });
    });
    group.bench_function("run_without_crash_baseline", |b| {
        b.iter(|| {
            let mut fleet = Fleet::new(2, 61);
            fleet.setup_object("c", counter_factory);
            let run = fleet.propose(0, "c", enc(5));
            assert!(fleet.outcome(0, &run).unwrap().is_installed());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
