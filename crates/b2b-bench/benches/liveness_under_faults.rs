//! E6 — the liveness claim (§1/§4.1): runs complete despite temporary
//! message loss, at the cost of retransmission rounds. Benchmarks the
//! wall-clock cost of pushing one run through increasingly lossy links.

use b2b_bench::{counter_factory, enc, Crypto, Fleet};
use b2b_core::CoordinatorConfig;
use b2b_crypto::TimeMs;
use b2b_net::FaultPlan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_liveness(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_liveness");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for loss in [0.0f64, 0.2, 0.4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("loss{:.0}pct", loss * 100.0)),
            &loss,
            |b, &loss| {
                let mut fleet = Fleet::with_options(
                    3,
                    7,
                    CoordinatorConfig::default(),
                    FaultPlan::new()
                        .drop_rate(loss)
                        .delay(TimeMs(1), TimeMs(10)),
                    Crypto::Ed25519,
                    false,
                );
                fleet.setup_object("c", counter_factory);
                let mut v = 0u64;
                b.iter(|| {
                    v += 1;
                    let run = fleet.propose(0, "c", enc(v));
                    assert!(fleet.outcome(0, &run).unwrap().is_installed());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_liveness);
criterion_main!(benches);
