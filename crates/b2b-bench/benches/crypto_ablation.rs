//! E4 — what non-repudiation costs: full Ed25519 signing + verification +
//! TSA time-stamping against a forgeable hash "signature" exercising the
//! same code paths.

use b2b_bench::{counter_factory, enc, Crypto, Fleet};
use b2b_core::CoordinatorConfig;
use b2b_net::FaultPlan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_crypto_ablation");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for (label, crypto, tsa) in [
        ("ed25519_tsa", Crypto::Ed25519, true),
        ("ed25519", Crypto::Ed25519, false),
        ("insecure", Crypto::Insecure, false),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut fleet = Fleet::with_options(
                4,
                4,
                CoordinatorConfig::default(),
                FaultPlan::default(),
                crypto,
                tsa,
            );
            fleet.setup_object("c", counter_factory);
            let mut v = 0u64;
            b.iter(|| {
                v += 1;
                fleet.propose((v % 4) as usize, "c", enc(v));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
