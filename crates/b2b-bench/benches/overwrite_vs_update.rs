//! E3 — §4.3.1 overwrite vs update: shipping a 64 B delta instead of the
//! whole state. The crossover grows with state size; update wins on wire
//! bytes at every size and on wall time once hashing/serialising the full
//! state dominates.

use b2b_bench::{append_blob_factory, Fleet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_overwrite_vs_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_overwrite_vs_update");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for size in [1usize << 12, 1 << 16, 1 << 20] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("overwrite", size), &size, |b, &size| {
            let mut fleet = Fleet::new(2, 3);
            fleet.setup_object("blob", append_blob_factory);
            fleet.propose(0, "blob", vec![0xAB; size]);
            let chunk = [0xCD; 64];
            b.iter(|| {
                let mut next = fleet
                    .net
                    .node(&b2b_bench::party(0))
                    .agreed_state(&b2b_core::ObjectId::new("blob"))
                    .unwrap();
                next.extend_from_slice(&chunk);
                fleet.propose(0, "blob", next);
            });
        });
        group.bench_with_input(BenchmarkId::new("update", size), &size, |b, &size| {
            let mut fleet = Fleet::new(2, 3);
            fleet.setup_object("blob", append_blob_factory);
            fleet.propose(0, "blob", vec![0xAB; size]);
            b.iter(|| {
                fleet.propose_update(0, "blob", vec![0xCD; 64]);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overwrite_vs_update);
criterion_main!(benches);
