//! Regenerates the experiment tables recorded in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p b2b-bench --release --bin exp -- <e1|...|e9|all>`
//!
//! Besides its markdown table, every experiment merges the fleet-wide
//! metrics registries of all the fleets it ran and writes the result as
//! a JSON sidecar to `target/metrics/<exp>.metrics.json` (see
//! `EXPERIMENTS.md` for the format).

use b2b_bench::{append_blob_factory, counter_factory, enc, party, Crypto, Fleet};
use b2b_core::{ConnectStatus, CoordinatorConfig, DecisionRule, ObjectId, Outcome};
use b2b_crypto::TimeMs;
use b2b_net::FaultPlan;
use b2b_telemetry::MetricsSnapshot;
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let known = ["all", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"];
    if !known.contains(&which.as_str()) {
        eprintln!(
            "unknown experiment '{which}'; expected one of: {}",
            known.join(", ")
        );
        std::process::exit(2);
    }
    let all = which == "all";
    type Experiment = fn() -> MetricsSnapshot;
    let experiments: [(&str, Experiment); 9] = [
        ("e1", e1_message_complexity),
        ("e2", e2_protocol_latency),
        ("e3", e3_overwrite_vs_update),
        ("e4", e4_crypto_ablation),
        ("e5", e5_modes),
        ("e6", e6_liveness_under_faults),
        ("e7", e7_recovery),
        ("e8", e8_membership),
        ("e9", e9_termination),
    ];
    for (name, run) in experiments {
        if all || which == name {
            let metrics = run();
            write_sidecar(name, &metrics);
        }
    }
}

/// Writes the merged metrics of one experiment as a JSON sidecar under
/// `target/metrics/` and prints the human-readable table.
fn write_sidecar(name: &str, metrics: &MetricsSnapshot) {
    let dir = std::path::Path::new("target").join("metrics");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.metrics.json"));
    match std::fs::write(&path, metrics.to_json()) {
        Ok(()) => {
            println!("\nmetrics sidecar: {}", path.display());
            println!("{}", metrics.render_table());
        }
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// E1 — §7 message-efficiency claim: a state run costs 3(n−1) messages.
fn e1_message_complexity() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E1 — messages per state-coordination run vs group size\n");
    println!("| n parties | measured msgs | model 3(n-1) | bytes on wire |");
    println!("|---|---|---|---|");
    for n in [2usize, 4, 8, 12, 16] {
        let mut fleet = Fleet::new(n, 1);
        fleet.setup_object("c", counter_factory);
        let msgs_before = fleet.total_protocol_messages();
        let bytes_before = fleet.net.stats().bytes_sent;
        fleet.propose(0, "c", enc(7));
        let msgs = fleet.total_protocol_messages() - msgs_before;
        let bytes = fleet.net.stats().bytes_sent - bytes_before;
        println!("| {n} | {msgs} | {} | {bytes} |", 3 * (n - 1));
        metrics.merge(&fleet.metrics());
    }
    metrics
}

/// E2 — three-step protocol: completion latency vs group size and link delay.
fn e2_protocol_latency() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E2 — state-run completion latency (virtual time)\n");
    println!("| n parties | link delay | latency (all installed) | model 3d |");
    println!("|---|---|---|---|");
    for n in [2usize, 4, 8, 16] {
        for delay in [1u64, 10, 50] {
            let mut fleet = Fleet::with_options(
                n,
                2,
                CoordinatorConfig::default(),
                FaultPlan::new().delay(TimeMs(delay), TimeMs(delay)),
                Crypto::Ed25519,
                true,
            );
            fleet.setup_object("c", counter_factory);
            let t0 = fleet.net.now();
            let oid = ObjectId::new("c");
            fleet.net.invoke(&party(0), move |c, ctx| {
                c.propose_overwrite(&oid, enc(5), ctx).unwrap();
            });
            // Run until every party has installed.
            loop {
                let done = (0..n).all(|w| {
                    fleet.net.node(&party(w)).agreed_state(&ObjectId::new("c")) == Some(enc(5))
                });
                if done || !fleet.net.step() {
                    break;
                }
            }
            let latency = fleet.net.now() - t0;
            println!("| {n} | {delay}ms | {latency} | {}ms |", 3 * delay);
            metrics.merge(&fleet.metrics());
        }
    }
    metrics
}

/// E3 — §4.3.1 overwrite vs update for growing state.
fn e3_overwrite_vs_update() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E3 — overwrite vs update (64 B appended to a large state)\n");
    println!("| state size | mode | wire bytes/run | wall time/run |");
    println!("|---|---|---|---|");
    for size in [1usize << 10, 1 << 14, 1 << 18, 1 << 20] {
        for update_mode in [false, true] {
            let mut fleet = Fleet::new(3, 3);
            fleet.setup_object("blob", append_blob_factory);
            // Pre-grow the state to `size`.
            let base = vec![0xAB; size];
            fleet.propose(0, "blob", base.clone());
            let chunk = vec![0xCD; 64];
            let bytes_before = fleet.net.stats().bytes_sent;
            let t = Instant::now();
            let runs = 5;
            for i in 0..runs {
                if update_mode {
                    fleet.propose_update(i % 3, "blob", chunk.clone());
                } else {
                    let mut next = fleet
                        .net
                        .node(&party(0))
                        .agreed_state(&ObjectId::new("blob"))
                        .unwrap();
                    next.extend_from_slice(&chunk);
                    fleet.propose(i % 3, "blob", next);
                }
            }
            let wall = t.elapsed() / runs as u32;
            let wire = (fleet.net.stats().bytes_sent - bytes_before) / runs as u64;
            println!(
                "| {} KiB | {} | {} | {:?} |",
                size / 1024,
                if update_mode { "update" } else { "overwrite" },
                wire,
                wall
            );
            metrics.merge(&fleet.metrics());
        }
    }
    metrics
}

/// E4 — the cost of the non-repudiation machinery.
fn e4_crypto_ablation() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E4 — crypto ablation: Ed25519+TSA vs insecure signer\n");
    println!("| n parties | crypto | wall time / run |");
    println!("|---|---|---|");
    for n in [2usize, 4, 8] {
        for (label, crypto, tsa) in [
            ("ed25519 + TSA", Crypto::Ed25519, true),
            ("ed25519, no TSA", Crypto::Ed25519, false),
            ("insecure", Crypto::Insecure, false),
        ] {
            let mut fleet = Fleet::with_options(
                n,
                4,
                CoordinatorConfig::default(),
                FaultPlan::default(),
                crypto,
                tsa,
            );
            fleet.setup_object("c", counter_factory);
            let runs = 20u64;
            let t = Instant::now();
            for i in 0..runs {
                fleet.propose((i % n as u64) as usize, "c", enc(i + 1));
            }
            println!("| {n} | {label} | {:?} |", t.elapsed() / runs as u32);
            metrics.merge(&fleet.metrics());
        }
    }
    metrics
}

/// E5 — communication modes: sequential blocking vs pipelined deferred.
fn e5_modes() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E5 — sync (sequential) vs deferred (pipelined across objects)\n");
    println!("| objects | mode | virtual time for one update each |");
    println!("|---|---|---|");
    for k in [1usize, 4, 8, 16] {
        // Synchronous: one object, k sequential runs.
        let mut fleet = Fleet::new(2, 5);
        for i in 0..k {
            fleet.setup_object(&format!("obj{i}"), counter_factory);
        }
        let t0 = fleet.net.now();
        for i in 0..k {
            fleet.propose(0, &format!("obj{i}"), enc(1)); // runs to quiescence: sequential
        }
        let sync_time = fleet.net.now() - t0;
        metrics.merge(&fleet.metrics());
        // Deferred: fire all proposals, then drive once.
        let mut fleet = Fleet::new(2, 6);
        for i in 0..k {
            fleet.setup_object(&format!("obj{i}"), counter_factory);
        }
        let t0 = fleet.net.now();
        for i in 0..k {
            let oid = ObjectId::new(format!("obj{i}"));
            fleet.net.invoke(&party(0), move |c, ctx| {
                c.propose_overwrite(&oid, enc(1), ctx).unwrap();
            });
        }
        fleet.run();
        let deferred_time = fleet.net.now() - t0;
        metrics.merge(&fleet.metrics());
        println!("| {k} | sync | {sync_time} |");
        println!("| {k} | deferred | {deferred_time} |");
    }
    metrics
}

/// E6 — liveness despite temporary failures: completion under loss.
fn e6_liveness_under_faults() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E6 — liveness under message loss (3 parties, retransmit 200 ms)\n");
    println!("| loss rate | runs completed | median completion (virtual) |");
    println!("|---|---|---|");
    for loss in [0.0f64, 0.1, 0.3, 0.5] {
        let mut completions = Vec::new();
        let mut completed = 0;
        let total = 10;
        for seed in 0..total {
            let mut fleet = Fleet::with_options(
                3,
                100 + seed,
                CoordinatorConfig::default(),
                FaultPlan::new()
                    .drop_rate(loss)
                    .delay(TimeMs(1), TimeMs(10)),
                Crypto::Ed25519,
                false,
            );
            fleet.setup_object("c", counter_factory);
            let t0 = fleet.net.now();
            let run = fleet.propose(0, "c", enc(9));
            let installed_everywhere = (0..3).all(|w| {
                fleet
                    .outcome(w, &run)
                    .map(|o| o.is_installed())
                    .unwrap_or(false)
            });
            if installed_everywhere {
                completed += 1;
                completions.push((fleet.net.now() - t0).as_millis());
            }
            metrics.merge(&fleet.metrics());
        }
        completions.sort_unstable();
        let median = completions
            .get(completions.len() / 2)
            .map(|m| format!("{m}ms"))
            .unwrap_or_else(|| "-".into());
        println!(
            "| {loss:.0}% | {completed}/{total} | {median} |",
            loss = loss * 100.0
        );
    }
    metrics
}

/// E7 — crash recovery: a recipient crashes mid-run, recovers, completes.
fn e7_recovery() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E7 — recipient crash + recovery during a run\n");
    println!("| downtime | run completes | completion after recovery |");
    println!("|---|---|---|");
    for downtime in [500u64, 2_000, 10_000] {
        let mut fleet = Fleet::new(2, 7);
        fleet.setup_object("c", counter_factory);
        let t0 = fleet.net.now();
        fleet.net.crash_at(t0 + TimeMs(1), party(1));
        fleet.net.recover_at(t0 + TimeMs(downtime), party(1));
        let run = fleet.propose(0, "c", enc(5));
        let ok = (0..2).all(|w| {
            fleet
                .outcome(w, &run)
                .map(|o| o.is_installed())
                .unwrap_or(false)
        });
        let after_recovery = (fleet.net.now() - t0).saturating_sub(TimeMs(downtime));
        println!("| {downtime}ms | {ok} | +{after_recovery} |");
        metrics.merge(&fleet.metrics());
    }
    metrics
}

/// E8 — membership protocol cost vs group size.
fn e8_membership() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E8 — membership change cost vs group size\n");
    println!("| group n | change | measured msgs | model |");
    println!("|---|---|---|---|");
    for n in [2usize, 4, 8, 12] {
        // Connection into a group of n: 1 request + 3(n−1) + welcome.
        let mut fleet = Fleet::new(n + 1, 8);
        let joiner = n;
        // Build group of n first.
        let sub: Vec<usize> = (0..n).collect();
        fleet.net.invoke(&party(0), |c, _| {
            c.register_object(ObjectId::new("c"), Box::new(counter_factory))
                .unwrap();
        });
        for i in 1..n {
            let sponsor = party(i - 1);
            fleet.net.invoke(&party(i), move |c, ctx| {
                c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
                    .unwrap();
            });
            fleet.run();
        }
        let before = fleet.total_protocol_messages();
        let sponsor = party(n - 1);
        fleet.net.invoke(&party(joiner), move |c, ctx| {
            c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
                .unwrap();
        });
        fleet.run();
        assert_eq!(
            fleet
                .net
                .node(&party(joiner))
                .connect_status(&ObjectId::new("c")),
            Some(&ConnectStatus::Member)
        );
        let connect_msgs = fleet.total_protocol_messages() - before;
        println!("| {n} | connect | {connect_msgs} | 3n-1 = {} |", 3 * n - 1);

        // Eviction of one member from the (n+1)-group by the sponsor.
        let before = fleet.total_protocol_messages();
        let evictee = party(0);
        fleet.net.invoke(&party(joiner), move |c, ctx| {
            c.request_evict(&ObjectId::new("c"), vec![evictee], ctx)
                .unwrap();
        });
        fleet.run();
        let evict_msgs = fleet.total_protocol_messages() - before;
        println!(
            "| {} | evict 1 (by sponsor) | {evict_msgs} | 3(n-1) = {} |",
            n + 1,
            3 * (n + 1 - 2)
        );
        let _ = sub;
        metrics.merge(&fleet.metrics());
    }
    metrics
}

/// E9 — §7 termination extensions: deadlines and majority decision.
fn e9_termination() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E9 — termination extensions (one silent party)\n");
    println!("| rule | deadline | outcome at proposer | time to resolution |");
    println!("|---|---|---|---|");
    for (rule, ttp, label) in [
        (DecisionRule::Unanimous, false, "unanimous (local abort)"),
        (
            DecisionRule::Unanimous,
            true,
            "unanimous + TTP (certified abort)",
        ),
        (DecisionRule::Majority, false, "majority (resolve)"),
    ] {
        for deadline in [500u64, 2_000] {
            let mut config = CoordinatorConfig::new()
                .decision_rule(rule)
                .run_deadline(TimeMs(deadline));
            if ttp {
                config = config.ttp(b2b_crypto::PartyId::new("notary"));
            }
            let mut fleet =
                Fleet::with_options(5, 9, config, FaultPlan::default(), Crypto::Ed25519, false);
            if ttp {
                b2b_bench::add_notary(&mut fleet, 77);
            }
            fleet.setup_object("c", counter_factory);
            let t0 = fleet.net.now();
            // org4 goes silent forever.
            fleet.net.partition(
                [party(4)],
                (0..4).map(party).collect::<Vec<_>>(),
                TimeMs(u64::MAX),
            );
            let oid = ObjectId::new("c");
            let run = fleet.net.invoke(&party(0), move |c, ctx| {
                c.propose_overwrite(&oid, enc(5), ctx).unwrap()
            });
            // Step until the proposer records an outcome (the silent peer
            // keeps retransmission alive forever, so quiescence never comes).
            let resolved_at = loop {
                if fleet.outcome(0, &run).is_some() {
                    break Some(fleet.net.now());
                }
                if fleet.net.now() - t0 > TimeMs(60_000) || !fleet.net.step() {
                    break None;
                }
            };
            let outcome = match fleet.outcome(0, &run) {
                Some(Outcome::Installed { .. }) => "installed",
                Some(Outcome::Invalidated { .. }) => "invalidated",
                Some(Outcome::Aborted { .. }) => "aborted",
                None => "blocked",
            };
            let elapsed = resolved_at
                .map(|t| (t - t0).to_string())
                .unwrap_or_else(|| ">60000ms".into());
            println!("| {label} | {deadline}ms | {outcome} | {elapsed} |");
            metrics.merge(&fleet.metrics());
        }
    }
    metrics
}
