//! Regenerates the experiment tables recorded in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p b2b-bench --release --bin exp -- <e1|...|e10|etcp|all>`
//! (`exp-tcp` is accepted as an alias for `etcp`)
//!
//! Two more subcommands sit beside the benchmark sweeps:
//!
//! * `exp -- check --budget 500` — the E-CHK table (schedule exploration /
//!   mutation kills); a model-checking run, not a benchmark sweep. Optional
//!   `--seed S`, `--scenario ID` and `--emit DIR` (write the shrunk
//!   counterexample artifacts as JSON, each with a Chrome trace-event view
//!   of its distributed trace alongside).
//! * `exp -- trace [--seed S]` — runs the Figure-5 sharing scenario on the
//!   deterministic simulator with a fleet-wide flight recorder, prints an
//!   ASCII timeline per distributed trace and writes Chrome trace-event
//!   JSON (load in `chrome://tracing` or Perfetto) to `target/metrics/`.
//! * `exp -- eshard [--max-groups N] [--shards S]` — the E-SHARD sweep:
//!   16…10k coordination groups multiplexed over a fixed worker pool
//!   (`b2b-net::shard`), aggregate pipelined-update throughput per group
//!   count × batch k, recorded in the repo-root `BENCH_shard.json`.
//! * `exp -- eserve [--clients N] [--orders M] [--ops K]` — the E-SERVE
//!   closed-loop sweep against the `b2b-server` HTTP/JSON order service:
//!   N client threads over M orders in each of the three §3.3 modes,
//!   throughput and p50/p95/p99 per-request latency per mode, gated ≥ 1×
//!   the E-SHARD tcp per-group update rate at the same group count,
//!   recorded in the repo-root `BENCH_serve.json`.
//!
//! Besides its markdown table, every experiment merges the fleet-wide
//! metrics registries of all the fleets it ran and writes the result as
//! a JSON sidecar to `target/metrics/<exp>.metrics.json` (see
//! `EXPERIMENTS.md` for the format). Each sidecar carries a provenance
//! header — git commit, base seed, scenario, fabric — and a p50/p95/p99
//! digest of every histogram, so a stray file on disk is always
//! attributable to the build and run that produced it.

use b2b_bench::{append_blob_factory, counter_factory, enc, party, Crypto, Fleet};
use b2b_core::{ConnectStatus, Coordinator, CoordinatorConfig, DecisionRule, ObjectId, Outcome};
use b2b_crypto::{KeyPair, KeyRing, Signer, TimeMs};
use b2b_net::{FaultPlan, TcpConfig, TcpNet, ThreadedNet};
use b2b_telemetry::{names, MetricsSnapshot, Telemetry};
use std::time::{Duration, Instant};

fn main() {
    let mut which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "exp-tcp" {
        which = "etcp".into();
    }
    if which == "check" {
        let (base_seed, metrics) = echk_model_check(std::env::args().skip(2).collect());
        write_sidecar("echk", "sim", base_seed, &metrics);
        return;
    }
    if which == "trace" {
        trace_figure5(std::env::args().skip(2).collect());
        return;
    }
    if which == "eshard" {
        let (metrics, fabric) = eshard_sharded_fleet(std::env::args().skip(2).collect());
        let label = format!("sharded-{}", fabric.label());
        write_sidecar("eshard", &label, ESHARD_SEED, &metrics);
        return;
    }
    if which == "eserve" {
        let metrics = eserve_http_service(std::env::args().skip(2).collect());
        write_sidecar("eserve", "http+inproc", ESERVE_SEED, &metrics);
        return;
    }
    let known = [
        "all", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "etcp",
    ];
    if !known.contains(&which.as_str()) {
        eprintln!(
            "unknown experiment '{which}'; expected one of: {} (or the check/trace subcommands)",
            known.join(", ")
        );
        std::process::exit(2);
    }
    let all = which == "all";
    type Experiment = fn() -> MetricsSnapshot;
    // (name, fabric, base seed, runner) — fabric and seed feed the sidecar
    // provenance header.
    let experiments: [(&str, &str, u64, Experiment); 11] = [
        ("e1", "sim", 1, e1_message_complexity),
        ("e2", "sim", 2, e2_protocol_latency),
        ("e3", "sim", 3, e3_overwrite_vs_update),
        ("e4", "sim", 4, e4_crypto_ablation),
        ("e5", "sim", 5, e5_modes),
        ("e6", "sim", 100, e6_liveness_under_faults),
        ("e7", "sim", 42, e7_recovery),
        ("e8", "sim", 7, e8_membership),
        ("e9", "sim", 9, e9_termination),
        ("e10", "sim+threaded", 10, e10_throughput),
        ("etcp", "tcp", 20, etcp_tcp_loopback),
    ];
    for (name, fabric, seed, run) in experiments {
        if all || which == name {
            let metrics = run();
            write_sidecar(name, fabric, seed, &metrics);
        }
    }
}

/// Best-effort commit id of the working tree; `"unknown"` outside git.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Minimal JSON string encoder for the hand-formatted sidecar envelope.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `{"<hist>":{"p50":..,"p95":..,"p99":..},...}` for every histogram in
/// the snapshot.
fn percentiles_json(metrics: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    for (i, (name, h)) in metrics.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{}:{{\"p50\":{},\"p95\":{},\"p99\":{}}}",
            json_str(name),
            h.p50(),
            h.p95(),
            h.p99()
        ));
    }
    out.push('}');
    out
}

/// Writes the merged metrics of one experiment as a JSON sidecar under
/// `target/metrics/` and prints the human-readable table.
///
/// The sidecar wraps the raw registry snapshot in a provenance header
/// (git commit, base seed, scenario, fabric) and a p50/p95/p99 digest of
/// every histogram.
fn write_sidecar(name: &str, fabric: &str, seed: u64, metrics: &MetricsSnapshot) {
    let dir = std::path::Path::new("target").join("metrics");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.metrics.json"));
    let body = format!(
        "{{\"provenance\":{{\"git_sha\":{},\"seed\":{seed},\"scenario\":{},\"fabric\":{}}},\"percentiles\":{},\"metrics\":{}}}",
        json_str(&git_sha()),
        json_str(name),
        json_str(fabric),
        percentiles_json(metrics),
        metrics.to_json(),
    );
    match std::fs::write(&path, body) {
        Ok(()) => {
            println!("\nmetrics sidecar: {}", path.display());
            println!("{}", metrics.render_table());
        }
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// `exp -- trace [--seed S]` — the Figure-5 sharing scenario with a
/// fleet-wide flight recorder: three organisations bring up a shared
/// counter (two sponsored connection rounds), coordinate three state
/// runs, and org2 leaves voluntarily. Every delivered message extends the
/// causal DAG of its round, so the assembler reconstructs one distributed
/// trace per root — printed as ASCII timelines and written as Chrome
/// trace-event JSON for `chrome://tracing` / Perfetto.
fn trace_figure5(args: Vec<String>) {
    use b2b_telemetry::{assemble, chrome_trace_json, RingRecorder};
    use std::sync::Arc;

    let mut seed = 5u64;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed takes a number");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown trace flag '{other}' (expected --seed)");
                std::process::exit(2);
            }
        }
    }

    let recorder = Arc::new(RingRecorder::new(16_384));
    let telemetry = Telemetry::with_sink(recorder.clone());
    let mut fleet = Fleet::with_telemetry(
        3,
        seed,
        CoordinatorConfig::default(),
        FaultPlan::new(),
        Crypto::Ed25519,
        true,
        telemetry,
    );
    fleet.setup_object("ledger", counter_factory);
    for (who, v) in [(0usize, 41u64), (1, 42), (2, 43)] {
        fleet.propose(who, "ledger", enc(v));
    }
    let oid = ObjectId::new("ledger");
    fleet.net.invoke(&party(2), move |c, ctx| {
        c.request_disconnect(&oid, ctx).unwrap();
    });
    fleet.run();

    let traces = assemble(&recorder.events());
    println!("\n## Distributed traces — Figure-5 sharing scenario (sim, seed {seed})\n");
    for t in &traces {
        println!("{}", t.ascii_timeline());
    }

    let dir = std::path::Path::new("target").join("metrics");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("trace-sim-{seed}.trace.json"));
    match std::fs::write(&path, chrome_trace_json(&traces)) {
        Ok(()) => println!(
            "chrome trace: {} ({} traces) — open in chrome://tracing or ui.perfetto.dev",
            path.display(),
            traces.len()
        ),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// E1 — §7 message-efficiency claim: a state run costs 3(n−1) messages.
fn e1_message_complexity() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E1 — messages per state-coordination run vs group size\n");
    println!("| n parties | measured msgs | model 3(n-1) | bytes on wire |");
    println!("|---|---|---|---|");
    for n in [2usize, 4, 8, 12, 16] {
        let mut fleet = Fleet::new(n, 1);
        fleet.setup_object("c", counter_factory);
        let msgs_before = fleet.total_protocol_messages();
        let bytes_before = fleet.net.stats().bytes_sent;
        fleet.propose(0, "c", enc(7));
        let msgs = fleet.total_protocol_messages() - msgs_before;
        let bytes = fleet.net.stats().bytes_sent - bytes_before;
        println!("| {n} | {msgs} | {} | {bytes} |", 3 * (n - 1));
        metrics.merge(&fleet.metrics());
    }
    metrics
}

/// E2 — three-step protocol: completion latency vs group size and link delay.
fn e2_protocol_latency() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E2 — state-run completion latency (virtual time)\n");
    println!("| n parties | link delay | latency (all installed) | model 3d |");
    println!("|---|---|---|---|");
    for n in [2usize, 4, 8, 16] {
        for delay in [1u64, 10, 50] {
            let mut fleet = Fleet::with_options(
                n,
                2,
                CoordinatorConfig::default(),
                FaultPlan::new().delay(TimeMs(delay), TimeMs(delay)),
                Crypto::Ed25519,
                true,
            );
            fleet.setup_object("c", counter_factory);
            let t0 = fleet.net.now();
            let oid = ObjectId::new("c");
            fleet.net.invoke(&party(0), move |c, ctx| {
                c.propose_overwrite(&oid, enc(5), ctx).unwrap();
            });
            // Run until every party has installed.
            loop {
                let done = (0..n).all(|w| {
                    fleet.net.node(&party(w)).agreed_state(&ObjectId::new("c")) == Some(enc(5))
                });
                if done || !fleet.net.step() {
                    break;
                }
            }
            let latency = fleet.net.now() - t0;
            println!("| {n} | {delay}ms | {latency} | {}ms |", 3 * delay);
            metrics.merge(&fleet.metrics());
        }
    }
    metrics
}

/// E3 — §4.3.1 overwrite vs update for growing state.
fn e3_overwrite_vs_update() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E3 — overwrite vs update (64 B appended to a large state)\n");
    println!("| state size | mode | wire bytes/run | wall time/run |");
    println!("|---|---|---|---|");
    for size in [1usize << 10, 1 << 14, 1 << 18, 1 << 20] {
        for update_mode in [false, true] {
            let mut fleet = Fleet::new(3, 3);
            fleet.setup_object("blob", append_blob_factory);
            // Pre-grow the state to `size`.
            let base = vec![0xAB; size];
            fleet.propose(0, "blob", base.clone());
            let chunk = vec![0xCD; 64];
            let bytes_before = fleet.net.stats().bytes_sent;
            let t = Instant::now();
            let runs = 5;
            for i in 0..runs {
                if update_mode {
                    fleet.propose_update(i % 3, "blob", chunk.clone());
                } else {
                    let mut next = fleet
                        .net
                        .node(&party(0))
                        .agreed_state(&ObjectId::new("blob"))
                        .unwrap();
                    next.extend_from_slice(&chunk);
                    fleet.propose(i % 3, "blob", next);
                }
            }
            let wall = t.elapsed() / runs as u32;
            let wire = (fleet.net.stats().bytes_sent - bytes_before) / runs as u64;
            println!(
                "| {} KiB | {} | {} | {:?} |",
                size / 1024,
                if update_mode { "update" } else { "overwrite" },
                wire,
                wall
            );
            metrics.merge(&fleet.metrics());
        }
    }
    metrics
}

/// E4 — the cost of the non-repudiation machinery.
fn e4_crypto_ablation() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E4 — crypto ablation: Ed25519+TSA vs insecure signer\n");
    println!("| n parties | crypto | wall time / run |");
    println!("|---|---|---|");
    for n in [2usize, 4, 8] {
        for (label, crypto, tsa) in [
            ("ed25519 + TSA", Crypto::Ed25519, true),
            ("ed25519, no TSA", Crypto::Ed25519, false),
            ("insecure", Crypto::Insecure, false),
        ] {
            let mut fleet = Fleet::with_options(
                n,
                4,
                CoordinatorConfig::default(),
                FaultPlan::default(),
                crypto,
                tsa,
            );
            fleet.setup_object("c", counter_factory);
            let runs = 20u64;
            let t = Instant::now();
            for i in 0..runs {
                fleet.propose((i % n as u64) as usize, "c", enc(i + 1));
            }
            println!("| {n} | {label} | {:?} |", t.elapsed() / runs as u32);
            metrics.merge(&fleet.metrics());
        }
    }
    metrics
}

/// E5 — communication modes: sequential blocking vs pipelined deferred.
fn e5_modes() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E5 — sync (sequential) vs deferred (pipelined across objects)\n");
    println!("| objects | mode | virtual time for one update each |");
    println!("|---|---|---|");
    for k in [1usize, 4, 8, 16] {
        // Synchronous: one object, k sequential runs.
        let mut fleet = Fleet::new(2, 5);
        for i in 0..k {
            fleet.setup_object(&format!("obj{i}"), counter_factory);
        }
        let t0 = fleet.net.now();
        for i in 0..k {
            fleet.propose(0, &format!("obj{i}"), enc(1)); // runs to quiescence: sequential
        }
        let sync_time = fleet.net.now() - t0;
        metrics.merge(&fleet.metrics());
        // Deferred: fire all proposals, then drive once.
        let mut fleet = Fleet::new(2, 6);
        for i in 0..k {
            fleet.setup_object(&format!("obj{i}"), counter_factory);
        }
        let t0 = fleet.net.now();
        for i in 0..k {
            let oid = ObjectId::new(format!("obj{i}"));
            fleet.net.invoke(&party(0), move |c, ctx| {
                c.propose_overwrite(&oid, enc(1), ctx).unwrap();
            });
        }
        fleet.run();
        let deferred_time = fleet.net.now() - t0;
        metrics.merge(&fleet.metrics());
        println!("| {k} | sync | {sync_time} |");
        println!("| {k} | deferred | {deferred_time} |");
    }
    metrics
}

/// E6 — liveness despite temporary failures: completion under loss.
///
/// The retransmit column shows the cost of achieving that liveness. The
/// "fixed 200 ms" rows pin the backoff ceiling to the base interval,
/// reproducing the old constant-rate retransmitter; the "exp backoff"
/// rows are the default policy (base 200 ms, doubling per attempt,
/// capped at 32×). Liveness is identical; the retransmit count under
/// 30%+ loss is what changes.
fn e6_liveness_under_faults() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E6 — liveness under message loss (3 parties, retransmit base 200 ms)\n");
    println!("| retransmit policy | loss rate | runs completed | median completion (virtual) | retransmits (10 runs) |");
    println!("|---|---|---|---|---|");
    for (policy, cap) in [
        ("fixed 200 ms", Some(TimeMs(200))),
        ("exp backoff (default)", None),
    ] {
        for loss in [0.0f64, 0.1, 0.3, 0.5] {
            let mut completions = Vec::new();
            let mut completed = 0;
            let mut retransmits = 0u64;
            let total = 10;
            for seed in 0..total {
                let mut config = CoordinatorConfig::default();
                if let Some(max) = cap {
                    config = config.retransmit_max(max);
                }
                let mut fleet = Fleet::with_options(
                    3,
                    100 + seed,
                    config,
                    FaultPlan::new()
                        .drop_rate(loss)
                        .delay(TimeMs(1), TimeMs(10)),
                    Crypto::Ed25519,
                    false,
                );
                fleet.setup_object("c", counter_factory);
                let t0 = fleet.net.now();
                let run = fleet.propose(0, "c", enc(9));
                let installed_everywhere = (0..3).all(|w| {
                    fleet
                        .outcome(w, &run)
                        .map(|o| o.is_installed())
                        .unwrap_or(false)
                });
                if installed_everywhere {
                    completed += 1;
                    completions.push((fleet.net.now() - t0).as_millis());
                }
                let snap = fleet.metrics();
                retransmits += snap.counter(names::RETRANSMITS);
                metrics.merge(&snap);
            }
            completions.sort_unstable();
            let median = completions
                .get(completions.len() / 2)
                .map(|m| format!("{m}ms"))
                .unwrap_or_else(|| "-".into());
            println!(
                "| {policy} | {loss:.0}% | {completed}/{total} | {median} | {retransmits} |",
                loss = loss * 100.0
            );
        }
    }

    // Under iid loss a frame is retransmitted until acked, so both
    // policies pay roughly the lost-frame count. The storm the backoff
    // exists to tame is a *sustained* outage: the fixed-interval policy
    // probes an unreachable peer at a constant rate for the whole outage,
    // the backoff probes a logarithmic number of times.
    println!("\n### E6b — probe cost across a temporary partition (3 parties, one isolated)\n");
    println!("| retransmit policy | outage | run completes after heal | retransmits |");
    println!("|---|---|---|---|");
    for (policy, cap) in [
        ("fixed 200 ms", Some(TimeMs(200))),
        ("exp backoff (default)", None),
    ] {
        for outage in [2_000u64, 10_000, 30_000] {
            let mut config = CoordinatorConfig::default();
            if let Some(max) = cap {
                config = config.retransmit_max(max);
            }
            let mut fleet =
                Fleet::with_options(3, 42, config, FaultPlan::default(), Crypto::Ed25519, false);
            fleet.setup_object("c", counter_factory);
            let before = fleet.metrics().counter(names::RETRANSMITS);
            let t0 = fleet.net.now();
            fleet
                .net
                .partition([party(2)], [party(0), party(1)], t0 + TimeMs(outage));
            let run = fleet.propose(0, "c", enc(9));
            let ok = (0..3).all(|w| {
                fleet
                    .outcome(w, &run)
                    .map(|o| o.is_installed())
                    .unwrap_or(false)
            });
            let snap = fleet.metrics();
            let probes = snap.counter(names::RETRANSMITS) - before;
            println!("| {policy} | {outage}ms | {ok} | {probes} |");
            metrics.merge(&snap);
        }
    }
    metrics
}

/// E7 — crash recovery: a recipient crashes mid-run, recovers, completes.
fn e7_recovery() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E7 — recipient crash + recovery during a run\n");
    println!("| downtime | run completes | completion after recovery |");
    println!("|---|---|---|");
    for downtime in [500u64, 2_000, 10_000] {
        let mut fleet = Fleet::new(2, 7);
        fleet.setup_object("c", counter_factory);
        let t0 = fleet.net.now();
        fleet.net.crash_at(t0 + TimeMs(1), party(1));
        fleet.net.recover_at(t0 + TimeMs(downtime), party(1));
        let run = fleet.propose(0, "c", enc(5));
        let ok = (0..2).all(|w| {
            fleet
                .outcome(w, &run)
                .map(|o| o.is_installed())
                .unwrap_or(false)
        });
        let after_recovery = (fleet.net.now() - t0).saturating_sub(TimeMs(downtime));
        println!("| {downtime}ms | {ok} | +{after_recovery} |");
        metrics.merge(&fleet.metrics());
    }
    metrics
}

/// E8 — membership protocol cost vs group size.
fn e8_membership() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E8 — membership change cost vs group size\n");
    println!("| group n | change | measured msgs | model |");
    println!("|---|---|---|---|");
    for n in [2usize, 4, 8, 12] {
        // Connection into a group of n: 1 request + 3(n−1) + welcome.
        let mut fleet = Fleet::new(n + 1, 8);
        let joiner = n;
        // Build group of n first.
        let sub: Vec<usize> = (0..n).collect();
        fleet.net.invoke(&party(0), |c, _| {
            c.register_object(ObjectId::new("c"), Box::new(counter_factory))
                .unwrap();
        });
        for i in 1..n {
            let sponsor = party(i - 1);
            fleet.net.invoke(&party(i), move |c, ctx| {
                c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
                    .unwrap();
            });
            fleet.run();
        }
        let before = fleet.total_protocol_messages();
        let sponsor = party(n - 1);
        fleet.net.invoke(&party(joiner), move |c, ctx| {
            c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
                .unwrap();
        });
        fleet.run();
        assert_eq!(
            fleet
                .net
                .node(&party(joiner))
                .connect_status(&ObjectId::new("c")),
            Some(&ConnectStatus::Member)
        );
        let connect_msgs = fleet.total_protocol_messages() - before;
        println!("| {n} | connect | {connect_msgs} | 3n-1 = {} |", 3 * n - 1);

        // Eviction of one member from the (n+1)-group by the sponsor.
        let before = fleet.total_protocol_messages();
        let evictee = party(0);
        fleet.net.invoke(&party(joiner), move |c, ctx| {
            c.request_evict(&ObjectId::new("c"), vec![evictee], ctx)
                .unwrap();
        });
        fleet.run();
        let evict_msgs = fleet.total_protocol_messages() - before;
        println!(
            "| {} | evict 1 (by sponsor) | {evict_msgs} | 3(n-1) = {} |",
            n + 1,
            3 * (n + 1 - 2)
        );
        let _ = sub;
        metrics.merge(&fleet.metrics());
    }
    metrics
}

/// E9 — §7 termination extensions: deadlines and majority decision.
fn e9_termination() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E9 — termination extensions (one silent party)\n");
    println!("| rule | deadline | outcome at proposer | time to resolution |");
    println!("|---|---|---|---|");
    for (rule, ttp, label) in [
        (DecisionRule::Unanimous, false, "unanimous (local abort)"),
        (
            DecisionRule::Unanimous,
            true,
            "unanimous + TTP (certified abort)",
        ),
        (DecisionRule::Majority, false, "majority (resolve)"),
    ] {
        for deadline in [500u64, 2_000] {
            let mut config = CoordinatorConfig::new()
                .decision_rule(rule)
                .run_deadline(TimeMs(deadline));
            if ttp {
                config = config.ttp(b2b_crypto::PartyId::new("notary"));
            }
            let mut fleet =
                Fleet::with_options(5, 9, config, FaultPlan::default(), Crypto::Ed25519, false);
            if ttp {
                b2b_bench::add_notary(&mut fleet, 77);
            }
            fleet.setup_object("c", counter_factory);
            let t0 = fleet.net.now();
            // org4 goes silent forever.
            fleet.net.partition(
                [party(4)],
                (0..4).map(party).collect::<Vec<_>>(),
                TimeMs(u64::MAX),
            );
            let oid = ObjectId::new("c");
            let run = fleet.net.invoke(&party(0), move |c, ctx| {
                c.propose_overwrite(&oid, enc(5), ctx).unwrap()
            });
            // Step until the proposer records an outcome (the silent peer
            // keeps retransmission alive forever, so quiescence never comes).
            let resolved_at = loop {
                if fleet.outcome(0, &run).is_some() {
                    break Some(fleet.net.now());
                }
                if fleet.net.now() - t0 > TimeMs(60_000) || !fleet.net.step() {
                    break None;
                }
            };
            let outcome = match fleet.outcome(0, &run) {
                Some(Outcome::Installed { .. }) => "installed",
                Some(Outcome::Invalidated { .. }) => "invalidated",
                Some(Outcome::Aborted { .. }) => "aborted",
                None => "blocked",
            };
            let elapsed = resolved_at
                .map(|t| (t - t0).to_string())
                .unwrap_or_else(|| ">60000ms".into());
            println!("| {label} | {deadline}ms | {outcome} | {elapsed} |");
            metrics.merge(&fleet.metrics());
        }
    }
    metrics
}

// ---------------------------------------------------------------------
// E10 — protocol throughput (the perf-pass regression anchor)
// ---------------------------------------------------------------------

/// Pre-optimisation reference numbers for the E10 workload, measured on
/// this machine class at the commit immediately before the perf pass
/// (memoized canonical digests, signature-verification cache, multicast
/// fan-out, group-commit WAL) landed, release build, identical seeds.
/// They are recorded in `BENCH_protocol.json` so future PRs can
/// regress-check the trajectory.
mod e10_baseline {
    /// Simulator transport, n=4 sync update workload: runs per second.
    pub const SIM_RUNS_PER_SEC: f64 = 32.99;
    /// Simulator transport: signature verifications per run.
    pub const SIM_VERIFIES_PER_RUN: f64 = 15.0;
    /// Threaded transport, n=4 sync update workload: runs per second.
    pub const THREADED_RUNS_PER_SEC: f64 = 63.59;
    /// Threaded transport: signature verifications per run.
    pub const THREADED_VERIFIES_PER_RUN: f64 = 15.0;
    /// Pre-batching sync-workload throughput (the commit immediately
    /// before pipelined/batched rounds landed) — the k=1 regression gate:
    /// the pipelined path at `batch_max = 1` losing more than 10% against
    /// these numbers fails the bench job.
    pub const PRE_BATCH_SIM_RUNS_PER_SEC: f64 = 56.31;
    /// Threaded-transport counterpart of the k=1 regression gate anchor.
    pub const PRE_BATCH_THREADED_RUNS_PER_SEC: f64 = 85.61;
}

/// One transport's measured E10 numbers.
struct E10Sample {
    transport: &'static str,
    runs: u64,
    wall: Duration,
    sig_verifies: u64,
    cache_hits: u64,
    canonical_hits: u64,
    fanout_avoided: u64,
}

impl E10Sample {
    fn runs_per_sec(&self) -> f64 {
        self.runs as f64 / self.wall.as_secs_f64()
    }
    fn per_run(&self, count: u64) -> f64 {
        count as f64 / self.runs as f64
    }
}

/// Counter deltas between two snapshots, attributed to the measured loop.
fn e10_delta(tel: &Telemetry, before: &MetricsSnapshot, name: &str) -> u64 {
    tel.metrics().snapshot().counter(name) - before.counter(name)
}

/// `(count, sum)` delta of a histogram between two snapshots.
fn e10_hist_delta(tel: &Telemetry, before: &MetricsSnapshot, name: &str) -> (u64, u64) {
    let get = |snap: &MetricsSnapshot| {
        snap.histogram(name)
            .map(|h| (h.count, h.sum))
            .unwrap_or((0, 0))
    };
    let (c0, s0) = get(before);
    let (c1, s1) = get(&tel.metrics().snapshot());
    (c1 - c0, s1 - s0)
}

const E10_N: usize = 4;
const E10_CHUNK: usize = 16;

/// Sync-mode update workload on the deterministic simulator.
fn e10_sim(runs: u64) -> (E10Sample, MetricsSnapshot) {
    let mut fleet = Fleet::with_options(
        E10_N,
        10,
        CoordinatorConfig::default(),
        FaultPlan::default(),
        Crypto::Ed25519,
        false,
    );
    fleet.setup_object("blob", append_blob_factory);
    for i in 0..3u64 {
        // Warm-up: populate caches/pages outside the measured window.
        fleet.propose_update((i % E10_N as u64) as usize, "blob", vec![0xEE; E10_CHUNK]);
    }
    let before = fleet.metrics();
    let t = Instant::now();
    for i in 0..runs {
        fleet.propose_update((i % E10_N as u64) as usize, "blob", vec![0xEE; E10_CHUNK]);
    }
    let wall = t.elapsed();
    let tel = &fleet.telemetry;
    let sample = E10Sample {
        transport: "sim",
        runs,
        wall,
        sig_verifies: e10_delta(tel, &before, names::SIG_VERIFY_COUNT),
        cache_hits: e10_delta(tel, &before, names::SIG_CACHE_HITS),
        canonical_hits: e10_delta(tel, &before, names::CANONICAL_CACHE_HITS),
        fanout_avoided: e10_delta(tel, &before, names::FANOUT_SERIALIZATIONS_AVOIDED),
    };
    (sample, fleet.metrics())
}

/// Sync-mode update workload over real threads and channels.
fn e10_threaded(runs: u64) -> (E10Sample, MetricsSnapshot) {
    let telemetry = Telemetry::new();
    let mut ring = KeyRing::new();
    let mut keys = Vec::new();
    for i in 0..E10_N {
        let kp = KeyPair::generate_from_seed(1000 + i as u64);
        ring.register(party(i), kp.public_key());
        keys.push(kp);
    }
    let nodes = keys
        .into_iter()
        .enumerate()
        .map(|(i, kp)| {
            Coordinator::builder(party(i), kp)
                .ring(ring.clone())
                .seed(10 + i as u64)
                .telemetry(telemetry.clone())
                .build()
        })
        .collect();
    let net = ThreadedNet::spawn(nodes);
    let oid = ObjectId::new("blob");
    net.handle(&party(0)).invoke({
        let oid = oid.clone();
        move |c, _| {
            c.register_object(oid, Box::new(append_blob_factory))
                .unwrap();
        }
    });
    for i in 1..E10_N {
        let sponsor = party(i - 1);
        let h = net.handle(&party(i));
        let o = oid.clone();
        h.invoke(move |c, ctx| {
            c.request_connect(o, Box::new(append_blob_factory), sponsor, ctx)
                .unwrap();
        });
        let o = oid.clone();
        assert!(
            h.wait_until(Duration::from_secs(30), move |c| c.is_member(&o)),
            "org{i} failed to join"
        );
    }
    // Sync mode: every proposal comes from org0 and the next one starts
    // only once org0 has its outcome (per-link FIFO keeps recipients in
    // step). The proposer's own replica goes idle a beat after the
    // outcome lands, so wait out that window before proposing again.
    let h0 = net.handle(&party(0)).clone();
    let one_run = |i: u64| {
        let o = oid.clone();
        h0.wait_until(Duration::from_secs(30), move |c| !c.is_busy(&o));
        let o = oid.clone();
        let run =
            h0.invoke(move |c, ctx| c.propose_update(&o, vec![0xEE; E10_CHUNK], ctx).unwrap());
        assert!(
            h0.wait_until(Duration::from_secs(30), move |c| c
                .outcome_of(&run)
                .is_some()),
            "run {i} did not complete"
        );
    };
    for i in 0..3 {
        one_run(i);
    }
    let before = telemetry.metrics().snapshot();
    let t = Instant::now();
    for i in 0..runs {
        one_run(i);
    }
    let wall = t.elapsed();
    let sample = E10Sample {
        transport: "threaded",
        runs,
        wall,
        sig_verifies: e10_delta(&telemetry, &before, names::SIG_VERIFY_COUNT),
        cache_hits: e10_delta(&telemetry, &before, names::SIG_CACHE_HITS),
        canonical_hits: e10_delta(&telemetry, &before, names::CANONICAL_CACHE_HITS),
        fanout_avoided: e10_delta(&telemetry, &before, names::FANOUT_SERIALIZATIONS_AVOIDED),
    };
    let snap = telemetry.metrics().snapshot();
    net.shutdown();
    (sample, snap)
}

/// One (transport, batch_max) cell of the E10 batch axis: `updates`
/// application updates pushed through `submit_update` while earlier
/// rounds are still in flight, so queued updates coalesce into batched
/// rounds of at most `k`.
struct BatchSample {
    transport: &'static str,
    k: usize,
    updates: u64,
    wall: Duration,
    /// Proposer-side rounds (the `batch_occupancy` histogram count —
    /// `rounds_started` counts every party's view of a round).
    rounds: u64,
    coalesced: u64,
    sig_verifies: u64,
}

impl BatchSample {
    fn updates_per_sec(&self) -> f64 {
        self.updates as f64 / self.wall.as_secs_f64()
    }
    fn verifies_per_update(&self) -> f64 {
        self.sig_verifies as f64 / self.updates as f64
    }
    fn mean_occupancy(&self) -> f64 {
        self.updates as f64 / self.rounds.max(1) as f64
    }
}

/// Pipelined update workload on the deterministic simulator: all updates
/// submitted up front, the coordinator batches the backlog.
fn e10_batched_sim(updates: u64, k: usize) -> (BatchSample, MetricsSnapshot) {
    let mut fleet = Fleet::with_options(
        E10_N,
        10,
        CoordinatorConfig::default().batch_max(k),
        FaultPlan::default(),
        Crypto::Ed25519,
        false,
    );
    fleet.setup_object("blob", append_blob_factory);
    for i in 0..3u64 {
        fleet.propose_update((i % E10_N as u64) as usize, "blob", vec![0xEE; E10_CHUNK]);
    }
    let before = fleet.metrics();
    let t = Instant::now();
    let oid = ObjectId::new("blob");
    let tickets = fleet.net.invoke(&party(0), move |c, ctx| {
        (0..updates)
            .map(|_| c.submit_update(&oid, vec![0xEE; E10_CHUNK], ctx).unwrap())
            .collect::<Vec<_>>()
    });
    fleet.run();
    let wall = t.elapsed();
    let installed = {
        let node = fleet.net.node(&party(0));
        tickets
            .iter()
            .filter(|t| node.outcome_of_ticket(t).is_some_and(|o| o.is_installed()))
            .count() as u64
    };
    assert_eq!(installed, updates, "every pipelined update must install");
    let tel = &fleet.telemetry;
    let (rounds, occupancy_sum) = e10_hist_delta(tel, &before, names::BATCH_OCCUPANCY);
    assert_eq!(
        occupancy_sum, updates,
        "every update rode exactly one round"
    );
    let sample = BatchSample {
        transport: "sim",
        k,
        updates,
        wall,
        rounds,
        coalesced: e10_delta(tel, &before, names::ROUNDS_COALESCED),
        sig_verifies: e10_delta(tel, &before, names::SIG_VERIFY_COUNT),
    };
    (sample, fleet.metrics())
}

/// Pipelined update workload over real threads and channels, with one
/// shared signature-verification pool attached to every coordinator (the
/// cross-group parallel-verify configuration: many coordinators, one
/// worker pool).
fn e10_batched_threaded(updates: u64, k: usize) -> (BatchSample, MetricsSnapshot) {
    use b2b_core::TicketId;
    let telemetry = Telemetry::new();
    let pool = std::sync::Arc::new(b2b_crypto::VerifyPool::with_default_parallelism());
    let mut ring = KeyRing::new();
    let mut keys = Vec::new();
    for i in 0..E10_N {
        let kp = KeyPair::generate_from_seed(1000 + i as u64);
        ring.register(party(i), kp.public_key());
        keys.push(kp);
    }
    let nodes = keys
        .into_iter()
        .enumerate()
        .map(|(i, kp)| {
            Coordinator::builder(party(i), kp)
                .ring(ring.clone())
                .config(CoordinatorConfig::default().batch_max(k))
                .seed(10 + i as u64)
                .telemetry(telemetry.clone())
                .verify_pool(pool.clone())
                .build()
        })
        .collect();
    let net = ThreadedNet::spawn(nodes);
    let oid = ObjectId::new("blob");
    net.handle(&party(0)).invoke({
        let oid = oid.clone();
        move |c, _| {
            c.register_object(oid, Box::new(append_blob_factory))
                .unwrap();
        }
    });
    for i in 1..E10_N {
        let sponsor = party(i - 1);
        let h = net.handle(&party(i));
        let o = oid.clone();
        h.invoke(move |c, ctx| {
            c.request_connect(o, Box::new(append_blob_factory), sponsor, ctx)
                .unwrap();
        });
        let o = oid.clone();
        assert!(
            h.wait_until(Duration::from_secs(30), move |c| c.is_member(&o)),
            "org{i} failed to join"
        );
    }
    let h0 = net.handle(&party(0)).clone();
    for _ in 0..3 {
        // Warm-up (sync): caches hot, channels established. The replica
        // goes idle a beat after the previous outcome lands, so wait out
        // that window rather than racing a busy-rejection.
        let o = oid.clone();
        h0.wait_until(Duration::from_secs(30), move |c| !c.is_busy(&o));
        let o = oid.clone();
        let run =
            h0.invoke(move |c, ctx| c.propose_update(&o, vec![0xEE; E10_CHUNK], ctx).unwrap());
        assert!(h0.wait_until(Duration::from_secs(30), move |c| c
            .outcome_of(&run)
            .is_some()));
    }
    let before = telemetry.metrics().snapshot();
    let t = Instant::now();
    let o = oid.clone();
    let tickets: Vec<TicketId> = h0.invoke(move |c, ctx| {
        (0..updates)
            .map(|_| c.submit_update(&o, vec![0xEE; E10_CHUNK], ctx).unwrap())
            .collect()
    });
    let watched = tickets.clone();
    assert!(
        h0.wait_until(Duration::from_secs(60), move |c| watched
            .iter()
            .all(|t| c.outcome_of_ticket(t).is_some())),
        "pipelined updates did not all complete"
    );
    let wall = t.elapsed();
    let installed = h0.read({
        let tickets = tickets.clone();
        move |c| {
            tickets
                .iter()
                .filter(|t| c.outcome_of_ticket(t).is_some_and(|o| o.is_installed()))
                .count() as u64
        }
    });
    assert_eq!(installed, updates, "every pipelined update must install");
    let (rounds, occupancy_sum) = e10_hist_delta(&telemetry, &before, names::BATCH_OCCUPANCY);
    assert_eq!(
        occupancy_sum, updates,
        "every update rode exactly one round"
    );
    let sample = BatchSample {
        transport: "threaded",
        k,
        updates,
        wall,
        rounds,
        coalesced: e10_delta(&telemetry, &before, names::ROUNDS_COALESCED),
        sig_verifies: e10_delta(&telemetry, &before, names::SIG_VERIFY_COUNT),
    };
    let snap = telemetry.metrics().snapshot();
    net.shutdown();
    (sample, snap)
}

/// E10 — k back-to-back update runs over n parties on both transports:
/// runs/sec, verifications per run, and cache work avoided, with the
/// pre-optimisation baseline recorded alongside in `BENCH_protocol.json`.
/// The batch axis then re-runs the workload through the pipelined
/// `submit_update` path at `batch_max` ∈ {1, 4, 16}.
fn e10_throughput() -> MetricsSnapshot {
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E10 — protocol throughput (n=4, sync update workload)\n");
    println!("| transport | runs | runs/sec | sig verifies/run | cache hits/run | canonical memo hits/run | fan-out serialisations avoided/run |");
    println!("|---|---|---|---|---|---|---|");
    let (sim, sim_metrics) = e10_sim(200);
    let (threaded, threaded_metrics) = e10_threaded(240);
    for s in [&sim, &threaded] {
        println!(
            "| {} | {} | {:.1} | {:.2} | {:.2} | {:.2} | {:.2} |",
            s.transport,
            s.runs,
            s.runs_per_sec(),
            s.per_run(s.sig_verifies),
            s.per_run(s.cache_hits),
            s.per_run(s.canonical_hits),
            s.per_run(s.fanout_avoided),
        );
    }
    metrics.merge(&sim_metrics);
    metrics.merge(&threaded_metrics);

    println!("\n## E10 batch axis — pipelined `submit_update`, batched rounds (n=4)\n");
    println!("| transport | batch_max | updates | updates/sec | rounds | mean occupancy | rounds coalesced | sig verifies/update |");
    println!("|---|---|---|---|---|---|---|---|");
    let mut batch = Vec::new();
    for k in [1usize, 4, 16] {
        let (s, m) = e10_batched_sim(192, k);
        metrics.merge(&m);
        batch.push(s);
        let (s, m) = e10_batched_threaded(192, k);
        metrics.merge(&m);
        batch.push(s);
    }
    batch.sort_by_key(|s| (s.transport, s.k));
    for s in &batch {
        println!(
            "| {} | {} | {} | {:.1} | {} | {:.2} | {} | {:.2} |",
            s.transport,
            s.k,
            s.updates,
            s.updates_per_sec(),
            s.rounds,
            s.mean_occupancy(),
            s.coalesced,
            s.verifies_per_update(),
        );
    }

    // The k=1 regression gate: the pipelined path with batching disabled
    // must stay within 10% of this run's own sync throughput on the same
    // transport. A round is now ~1.5 ms of work, so a single sub-second
    // sample can lose 10% to scheduler noise alone; a transport that
    // fails the first comparison gets re-measured on fresh fleets — a
    // real k=1 regression fails every attempt, noise does not. Set
    // E10_NO_GATE=1 to record without enforcing (noisy shared machines).
    let first_gate = |transport: &str| {
        let anchor = match transport {
            "sim" => sim.runs_per_sec(),
            _ => threaded.runs_per_sec(),
        };
        batch
            .iter()
            .filter(|s| s.k == 1 && s.transport == transport)
            .all(|s| s.updates_per_sec() >= 0.9 * anchor)
    };
    let mut gate_attempts = 1u32;
    let mut gate_ok = true;
    for transport in ["sim", "threaded"] {
        let mut ok = first_gate(transport);
        let mut attempt = 1;
        while !ok && attempt < 3 {
            attempt += 1;
            gate_attempts = gate_attempts.max(attempt);
            let (anchor, k1) = match transport {
                "sim" => (e10_sim(200).0.runs_per_sec(), {
                    let (s, m) = e10_batched_sim(192, 1);
                    metrics.merge(&m);
                    s.updates_per_sec()
                }),
                _ => (e10_threaded(240).0.runs_per_sec(), {
                    let (s, m) = e10_batched_threaded(192, 1);
                    metrics.merge(&m);
                    s.updates_per_sec()
                }),
            };
            ok = k1 >= 0.9 * anchor;
            println!(
                "gate re-measure ({transport}, attempt {attempt}): k=1 {k1:.1}/s vs sync {anchor:.1}/s → {}",
                if ok { "pass" } else { "fail" }
            );
        }
        gate_ok &= ok;
    }
    write_bench_protocol(&sim, &threaded, &batch, gate_ok, gate_attempts);
    if !gate_ok {
        eprintln!(
            "E10 FAIL: k=1 pipelined throughput regressed >10% against the pre-batching baseline"
        );
        if std::env::var_os("E10_NO_GATE").is_none() {
            std::process::exit(1);
        }
        eprintln!("(E10_NO_GATE set: recording the regression without failing)");
    }
    metrics
}

/// Writes the repo-root `BENCH_protocol.json` trajectory file: the fixed
/// pre-optimisation baseline plus this run's measurement and the batch
/// axis, so future PRs can regress-check both the deterministic counters
/// and the indicative wall-clock throughput. `gate_ok`/`gate_attempts`
/// record the caller's k=1 regression-gate verdict (see
/// [`e10_throughput`]) in the trajectory document.
fn write_bench_protocol(
    sim: &E10Sample,
    threaded: &E10Sample,
    batch: &[BatchSample],
    gate_ok: bool,
    gate_attempts: u32,
) {
    // The vendored serde_json is a minimal encoder (no Value/json! macro),
    // so the trajectory document is formatted by hand.
    let entry = |s: &E10Sample, base_rps: f64, base_vpr: f64| {
        let speedup = if base_rps > 0.0 {
            s.runs_per_sec() / base_rps
        } else {
            0.0
        };
        format!(
            concat!(
                "{{\n",
                "      \"runs\": {},\n",
                "      \"wall_ms\": {:.3},\n",
                "      \"runs_per_sec\": {:.2},\n",
                "      \"sig_verifies_per_run\": {:.3},\n",
                "      \"sig_cache_hits_per_run\": {:.3},\n",
                "      \"canonical_cache_hits_per_run\": {:.3},\n",
                "      \"fanout_serializations_avoided_per_run\": {:.3},\n",
                "      \"baseline\": {{ \"runs_per_sec\": {:.2}, \"sig_verifies_per_run\": {:.3} }},\n",
                "      \"speedup_vs_baseline\": {:.3}\n",
                "    }}"
            ),
            s.runs,
            s.wall.as_secs_f64() * 1e3,
            s.runs_per_sec(),
            s.per_run(s.sig_verifies),
            s.per_run(s.cache_hits),
            s.per_run(s.canonical_hits),
            s.per_run(s.fanout_avoided),
            base_rps,
            base_vpr,
            speedup,
        )
    };
    let pre_batch = |s: &BatchSample| match s.transport {
        "sim" => e10_baseline::PRE_BATCH_SIM_RUNS_PER_SEC,
        _ => e10_baseline::PRE_BATCH_THREADED_RUNS_PER_SEC,
    };
    let batch_entries: Vec<String> = batch
        .iter()
        .map(|s| {
            format!(
                concat!(
                    "    \"{}_k{}\": {{\n",
                    "      \"batch_max\": {},\n",
                    "      \"updates\": {},\n",
                    "      \"wall_ms\": {:.3},\n",
                    "      \"updates_per_sec\": {:.2},\n",
                    "      \"rounds\": {},\n",
                    "      \"rounds_coalesced\": {},\n",
                    "      \"mean_batch_occupancy\": {:.3},\n",
                    "      \"sig_verifies_per_update\": {:.3},\n",
                    "      \"speedup_vs_pre_batch_sync\": {:.3}\n",
                    "    }}"
                ),
                s.transport,
                s.k,
                s.k,
                s.updates,
                s.wall.as_secs_f64() * 1e3,
                s.updates_per_sec(),
                s.rounds,
                s.coalesced,
                s.mean_occupancy(),
                s.verifies_per_update(),
                s.updates_per_sec() / pre_batch(s),
            )
        })
        .collect();
    let body = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e10\",\n",
            "  \"workload\": {{\n",
            "    \"parties\": {},\n",
            "    \"mode\": \"sync update\",\n",
            "    \"chunk_bytes\": {},\n",
            "    \"crypto\": \"ed25519, no TSA\"\n",
            "  }},\n",
            "  \"transports\": {{\n",
            "    \"sim\": {},\n",
            "    \"threaded\": {}\n",
            "  }},\n",
            "  \"batch_axis\": {{\n",
            "{}\n",
            "  }},\n",
            "  \"batch_gate\": {{\n",
            "    \"pre_batch_sync_runs_per_sec\": {{ \"sim\": {:.2}, \"threaded\": {:.2} }},\n",
            "    \"sync_anchor_this_run\": {{ \"sim\": {:.2}, \"threaded\": {:.2} }},\n",
            "    \"measure_attempts\": {},\n",
            "    \"k1_within_10_percent_of_sync\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        E10_N,
        E10_CHUNK,
        entry(
            sim,
            e10_baseline::SIM_RUNS_PER_SEC,
            e10_baseline::SIM_VERIFIES_PER_RUN
        ),
        entry(
            threaded,
            e10_baseline::THREADED_RUNS_PER_SEC,
            e10_baseline::THREADED_VERIFIES_PER_RUN
        ),
        batch_entries.join(",\n"),
        e10_baseline::PRE_BATCH_SIM_RUNS_PER_SEC,
        e10_baseline::PRE_BATCH_THREADED_RUNS_PER_SEC,
        sim.runs_per_sec(),
        threaded.runs_per_sec(),
        gate_attempts,
        gate_ok,
    );
    match std::fs::write("BENCH_protocol.json", body) {
        Ok(()) => println!("\ntrajectory file: BENCH_protocol.json"),
        Err(e) => eprintln!("cannot write BENCH_protocol.json: {e}"),
    }
}

// ---------------------------------------------------------------------
// E-TCP — latency and throughput over real loopback sockets
// ---------------------------------------------------------------------

/// E-TCP — sync-run latency and throughput over `b2b-net::tcp` loopback
/// sockets: the same n=2/n=4 counter workload the other transports run,
/// but with every protocol message crossing a real OS socket (framing,
/// syscalls, kernel loopback scheduling). The frames/bytes columns come
/// from the transport's own counters, so the wire cost per run is exact;
/// the `tcp_*` columns are the same counters as seen by the telemetry
/// registry, which a live Prometheus scrape endpoint serves for the
/// duration of each sweep.
fn etcp_tcp_loopback() -> MetricsSnapshot {
    use b2b_net::ScrapeServer;
    let mut metrics = MetricsSnapshot::default();
    println!("\n## E-TCP — sync-run latency and throughput over TCP loopback sockets\n");
    println!("| n parties | runs | median latency | mean latency | runs/sec | frames on wire | bytes on wire | connects | reconnects | tcp_frames_sent | tcp_bytes_sent |");
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
    for n in [2usize, 4] {
        let telemetry = Telemetry::new();
        let scrape = ScrapeServer::bind(telemetry.metrics().clone()).ok();
        if let Some(s) = &scrape {
            println!();
            println!(
                "live metrics while n={n} runs: curl http://{}/metrics",
                s.addr()
            );
        }
        let mut ring = KeyRing::new();
        let mut keys = Vec::new();
        for i in 0..n {
            let kp = KeyPair::generate_from_seed(1000 + i as u64);
            ring.register(party(i), kp.public_key());
            keys.push(kp);
        }
        let nodes: Vec<Coordinator> = keys
            .into_iter()
            .enumerate()
            .map(|(i, kp)| {
                Coordinator::builder(party(i), kp)
                    .ring(ring.clone())
                    .seed(20 + i as u64)
                    .telemetry(telemetry.clone())
                    .build()
            })
            .collect();
        let net = TcpNet::spawn_loopback_with(nodes, TcpConfig::new().telemetry(telemetry.clone()))
            .expect("bind loopback listeners");
        let oid = ObjectId::new("c");
        net.handle(&party(0)).invoke({
            let oid = oid.clone();
            move |c, _| {
                c.register_object(oid, Box::new(counter_factory)).unwrap();
            }
        });
        for i in 1..n {
            let sponsor = party(i - 1);
            let h = net.handle(&party(i));
            let o = oid.clone();
            h.invoke(move |c, ctx| {
                c.request_connect(o, Box::new(counter_factory), sponsor, ctx)
                    .unwrap();
            });
            let o = oid.clone();
            assert!(
                h.wait_until(Duration::from_secs(30), move |c| c.is_member(&o)),
                "org{i} failed to join over TCP"
            );
        }
        // Sync workload: org0 proposes, waits for its outcome, repeats.
        let h0 = net.handle(&party(0)).clone();
        let one_run = |v: u64| -> Duration {
            // The outcome lands at the proposer a beat before its replica
            // goes idle; wait out that window so the next proposal is
            // never busy-rejected.
            let o = oid.clone();
            h0.wait_until(Duration::from_secs(30), move |c| !c.is_busy(&o));
            let o = oid.clone();
            let t = Instant::now();
            let run = h0.invoke(move |c, ctx| c.propose_overwrite(&o, enc(v), ctx).unwrap());
            assert!(
                h0.wait_until(Duration::from_secs(30), move |c| c
                    .outcome_of(&run)
                    .is_some()),
                "run for value {v} did not complete"
            );
            t.elapsed()
        };
        for v in 1..=3u64 {
            one_run(v); // warm-up: connections established, caches hot
        }
        let runs = 50u64;
        let frames_before = net.stats().sent;
        let bytes_before = net.stats().bytes_sent;
        let mut latencies = Vec::with_capacity(runs as usize);
        let t = Instant::now();
        for v in 0..runs {
            latencies.push(one_run(10 + v));
        }
        let wall = t.elapsed();
        let stats = net.stats();
        latencies.sort_unstable();
        let median = latencies[latencies.len() / 2];
        let mean = wall / runs as u32;
        let snap = telemetry.metrics().snapshot();
        println!(
            "| {n} | {runs} | {median:?} | {mean:?} | {:.1} | {} | {} | {} | {} | {} | {} |",
            runs as f64 / wall.as_secs_f64(),
            stats.sent - frames_before,
            stats.bytes_sent - bytes_before,
            stats.connects,
            stats.reconnects,
            snap.counter(names::TCP_FRAMES_SENT),
            snap.counter(names::TCP_BYTES_SENT),
        );
        metrics.merge(&snap);
        net.shutdown();
        if let Some(s) = scrape {
            s.shutdown();
        }
    }
    metrics
}

/// E-CHK — the schedule explorer as an experiment: mutation kills (one
/// ablated §4.2 check per row — found, shrunk, replayed) and the clean
/// sweep (the unmutated build over the same seeds, expected silent).
/// Returns `(base_seed, metrics)` so the sidecar provenance can name the
/// seed actually used.
fn echk_model_check(args: Vec<String>) -> (u64, MetricsSnapshot) {
    use b2b_check::{explore, kill_matrix, scenarios, CheckConfig};
    use b2b_core::MutationFlags;

    let mut budget = 500u64;
    let mut base_seed = 1u64;
    let mut only: Option<String> = None;
    let mut emit: Option<std::path::PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--budget" => budget = value().parse().expect("--budget takes a number"),
            "--seed" => base_seed = value().parse().expect("--seed takes a number"),
            "--scenario" => only = Some(value()),
            "--emit" => emit = Some(value().into()),
            other => {
                eprintln!(
                    "unknown check flag '{other}' (expected --budget/--seed/--scenario/--emit)"
                );
                std::process::exit(2);
            }
        }
    }
    let wanted = |id: &str| only.as_deref().map(|o| o == id).unwrap_or(true);
    let mut metrics = MetricsSnapshot::default();
    let mut failures = 0u32;

    println!("\n## E-CHK — schedule exploration and mutation kills (budget {budget}, base seed {base_seed})\n");
    println!("| scenario | ablated check | schedules to kill | shrink steps | shrunk events | violation | schedules/s |");
    println!("|---|---|---|---|---|---|---|");
    for (scenario, flags, label) in kill_matrix() {
        if !wanted(scenario.id()) {
            continue;
        }
        let telemetry = Telemetry::default();
        let cfg = CheckConfig {
            base_seed,
            budget,
            mutation: flags,
            telemetry: telemetry.clone(),
        };
        let t = Instant::now();
        let out = explore(scenario, &cfg);
        let wall = t.elapsed();
        let total_runs = out.schedules_run + out.shrink_steps + 1; // +1: final replay
        let rate = total_runs as f64 / wall.as_secs_f64();
        match out.counterexample {
            Some(cx) => {
                let replays = cx.replay().is_ok();
                println!(
                    "| {} | {label} | {} | {} | {} | {} | {rate:.0} |",
                    scenario.id(),
                    out.schedules_run,
                    out.shrink_steps,
                    cx.plan.events.len(),
                    if replays {
                        cx.violations.first().cloned().unwrap_or_default()
                    } else {
                        "REPLAY DIVERGED".into()
                    },
                );
                if !replays {
                    failures += 1;
                }
                if let Some(dir) = &emit {
                    std::fs::create_dir_all(dir).expect("create --emit dir");
                    let path = dir.join(format!("{}.json", scenario.id()));
                    std::fs::write(&path, cx.to_json()).expect("write counterexample");
                    // A Chrome trace-event view of the shrunk schedule's
                    // distributed trace rides along — load it in
                    // chrome://tracing to watch the counterexample unfold.
                    let tpath = dir.join(format!("{}.trace.json", scenario.id()));
                    let traces = b2b_telemetry::assemble(&cx.trace);
                    std::fs::write(&tpath, b2b_telemetry::chrome_trace_json(&traces))
                        .expect("write counterexample trace");
                    println!("  -> wrote {} and {}", path.display(), tpath.display());
                }
            }
            None => {
                println!(
                    "| {} | {label} | NOT FOUND in {budget} | - | - | - | {rate:.0} |",
                    scenario.id()
                );
                failures += 1;
            }
        }
        metrics.merge(&telemetry.metrics().snapshot());
    }

    println!("\n| scenario (unmutated) | schedules | violations | schedules/s |");
    println!("|---|---|---|---|");
    for scenario in scenarios() {
        if !wanted(scenario.id()) {
            continue;
        }
        let telemetry = Telemetry::default();
        let cfg = CheckConfig {
            base_seed,
            budget,
            mutation: MutationFlags::default(),
            telemetry: telemetry.clone(),
        };
        let t = Instant::now();
        let out = explore(scenario, &cfg);
        let rate = out.schedules_run as f64 / t.elapsed().as_secs_f64();
        let found = out.counterexample.is_some() as u32;
        println!(
            "| {} | {} | {found} | {rate:.0} |",
            scenario.id(),
            out.schedules_run
        );
        if found != 0 {
            failures += 1; // a clean-build violation is a middleware bug
        }
        metrics.merge(&telemetry.metrics().snapshot());
    }
    if failures > 0 {
        eprintln!("\nE-CHK FAILED: {failures} row(s) off expectation");
        std::process::exit(1);
    }
    (base_seed, metrics)
}

// ---------------------------------------------------------------------
// E-SHARD — multi-group aggregate throughput on the sharded runtime
// ---------------------------------------------------------------------

/// Base seed recorded in the E-SHARD sidecar provenance header.
const ESHARD_SEED: u64 = 11;
/// Delta payload size for E-SHARD updates (matches E10).
const ESHARD_CHUNK: usize = 16;
/// Members per coordination group.
const ESHARD_PER_GROUP: usize = 2;

/// One measured cell of the E-SHARD sweep.
struct ShardSample {
    groups: usize,
    k: usize,
    updates: u64,
    setup: Duration,
    wall: Duration,
    stalls: u64,
}

impl ShardSample {
    fn updates_per_sec(&self) -> f64 {
        self.updates as f64 / self.wall.as_secs_f64()
    }
}

/// Runs one cell: `groups` two-party groups on a fixed pool, `batch_max
/// = k`, a burst of pipelined updates per group, aggregate wall-clock
/// from first submit to last outcome. Every group shares one key ring,
/// one verify pool and one metrics registry.
fn eshard_cell(
    groups: usize,
    k: usize,
    shards: Option<usize>,
    fabric: b2b_bench::sharded::WorldFabric,
    metrics: &MetricsSnapshot,
) -> (ShardSample, MetricsSnapshot) {
    use b2b_bench::sharded::{ShardedWorld, ShardedWorldOptions};
    // Enough updates per group to exercise coalescing at k=16 without
    // making the 10k cell take minutes at k=1.
    let per_group_updates: u64 = if k > 1 { k as u64 } else { 4 };
    let setup_start = Instant::now();
    let world = ShardedWorld::new(
        ShardedWorldOptions {
            groups,
            per_group: ESHARD_PER_GROUP,
            config: CoordinatorConfig::default().batch_max(k),
            verify_pool: Some(std::sync::Arc::new(
                b2b_crypto::VerifyPool::with_default_parallelism(),
            )),
            shards,
            fabric,
            ..ShardedWorldOptions::default()
        },
        "blob",
        append_blob_factory,
    );
    let setup = setup_start.elapsed();
    let before = world.metrics();
    let t = Instant::now();
    let tickets: Vec<Vec<_>> = (0..groups)
        .map(|g| world.submit_updates(g, per_group_updates, vec![0xEE; ESHARD_CHUNK]))
        .collect();
    let mut installed = 0;
    for (g, tickets) in tickets.iter().enumerate() {
        installed += world.await_tickets(g, tickets, Duration::from_secs(600));
    }
    let wall = t.elapsed();
    let updates = groups as u64 * per_group_updates;
    if installed != updates {
        // Surface a few failure diagnostics before dying.
        let mut shown = 0;
        for (g, tickets) in tickets.iter().enumerate() {
            if shown >= 5 {
                break;
            }
            let watched = tickets.clone();
            let reasons: Vec<String> = world.handle(g, 0).read(move |c| {
                watched
                    .iter()
                    .filter_map(|t| c.outcome_of_ticket(t))
                    .filter(|o| !o.is_installed())
                    .map(|o| format!("{o:?}"))
                    .collect()
            });
            for r in reasons {
                eprintln!("E-SHARD group {g}: {r}");
                shown += 1;
            }
        }
        panic!("E-SHARD: {installed}/{updates} updates installed");
    }
    let after = world.metrics();
    let stalls = after.counter(names::INBOX_FULL_STALLS) - before.counter(names::INBOX_FULL_STALLS);
    world.shutdown();
    let mut merged = metrics.clone();
    merged.merge(&after);
    (
        ShardSample {
            groups,
            k,
            updates,
            setup,
            wall,
            stalls,
        },
        merged,
    )
}

/// Measures the single-group throughput anchor: one group on the same
/// runtime driving the classic one-update-per-signed-round path (k = 1,
/// submit → await each update), over enough sequential rounds for a
/// stable wall-clock.
fn eshard_sync_anchor(
    shards: Option<usize>,
    fabric: b2b_bench::sharded::WorldFabric,
    metrics: &MetricsSnapshot,
) -> (ShardSample, MetricsSnapshot) {
    use b2b_bench::sharded::{ShardedWorld, ShardedWorldOptions};
    const ROUNDS: u64 = 64;
    let setup_start = Instant::now();
    let world = ShardedWorld::new(
        ShardedWorldOptions {
            groups: 1,
            per_group: ESHARD_PER_GROUP,
            config: CoordinatorConfig::default().batch_max(1),
            verify_pool: Some(std::sync::Arc::new(
                b2b_crypto::VerifyPool::with_default_parallelism(),
            )),
            shards,
            fabric,
            ..ShardedWorldOptions::default()
        },
        "blob",
        append_blob_factory,
    );
    let setup = setup_start.elapsed();
    let t = Instant::now();
    for _ in 0..ROUNDS {
        let tickets = world.submit_updates(0, 1, vec![0xEE; ESHARD_CHUNK]);
        assert_eq!(world.await_tickets(0, &tickets, Duration::from_secs(60)), 1);
    }
    let wall = t.elapsed();
    let after = world.metrics();
    world.shutdown();
    let mut merged = metrics.clone();
    merged.merge(&after);
    (
        ShardSample {
            groups: 1,
            k: 1,
            updates: ROUNDS,
            setup,
            wall,
            stalls: after.counter(names::INBOX_FULL_STALLS),
        },
        merged,
    )
}

/// Measures the **threaded single-connection** TCP anchor: one two-party
/// group over the legacy thread-per-connection transport
/// ([`b2b_net::TcpNet`]), one update per signed round, sync. This is the
/// operating point the multiplexed fabric must not regress below: a
/// 1k-group sweep over ONE socket pair has to at least match what a
/// dedicated socket pair delivers to a single group.
fn eshard_threaded_anchor(metrics: &MetricsSnapshot) -> (ShardSample, MetricsSnapshot) {
    const ROUNDS: u64 = 64;
    let telemetry = Telemetry::new();
    let setup_start = Instant::now();
    let mut ring = KeyRing::new();
    let mut keys = Vec::new();
    for i in 0..ESHARD_PER_GROUP {
        let kp = KeyPair::generate_from_seed(1000 + i as u64);
        ring.register(party(i), kp.public_key());
        keys.push(kp);
    }
    let nodes: Vec<Coordinator> = keys
        .into_iter()
        .enumerate()
        .map(|(i, kp)| {
            Coordinator::builder(party(i), kp)
                .ring(ring.clone())
                .config(CoordinatorConfig::default().batch_max(1))
                .seed(10 + i as u64)
                .telemetry(telemetry.clone())
                .build()
        })
        .collect();
    let net = TcpNet::spawn_loopback_with(nodes, TcpConfig::new().telemetry(telemetry.clone()))
        .expect("bind loopback listeners");
    let oid = ObjectId::new("blob");
    net.handle(&party(0)).invoke({
        let oid = oid.clone();
        move |c, _| {
            c.register_object(oid, Box::new(append_blob_factory))
                .unwrap();
        }
    });
    for i in 1..ESHARD_PER_GROUP {
        let sponsor = party(i - 1);
        let h = net.handle(&party(i));
        let o = oid.clone();
        h.invoke(move |c, ctx| {
            c.request_connect(o, Box::new(append_blob_factory), sponsor, ctx)
                .unwrap();
        });
        let o = oid.clone();
        assert!(
            h.wait_until(Duration::from_secs(30), move |c| c.is_member(&o)),
            "org{i} failed to join over TCP"
        );
    }
    let setup = setup_start.elapsed();
    let h0 = net.handle(&party(0)).clone();
    let t = Instant::now();
    for _ in 0..ROUNDS {
        let o = oid.clone();
        let ticket =
            h0.invoke(move |c, ctx| c.submit_update(&o, vec![0xEE; ESHARD_CHUNK], ctx).unwrap());
        let tk = ticket;
        assert!(
            h0.wait_until(Duration::from_secs(60), move |c| c
                .outcome_of_ticket(&tk)
                .is_some()),
            "threaded-TCP anchor round did not complete"
        );
    }
    let wall = t.elapsed();
    let after = telemetry.metrics().snapshot();
    net.shutdown();
    let mut merged = metrics.clone();
    merged.merge(&after);
    (
        ShardSample {
            groups: 1,
            k: 1,
            updates: ROUNDS,
            setup,
            wall,
            stalls: 0,
        },
        merged,
    )
}

/// E-SHARD — aggregate pipelined-update throughput across {16…10k}
/// concurrent coordination groups multiplexed over a fixed worker pool.
/// The anchor is the single-group sync operating point (one update per
/// signed round — what one shared object achieves on its own); the gate
/// requires the 1k-group batched (k = 16) aggregate to clear 5× that
/// anchor, i.e. the runtime must actually compound cross-group
/// pipelining with in-round batching instead of serialising groups.
/// `ESHARD_NO_GATE` records a miss without failing.
///
/// `--fabric tcp` runs the identical sweep with every inter-party frame
/// crossing the multiplexed loopback socket; there the anchor — and the
/// gate — is the **threaded single-connection** transport at 1×: one
/// socket pair carrying 1k groups must not fall below what a dedicated
/// socket pair gives a single group.
fn eshard_sharded_fleet(args: Vec<String>) -> (MetricsSnapshot, b2b_bench::sharded::WorldFabric) {
    use b2b_bench::sharded::WorldFabric;
    let mut max_groups = 10_000usize;
    let mut shards: Option<usize> = None;
    let mut fabric = WorldFabric::Inproc;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-groups" => {
                max_groups = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--max-groups needs a positive integer"));
            }
            "--shards" => {
                shards = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--shards needs a positive integer")),
                );
            }
            "--fabric" => {
                fabric = match it.next().map(String::as_str) {
                    Some("inproc") => WorldFabric::Inproc,
                    Some("tcp") => WorldFabric::Tcp,
                    _ => die("--fabric needs 'inproc' or 'tcp'"),
                };
            }
            other => die(&format!("unknown eshard flag '{other}'")),
        }
    }
    let pool = shards.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    println!(
        "## E-SHARD — multi-group sharded runtime ({pool}-shard pool, {ESHARD_PER_GROUP}-party groups, ed25519, {} fabric)\n",
        fabric.label()
    );
    println!("| groups | k | updates | setup ms | wall ms | agg updates/s | inbox stalls |");
    println!("|-------:|--:|--------:|---------:|--------:|--------------:|-------------:|");
    let mut metrics = MetricsSnapshot::default();
    // The gate anchor: the sharded runtime's own single-group sync point
    // on the in-process fabric, the threaded single-connection transport
    // on TCP (the socket model the multiplexed fabric replaces).
    let (anchor, m) = match fabric {
        WorldFabric::Inproc => eshard_sync_anchor(shards, fabric, &metrics),
        WorldFabric::Tcp => eshard_threaded_anchor(&metrics),
    };
    metrics = m;
    let anchor_label = match fabric {
        WorldFabric::Inproc => "1 (sync anchor)",
        WorldFabric::Tcp => "1 (threaded single-connection anchor)",
    };
    println!(
        "| {anchor_label} | 1 | {} | {:.0} | {:.0} | {:.1} | {} |",
        anchor.updates,
        anchor.setup.as_secs_f64() * 1e3,
        anchor.wall.as_secs_f64() * 1e3,
        anchor.updates_per_sec(),
        anchor.stalls,
    );
    let mut rows: Vec<ShardSample> = Vec::new();
    for &k in &[1usize, 16] {
        for &groups in &[16usize, 256, 1000, 4000, 10_000] {
            if groups > max_groups {
                continue;
            }
            let (row, m) = eshard_cell(groups, k, shards, fabric, &metrics);
            metrics = m;
            println!(
                "| {} | {} | {} | {:.0} | {:.0} | {:.1} | {} |",
                row.groups,
                row.k,
                row.updates,
                row.setup.as_secs_f64() * 1e3,
                row.wall.as_secs_f64() * 1e3,
                row.updates_per_sec(),
                row.stalls,
            );
            rows.push(row);
        }
    }
    // Scaling gate: the 1k-group batched cell vs the fabric's anchor.
    // In-process must compound pipelining with batching (5x); the
    // multiplexed socket must at least match the dedicated-socket
    // operating point it replaces (1x).
    let threshold = match fabric {
        WorldFabric::Inproc => 5.0,
        WorldFabric::Tcp => 1.0,
    };
    let mut gate_ok = true;
    let mut gates = Vec::new();
    if let Some(row) = rows.iter().find(|r| r.groups == 1000 && r.k == 16) {
        let anchor_ups = anchor.updates_per_sec();
        let factor = row.updates_per_sec() / anchor_ups;
        let ok = factor >= threshold;
        gate_ok &= ok;
        println!(
            "\nE-SHARD gate ({}): 1k-group k=16 aggregate {:.1} u/s vs anchor {:.1} u/s — {:.1}x, need {threshold}x ({})",
            fabric.label(),
            row.updates_per_sec(),
            anchor_ups,
            factor,
            if ok { "pass" } else { "FAIL" },
        );
        gates.push((16usize, anchor_ups, row.updates_per_sec(), factor, ok));
    }
    rows.insert(0, anchor);
    write_bench_shard(pool, fabric, threshold, &rows, &gates, gate_ok);
    if !gate_ok {
        eprintln!(
            "E-SHARD FAIL: 1k-group aggregate throughput below {threshold}x the {} anchor",
            fabric.label()
        );
        if std::env::var_os("ESHARD_NO_GATE").is_none() {
            std::process::exit(1);
        }
        eprintln!("(ESHARD_NO_GATE set: recording the miss without failing)");
    }
    (metrics, fabric)
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

// ---------------------------------------------------------------------
// E-SERVE — closed-loop HTTP load against the b2b-server order service
// ---------------------------------------------------------------------

/// Base seed recorded in the E-SERVE sidecar provenance header.
const ESERVE_SEED: u64 = 12;
/// In-flight window per client in the deferred/async modes: how many
/// submitted-but-unresolved tickets one client keeps open. One bulk
/// request carries the whole window; the coordinator drains it as a
/// back-to-back pipeline of `batch_max` rounds. Sync is always 1 (the
/// request blocks for the round).
const ESERVE_WINDOW: usize = 64;

/// One measured mode of the E-SERVE sweep.
struct ServeSample {
    mode: &'static str,
    ops: u64,
    wall: Duration,
    retries_429: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

impl ServeSample {
    fn updates_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64()
    }
    fn per_group(&self, groups: usize) -> f64 {
        self.updates_per_sec() / groups as f64
    }
}

/// Pulls the integer array `"key":[n,n,…]` out of a JSON body.
fn eserve_int_array(body: &str, key: &str) -> Vec<u64> {
    let tag = format!("\"{key}\":[");
    let Some(at) = body.find(&tag) else {
        return Vec::new();
    };
    let rest = &body[at + tag.len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// Runs one mode of the closed-loop sweep: every client thread owns a
/// disjoint slice of the orders (client c drives orders c, c+N, …) and
/// performs `ops` customer line updates against them — one in flight in
/// sync mode, a sliding window of [`ESERVE_WINDOW`] tickets in the
/// deferred/async modes (that is what those modes are *for*: §3.3 hides
/// round latency behind the application's own progress, and the
/// coordinator coalesces the window into batched rounds). Every op must
/// end `installed`; a veto or a lost ticket fails the run. Per-op
/// latency (submit → observed terminal status) is collected as exact
/// microsecond samples for the BENCH percentiles, and mirrored in
/// milliseconds into the mode's `serve_latency_ms_*` histogram of the
/// server's own registry (the 1-2-5 bucket ladder is ms-grained — raw
/// microseconds would all land in the overflow bucket).
fn eserve_run_mode(
    addr: std::net::SocketAddr,
    telemetry: &Telemetry,
    mode: &'static str,
    hist: &'static str,
    clients: usize,
    orders: usize,
    ops: u64,
    salt: u64,
) -> (Duration, u64, Vec<u64>) {
    use b2b_net::HttpClient;
    let t = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|cidx| {
            let telemetry = telemetry.clone();
            std::thread::spawn(move || {
                let mut http = HttpClient::connect(addr).expect("E-SERVE: connect");
                let owned: Vec<usize> = (cidx..orders).step_by(clients).collect();
                assert!(!owned.is_empty(), "more clients than orders");
                let mut retries = 0u64;
                let mut samples: Vec<u64> = Vec::with_capacity(ops as usize);
                // Long-poll a whole window to terminal in one request:
                // the server parks the request on the groups' condvars
                // until every ticket resolves, so draining costs one
                // round-trip per window, not per op.
                let drain = |http: &mut HttpClient, tickets: &[u64]| {
                    let ids = tickets
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    loop {
                        let (status, body) = http
                            .get(&format!("/tickets?ids={ids}&wait_ms=5000"))
                            .expect("E-SERVE: poll");
                        assert_eq!(status, 200, "{body}");
                        if body.matches("\"status\":\"installed\"").count() == tickets.len() {
                            return;
                        }
                        assert!(
                            !body.contains("invalidated") && !body.contains("aborted"),
                            "E-SERVE must be lossless, window ended: {body}"
                        );
                    }
                };
                // All of an order's ops go out back-to-back: in the
                // deferred/async modes a whole window travels in one
                // bulk request and coalesces into batched signed rounds
                // (§3.3 — the round latency hides behind the client's
                // own progress), while sync pays one blocking round per
                // op by definition.
                let per_order = (ops as usize).div_ceil(owned.len());
                for (oidx, &g) in owned.iter().enumerate() {
                    let todo =
                        (ops as usize).min((oidx + 1) * per_order) - oidx * per_order;
                    let mut done = 0usize;
                    while done < todo {
                        if mode == "sync" {
                            let path = format!("/orders/{g}/lines?mode=sync");
                            let body = format!(
                                "{{\"item\":\"c{cidx}i{}\",\"qty\":{}}}",
                                done % 4,
                                salt + done as u64 + 1
                            );
                            let t0 = Instant::now();
                            loop {
                                let (status, rbody) =
                                    http.post(&path, &body).expect("E-SERVE: post");
                                match status {
                                    200 => break,
                                    429 => {
                                        retries += 1;
                                        std::thread::sleep(Duration::from_millis(1));
                                    }
                                    other => {
                                        panic!("E-SERVE: unexpected status {other}: {rbody}")
                                    }
                                }
                            }
                            let us = (t0.elapsed().as_micros() as u64).max(1);
                            samples.push(us);
                            telemetry.observe_ms(hist, (us / 1000).max(1));
                            done += 1;
                            continue;
                        }
                        let n = (todo - done).min(ESERVE_WINDOW);
                        let elems: Vec<String> = (0..n)
                            .map(|i| {
                                format!(
                                    "{{\"op\":\"line\",\"item\":\"c{cidx}i{}\",\"qty\":{}}}",
                                    (done + i) % 4,
                                    salt + (done + i) as u64 + 1
                                )
                            })
                            .collect();
                        let body = format!("{{\"ops\":[{}]}}", elems.join(","));
                        let path = format!("/orders/{g}/bulk?mode={mode}");
                        let t0 = Instant::now();
                        let tickets = loop {
                            let (status, rbody) = http.post(&path, &body).expect("E-SERVE: post");
                            match status {
                                202 => break eserve_int_array(&rbody, "tickets"),
                                429 => {
                                    retries += 1;
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                other => panic!("E-SERVE: unexpected status {other}: {rbody}"),
                            }
                        };
                        assert!(!tickets.is_empty(), "202 with no tickets");
                        // A partially accepted batch (backpressure) just
                        // shrinks this window; the remainder goes out in
                        // the next one.
                        drain(&mut http, &tickets);
                        let us = (t0.elapsed().as_micros() as u64).max(1);
                        for _ in &tickets {
                            samples.push(us);
                            telemetry.observe_ms(hist, (us / 1000).max(1));
                        }
                        done += tickets.len();
                    }
                }
                (retries, samples)
            })
        })
        .collect();
    let mut retries = 0u64;
    let mut samples: Vec<u64> = Vec::new();
    for h in handles {
        let (r, s) = h.join().expect("E-SERVE client thread");
        retries += r;
        samples.extend(s);
    }
    (t.elapsed(), retries, samples)
}

/// Nearest-rank percentile over exact samples; `samples` is sorted by
/// the caller.
fn eserve_pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// E-SERVE — the order service under closed-loop HTTP load: N client
/// threads × M orders × the three §3.3 modes. Every order is one
/// coordination group on the sharded runtime; every op is a signed
/// two-party round reached through `POST /orders/:id/lines`. The sweep
/// must be lossless (every op installs, replicas converge, the evidence
/// audit stays clean) and the gate requires the best mode to sustain at
/// least 1× the E-SHARD **tcp** per-group update rate at the same group
/// count — the HTTP face on the in-process fabric must not fall below
/// what the raw sharded runtime delivers per group across a socket. A
/// miss is re-measured once; `ESERVE_NO_GATE` records it without
/// failing.
fn eserve_http_service(args: Vec<String>) -> MetricsSnapshot {
    use b2b_net::HttpClient;
    use b2b_server::{OrderServer, OrderServerOptions};
    let mut clients = 64usize;
    let mut orders = 256usize;
    let mut ops: u64 = 256;
    let mut shards: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--clients" => {
                clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--clients needs a positive integer"));
            }
            "--orders" => {
                orders = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--orders needs a positive integer"));
            }
            "--ops" => {
                ops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--ops needs a positive integer"));
            }
            "--shards" => {
                shards = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--shards needs a positive integer")),
                );
            }
            other => die(&format!("unknown eserve flag '{other}'")),
        }
    }
    assert!(clients <= orders, "each client needs at least one order");

    println!(
        "## E-SERVE — HTTP/JSON order service under closed-loop load \
         ({clients} clients, {orders} orders, 2-party, ed25519)\n"
    );
    let telemetry = Telemetry::new();
    let setup_start = Instant::now();
    let server = OrderServer::start(OrderServerOptions {
        orders,
        parties: 2,
        shards,
        // Batch a whole client window into one signed round: the bulk
        // endpoint enqueues the window before dispatching, so no linger
        // is needed (and sync ops stay un-lingered).
        config: CoordinatorConfig::default().batch_max(ESERVE_WINDOW),
        // One worker per load connection plus headroom for the
        // provisioning/scrape connection — a keep-alive connection pins
        // its worker for its whole lifetime.
        http_workers: clients + 8,
        telemetry: telemetry.clone(),
        verify_pool: Some(std::sync::Arc::new(
            b2b_crypto::VerifyPool::with_default_parallelism(),
        )),
        sync_timeout: Duration::from_secs(60),
        ..OrderServerOptions::default()
    })
    .expect("E-SERVE: server boots");
    let addr = server.addr();
    let mut http = HttpClient::connect(addr).expect("E-SERVE: connect");
    for _ in 0..orders {
        let (status, body) = http.post("/orders", "").expect("E-SERVE: create order");
        assert_eq!(status, 201, "{body}");
    }
    let setup = setup_start.elapsed();
    println!(
        "setup: {} orders provisioned (group + membership rounds) in {:.0} ms\n",
        orders,
        setup.as_secs_f64() * 1e3
    );

    println!("| mode | ops | wall ms | agg updates/s | per-group u/s | p50 µs | p95 µs | p99 µs | 429 retries |");
    println!("|------|----:|--------:|--------------:|--------------:|-------:|-------:|-------:|------------:|");
    const MODES: [(&str, &str); 3] = [
        ("sync", names::SERVE_LATENCY_MS_SYNC),
        ("deferred", names::SERVE_LATENCY_MS_DEFERRED),
        ("async", names::SERVE_LATENCY_MS_ASYNC),
    ];
    let total_ops = clients as u64 * ops;
    let run_salt = std::sync::atomic::AtomicU64::new(0);
    let run_one = |mode: &'static str, hist: &'static str| -> ServeSample {
        // Distinct quantity range per run: a re-run proposing the exact
        // agreed state would (correctly) draw §4.4 null-transition
        // vetoes.
        let salt = run_salt.fetch_add(1, std::sync::atomic::Ordering::SeqCst) * 1_000_000;
        let (wall, retries_429, mut samples) =
            eserve_run_mode(addr, &telemetry, mode, hist, clients, orders, ops, salt);
        assert!(
            server.wait_converged(Duration::from_secs(120)),
            "E-SERVE {mode}: replicas did not converge"
        );
        samples.sort_unstable();
        let (p50_us, p95_us, p99_us) = (
            eserve_pct(&samples, 50.0),
            eserve_pct(&samples, 95.0),
            eserve_pct(&samples, 99.0),
        );
        ServeSample {
            mode,
            ops: total_ops,
            wall,
            retries_429,
            p50_us,
            p95_us,
            p99_us,
        }
    };
    let mut rows: Vec<ServeSample> = Vec::new();
    for (mode, hist) in MODES {
        let row = run_one(mode, hist);
        println!(
            "| {} | {} | {:.0} | {:.1} | {:.2} | {} | {} | {} | {} |",
            row.mode,
            row.ops,
            row.wall.as_secs_f64() * 1e3,
            row.updates_per_sec(),
            row.per_group(orders),
            row.p50_us,
            row.p95_us,
            row.p99_us,
            row.retries_429,
        );
        rows.push(row);
    }

    // Liveness of the observability face: /metrics answers from the same
    // process and already carries the serve counters. Fresh connection —
    // the provisioning one idled through three mode runs.
    let mut http = HttpClient::connect(addr).expect("E-SERVE: reconnect");
    let (status, body) = http.get("/metrics").expect("E-SERVE: scrape /metrics");
    assert_eq!(status, 200);
    assert!(
        body.contains(names::SERVE_REQUESTS),
        "live /metrics must expose the serve counters"
    );

    // The gate anchor: the raw sharded runtime over the multiplexed TCP
    // fabric at the SAME group count, k = 16 batched — E-SHARD's tcp
    // operating point per group.
    let (anchor, _) = eshard_cell(
        orders,
        16,
        shards,
        b2b_bench::sharded::WorldFabric::Tcp,
        &MetricsSnapshot::default(),
    );
    let anchor_per_group = anchor.updates_per_sec() / orders as f64;
    println!(
        "\nanchor: E-SHARD tcp {orders}-group k=16 — {:.1} u/s aggregate, {:.2} u/s per group",
        anchor.updates_per_sec(),
        anchor_per_group,
    );
    let best = |rows: &[ServeSample]| -> (usize, f64) {
        rows.iter()
            .enumerate()
            .map(|(i, r)| (i, r.per_group(orders)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one mode")
    };
    let (mut best_i, mut best_rate) = best(&rows);
    let mut gate_attempts = 1u32;
    let mut factor = best_rate / anchor_per_group;
    if factor < 1.0 {
        // One re-measure of the best mode before concluding a miss: the
        // first run also paid cache warmup and allocator churn.
        gate_attempts += 1;
        let (mode, hist) = MODES[best_i];
        eprintln!("E-SERVE gate miss ({factor:.2}x) — re-measuring {mode} once");
        let row = run_one(mode, hist);
        println!(
            "| {} (re-measure) | {} | {:.0} | {:.1} | {:.2} | {} | {} | {} | {} |",
            row.mode,
            row.ops,
            row.wall.as_secs_f64() * 1e3,
            row.updates_per_sec(),
            row.per_group(orders),
            row.p50_us,
            row.p95_us,
            row.p99_us,
            row.retries_429,
        );
        rows.push(row);
        let (i, rate) = best(&rows);
        best_i = i;
        best_rate = rate;
        factor = best_rate / anchor_per_group;
    }
    let gate_ok = factor >= 1.0;
    println!(
        "\nE-SERVE gate: best mode '{}' {:.2} u/s per group vs anchor {:.2} — {:.2}x, need 1x ({})",
        rows[best_i].mode,
        best_rate,
        anchor_per_group,
        factor,
        if gate_ok { "pass" } else { "FAIL" },
    );

    // Non-repudiation after the whole sweep: every store audits clean.
    let (clean, records) = server.audit();
    assert!(clean, "E-SERVE: evidence audit must be clean");
    let vetoed = telemetry.metrics().snapshot().counter(names::SERVE_VETOED);
    assert_eq!(vetoed, 0, "E-SERVE must be lossless: {vetoed} ops vetoed");
    let metrics = telemetry.metrics().snapshot();
    server.shutdown();

    write_bench_serve(
        clients, orders, ops, shards, &rows, &anchor, anchor_per_group, factor, gate_attempts,
        gate_ok, records,
    );
    if !gate_ok {
        eprintln!("E-SERVE FAIL: best mode below 1x the E-SHARD tcp per-group rate");
        if std::env::var_os("ESERVE_NO_GATE").is_none() {
            std::process::exit(1);
        }
        eprintln!("(ESERVE_NO_GATE set: recording the miss without failing)");
    }
    metrics
}

/// Writes the repo-root `BENCH_serve.json` trajectory file for the
/// E-SERVE sweep (hand-formatted: the vendored serde_json has no
/// `Value`).
#[allow(clippy::too_many_arguments)]
fn write_bench_serve(
    clients: usize,
    orders: usize,
    ops: u64,
    shards: Option<usize>,
    rows: &[ServeSample],
    anchor: &ShardSample,
    anchor_per_group: f64,
    factor: f64,
    gate_attempts: u32,
    gate_ok: bool,
    evidence_records: usize,
) {
    let mode_entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{ \"mode\": \"{}\", \"ops\": {}, \"wall_ms\": {:.3}, ",
                    "\"updates_per_sec\": {:.2}, \"per_group_updates_per_sec\": {:.3}, ",
                    "\"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"retries_429\": {} }}"
                ),
                r.mode,
                r.ops,
                r.wall.as_secs_f64() * 1e3,
                r.updates_per_sec(),
                r.per_group(orders),
                r.p50_us,
                r.p95_us,
                r.p99_us,
                r.retries_429,
            )
        })
        .collect();
    let body = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"eserve\",\n",
            "  \"commit\": {},\n",
            "  \"fabric\": \"http+inproc\",\n",
            "  \"workload\": {{\n",
            "    \"clients\": {},\n",
            "    \"orders\": {},\n",
            "    \"ops_per_client\": {},\n",
            "    \"parties\": 2,\n",
            "    \"window\": {},\n",
            "    \"shards\": {},\n",
            "    \"crypto\": \"ed25519, shared ring, shared verify pool\"\n",
            "  }},\n",
            "  \"modes\": [\n",
            "{}\n",
            "  ],\n",
            "  \"anchor\": {{\n",
            "    \"source\": \"eshard tcp k=16\",\n",
            "    \"groups\": {},\n",
            "    \"updates_per_sec\": {:.2},\n",
            "    \"per_group_updates_per_sec\": {:.3}\n",
            "  }},\n",
            "  \"gate\": {{ \"threshold\": 1.0, \"factor\": {:.3}, \"attempts\": {}, \"pass\": {} }},\n",
            "  \"lossless\": true,\n",
            "  \"audit_clean\": true,\n",
            "  \"evidence_records\": {}\n",
            "}}\n"
        ),
        json_str(&git_sha()),
        clients,
        orders,
        ops,
        ESERVE_WINDOW,
        shards
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".into()),
        mode_entries.join(",\n"),
        anchor.groups,
        anchor.updates_per_sec(),
        anchor_per_group,
        factor,
        gate_attempts,
        gate_ok,
        evidence_records,
    );
    match std::fs::write("BENCH_serve.json", body) {
        Ok(()) => println!("\ntrajectory file: BENCH_serve.json"),
        Err(e) => eprintln!("cannot write BENCH_serve.json: {e}"),
    }
}

/// Writes the repo-root `BENCH_shard.json` trajectory file for the
/// E-SHARD sweep (hand-formatted: the vendored serde_json has no
/// `Value`).
fn write_bench_shard(
    pool: usize,
    fabric: b2b_bench::sharded::WorldFabric,
    gate_threshold: f64,
    rows: &[ShardSample],
    gates: &[(usize, f64, f64, f64, bool)],
    gate_ok: bool,
) {
    let row_entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{ \"groups\": {}, \"k\": {}, \"updates\": {}, ",
                    "\"setup_ms\": {:.3}, \"wall_ms\": {:.3}, ",
                    "\"updates_per_sec\": {:.2}, \"inbox_full_stalls\": {} }}"
                ),
                r.groups,
                r.k,
                r.updates,
                r.setup.as_secs_f64() * 1e3,
                r.wall.as_secs_f64() * 1e3,
                r.updates_per_sec(),
                r.stalls,
            )
        })
        .collect();
    let gate_entries: Vec<String> = gates
        .iter()
        .map(|(k, anchor, agg, factor, ok)| {
            format!(
                concat!(
                    "    {{ \"k\": {}, \"anchor_updates_per_sec\": {:.2}, ",
                    "\"aggregate_updates_per_sec_at_1k\": {:.2}, ",
                    "\"scaling_factor\": {:.3}, \"pass\": {} }}"
                ),
                k, anchor, agg, factor, ok,
            )
        })
        .collect();
    let body = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"eshard\",\n",
            "  \"commit\": {},\n",
            "  \"fabric\": {},\n",
            "  \"gate_threshold\": {},\n",
            "  \"workload\": {{\n",
            "    \"per_group\": {},\n",
            "    \"chunk_bytes\": {},\n",
            "    \"shards\": {},\n",
            "    \"crypto\": \"ed25519, shared ring, shared verify pool\"\n",
            "  }},\n",
            "  \"sweep\": [\n",
            "{}\n",
            "  ],\n",
            "  \"scaling_gate_at_1k_groups\": [\n",
            "{}\n",
            "  ],\n",
            "  \"gate_ok\": {}\n",
            "}}\n"
        ),
        json_str(&git_sha()),
        json_str(fabric.label()),
        gate_threshold,
        ESHARD_PER_GROUP,
        ESHARD_CHUNK,
        pool,
        row_entries.join(",\n"),
        gate_entries.join(",\n"),
        gate_ok,
    );
    match std::fs::write("BENCH_shard.json", body) {
        Ok(()) => println!("\ntrajectory file: BENCH_shard.json"),
        Err(e) => eprintln!("cannot write BENCH_shard.json: {e}"),
    }
}
