//! Multi-group world over the sharded runtime.
//!
//! [`ShardedWorld`] stands up `groups` independent coordination groups in
//! one process on a fixed worker pool ([`b2b_net::ShardedNet`]), every
//! group running the full signed protocol stack. It is the harness behind
//! `exp -- eshard`: the fleet shares ONE key ring (`Arc`), ONE optional
//! [`b2b_crypto::VerifyPool`] (signature verification parallelises
//! *across* groups) and ONE metrics registry, so the per-group cost is
//! the engine state itself.
//!
//! Group members reuse the canonical party names `org0..org{n-1}` in
//! every group — groups are fully isolated by the runtime's group
//! envelope, so the same identity (and the same key) can serve in
//! thousands of groups, exactly like one organisation participating in
//! thousands of shared objects.

use crate::party;
use b2b_core::{B2BObject, Coordinator, CoordinatorConfig, ObjectId, TicketId};
use b2b_crypto::{KeyPair, KeyRing, Signer, VerifyPool};
use b2b_net::{GroupHandle, GroupId, NetStats, ShardedNet, ShardedTcpConfig, ShardedTcpNet};
use b2b_telemetry::{MetricsSnapshot, Telemetry};
use std::sync::Arc;
use std::time::Duration;

/// Socket fabric carrying inter-party frames of a [`ShardedWorld`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WorldFabric {
    /// In-process delivery between slots (no sockets).
    #[default]
    Inproc,
    /// One multiplexed loopback TCP socket pair per party pair — every
    /// group's frames cross a real socket, demuxed by group envelope.
    Tcp,
}

impl WorldFabric {
    /// The sidecar/trajectory label of this fabric.
    pub fn label(self) -> &'static str {
        match self {
            WorldFabric::Inproc => "inproc",
            WorldFabric::Tcp => "tcp",
        }
    }
}

/// Construction knobs for a [`ShardedWorld`].
pub struct ShardedWorldOptions {
    /// Number of coordination groups.
    pub groups: usize,
    /// Members per group.
    pub per_group: usize,
    /// Per-coordinator configuration (batching etc.).
    pub config: CoordinatorConfig,
    /// Fleet-wide telemetry handle.
    pub telemetry: Telemetry,
    /// Shared signature-verification pool, if any.
    pub verify_pool: Option<Arc<VerifyPool>>,
    /// Worker-pool size; `None` = one shard per available CPU.
    pub shards: Option<usize>,
    /// Socket fabric between parties.
    pub fabric: WorldFabric,
}

impl Default for ShardedWorldOptions {
    fn default() -> ShardedWorldOptions {
        ShardedWorldOptions {
            groups: 1,
            per_group: 2,
            config: CoordinatorConfig::default(),
            telemetry: Telemetry::new(),
            verify_pool: None,
            shards: None,
            fabric: WorldFabric::Inproc,
        }
    }
}

/// A running multi-group fleet: `groups` × `per_group` coordinators on a
/// fixed worker pool, all sharing one object alias.
pub struct ShardedWorld {
    net: Net,
    /// Fleet-wide observability handle.
    pub telemetry: Telemetry,
    groups: usize,
    per_group: usize,
    object: ObjectId,
}

/// The runtime behind a [`ShardedWorld`], by fabric.
enum Net {
    Inproc(ShardedNet<Coordinator>),
    Tcp(ShardedTcpNet<Coordinator>),
}

impl Net {
    fn handle(&self, gid: GroupId, party: &b2b_crypto::PartyId) -> GroupHandle<Coordinator> {
        match self {
            Net::Inproc(net) => net.handle(gid, party),
            Net::Tcp(net) => net.handle(gid, party),
        }
    }

    fn stats(&self) -> NetStats {
        match self {
            Net::Inproc(net) => net.stats(),
            Net::Tcp(net) => net.stats(),
        }
    }

    fn shutdown(self) {
        match self {
            Net::Inproc(net) => net.shutdown(),
            Net::Tcp(net) => net.shutdown(),
        }
    }
}

impl ShardedWorld {
    /// Builds the fleet, registers `alias` at every group's `org0` and
    /// joins the remaining members (sponsored chain), pipelining the
    /// membership rounds across all groups.
    ///
    /// # Panics
    ///
    /// Panics if a member fails to join within the setup budget.
    pub fn new<F>(opts: ShardedWorldOptions, alias: &str, factory: F) -> ShardedWorld
    where
        F: Fn() -> Box<dyn B2BObject> + Clone + Send + 'static,
    {
        assert!(opts.groups > 0 && opts.per_group >= 2);
        // One ring for the whole fleet: member i's key is the same in
        // every group (seeds match the Fleet harness).
        let mut ring = KeyRing::new();
        let mut keys = Vec::new();
        for i in 0..opts.per_group {
            let kp = KeyPair::generate_from_seed(1000 + i as u64);
            ring.register(party(i), kp.public_key());
            keys.push(kp);
        }
        let ring = Arc::new(ring);
        let mut group_nodes: Vec<(GroupId, Vec<Coordinator>)> = Vec::with_capacity(opts.groups);
        for g in 0..opts.groups {
            let nodes = (0..opts.per_group)
                .map(|i| {
                    let mut b = Coordinator::builder(party(i), keys[i].clone())
                        .shared_ring(Arc::clone(&ring))
                        .config(opts.config.clone())
                        .seed(10 + (g * opts.per_group + i) as u64)
                        .telemetry(opts.telemetry.clone());
                    if let Some(pool) = &opts.verify_pool {
                        b = b.verify_pool(Arc::clone(pool));
                    }
                    b.build()
                })
                .collect();
            group_nodes.push((GroupId(g as u64), nodes));
        }
        let net = match opts.fabric {
            WorldFabric::Inproc => {
                let mut builder = ShardedNet::builder().telemetry(opts.telemetry.clone());
                if let Some(shards) = opts.shards {
                    builder = builder.shards(shards);
                }
                for (gid, nodes) in group_nodes {
                    builder = builder.add_group(gid, nodes);
                }
                Net::Inproc(builder.spawn().expect("spawn worker pool"))
            }
            WorldFabric::Tcp => {
                let mut cfg = ShardedTcpConfig::new().telemetry(opts.telemetry.clone());
                if let Some(shards) = opts.shards {
                    cfg = cfg.shards(shards);
                }
                Net::Tcp(
                    ShardedTcpNet::spawn_loopback_with(group_nodes, cfg)
                        .expect("spawn TCP worker pool"),
                )
            }
        };
        let world = ShardedWorld {
            net,
            telemetry: opts.telemetry,
            groups: opts.groups,
            per_group: opts.per_group,
            object: ObjectId::new(alias.to_string()),
        };
        world.setup(factory);
        world
    }

    fn setup<F>(&self, factory: F)
    where
        F: Fn() -> Box<dyn B2BObject> + Clone + Send + 'static,
    {
        // Register the object at every group's org0 (local, no rounds).
        for g in 0..self.groups {
            let f = factory.clone();
            let oid = self.object.clone();
            self.handle(g, 0).invoke(move |c, _| {
                c.register_object(oid, Box::new(f)).unwrap();
            });
        }
        // Join member j in ALL groups, then wait for all — the membership
        // rounds of different groups run concurrently across the shards,
        // so a 10k-group setup costs per_group round-trips, not
        // 10k × per_group.
        for j in 1..self.per_group {
            for g in 0..self.groups {
                let f = factory.clone();
                let oid = self.object.clone();
                let sponsor = party(j - 1);
                self.handle(g, j).invoke(move |c, ctx| {
                    c.request_connect(oid, Box::new(f), sponsor, ctx).unwrap();
                });
            }
            for g in 0..self.groups {
                let oid = self.object.clone();
                assert!(
                    self.handle(g, j)
                        .wait_until(Duration::from_secs(120), move |c| c.is_member(&oid)),
                    "org{j} of group {g} failed to join"
                );
            }
        }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Handle for member `i` of group `g`.
    pub fn handle(&self, g: usize, i: usize) -> GroupHandle<Coordinator> {
        self.net.handle(GroupId(g as u64), &party(i))
    }

    /// Submits `n` update deltas at group `g`'s org0, returning their
    /// tickets (the pipelined `submit_update` path — updates coalesce
    /// into batched rounds up to the config's `batch_max`).
    pub fn submit_updates(&self, g: usize, n: u64, chunk: Vec<u8>) -> Vec<TicketId> {
        let oid = self.object.clone();
        self.handle(g, 0).invoke(move |c, ctx| {
            (0..n)
                .map(|_| c.submit_update(&oid, chunk.clone(), ctx).unwrap())
                .collect()
        })
    }

    /// Blocks until every ticket of group `g` has an outcome; returns the
    /// number that installed.
    pub fn await_tickets(&self, g: usize, tickets: &[TicketId], timeout: Duration) -> u64 {
        let h = self.handle(g, 0);
        let watched = tickets.to_vec();
        assert!(
            h.wait_until(timeout, move |c| watched
                .iter()
                .all(|t| c.outcome_of_ticket(t).is_some())),
            "group {g}: pipelined updates did not all complete"
        );
        let tickets = tickets.to_vec();
        h.read(move |c| {
            tickets
                .iter()
                .filter(|t| c.outcome_of_ticket(t).is_some_and(|o| o.is_installed()))
                .count() as u64
        })
    }

    /// A point-in-time snapshot of the fleet-wide metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.telemetry.metrics().snapshot()
    }

    /// Runtime traffic statistics.
    pub fn stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Stops the worker pool.
    pub fn shutdown(self) {
        self.net.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::append_blob_factory;

    #[test]
    fn many_groups_share_one_pool_and_all_install() {
        let world = ShardedWorld::new(
            ShardedWorldOptions {
                groups: 8,
                shards: Some(2),
                config: CoordinatorConfig::default().batch_max(4),
                verify_pool: Some(Arc::new(VerifyPool::with_default_parallelism())),
                ..ShardedWorldOptions::default()
            },
            "blob",
            append_blob_factory,
        );
        let tickets: Vec<_> = (0..8)
            .map(|g| world.submit_updates(g, 4, vec![0xAB; 64]))
            .collect();
        for (g, tickets) in tickets.iter().enumerate() {
            assert_eq!(
                world.await_tickets(g, tickets, Duration::from_secs(60)),
                4,
                "group {g}"
            );
        }
        // One signed round per batch, counted fleet-wide.
        let snap = world.metrics();
        assert!(snap.counter(b2b_telemetry::names::ROUNDS_COMMITTED) >= 8);
        world.shutdown();
    }
}
