#![warn(missing_docs)]

//! Benchmark harness for the B2BObjects reproduction.
//!
//! The DSN 2002 paper's evaluation is qualitative, so the quantitative
//! experiments here measure the paper's *prose* claims (message
//! complexity, 3-step latency, liveness under bounded failures, the cost
//! of the non-repudiation machinery) plus the design-choice ablations
//! called out in `DESIGN.md`. Every experiment in `EXPERIMENTS.md` is
//! regenerated either by a Criterion bench in `benches/` or by the
//! `exp` binary (`cargo run -p b2b-bench --bin exp -- <e1..e9|all>`).

pub mod sharded;

use b2b_core::{
    B2BObject, Coordinator, CoordinatorConfig, Decision, ObjectId, Outcome, RunId, SharedCell,
};
use b2b_crypto::{InsecureSigner, KeyPair, KeyRing, PartyId, Signer, TimeMs, TimeStampAuthority};
use b2b_evidence::MemStore;
use b2b_net::{FaultPlan, SimNet};
use b2b_telemetry::{MetricsSnapshot, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Virtual-time budget for driving a workload to quiescence.
pub const QUIET: TimeMs = TimeMs(60_000_000);

/// Which signature scheme the fleet uses (crypto ablation, E4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Crypto {
    /// Production Ed25519 signatures.
    Ed25519,
    /// Forgeable truncated-hash signatures — isolates signing cost.
    Insecure,
}

/// Adds a non-member TTP node named "notary" to serve §7 termination
/// appeals; returns its id. Call before any traffic.
pub fn add_notary(fleet: &mut Fleet, seed: u64) -> PartyId {
    let notary = PartyId::new("notary");
    let kp = KeyPair::generate_from_seed(7777);
    fleet.ring.register(notary.clone(), kp.public_key());
    // Members must know the notary's key: rebuild their rings is not
    // possible post-hoc, so fleets that need a notary register it in the
    // shared ring up front via `with_notary`.
    fleet.net.add_node(
        Coordinator::builder(notary.clone(), kp)
            .ring(fleet.ring.clone())
            .seed(seed)
            .telemetry(fleet.telemetry.clone())
            .build(),
    );
    notary
}

/// A simulated fleet of coordinators for experiments.
pub struct Fleet {
    /// The simulated network.
    pub net: SimNet<Coordinator>,
    /// Party ids, in index order.
    pub parties: Vec<PartyId>,
    /// Each party's in-memory store.
    pub stores: HashMap<PartyId, Arc<MemStore>>,
    /// The shared key ring.
    pub ring: KeyRing,
    /// Fleet-wide observability handle, shared by every coordinator and
    /// the simulated network; its registry accumulates metrics for the
    /// whole experiment.
    pub telemetry: Telemetry,
}

/// Returns the canonical party id for index `i`.
pub fn party(i: usize) -> PartyId {
    PartyId::new(format!("org{i}"))
}

/// Serialises a `u64` as coordination state.
pub fn enc(v: u64) -> Vec<u8> {
    serde_json::to_vec(&v).unwrap()
}

/// A grow-only counter object (the standard experiment workload).
pub fn counter_factory() -> Box<dyn B2BObject> {
    Box::new(SharedCell::new(0u64).with_validator(|_w, old, new| {
        if new >= old {
            Decision::accept()
        } else {
            Decision::reject("decrease")
        }
    }))
}

/// An accept-anything blob object for payload-size sweeps.
pub fn blob_factory() -> Box<dyn B2BObject> {
    Box::new(SharedCell::new(Vec::<u8>::new()))
}

/// A blob with genuine §4.3.1 *update* semantics: the coordinated state is
/// a byte vector and an update is a chunk appended to it — so update runs
/// ship only the delta while overwrite runs ship the whole state.
pub struct AppendBlob {
    data: Vec<u8>,
}

impl AppendBlob {
    /// An empty blob.
    pub fn new() -> AppendBlob {
        AppendBlob { data: Vec::new() }
    }
}

impl Default for AppendBlob {
    fn default() -> Self {
        AppendBlob::new()
    }
}

impl B2BObject for AppendBlob {
    fn get_state(&self) -> Vec<u8> {
        self.data.clone()
    }
    fn apply_state(&mut self, state: &[u8]) {
        self.data = state.to_vec();
    }
    fn validate_state(&self, _w: &PartyId, _c: &[u8], _p: &[u8]) -> Decision {
        Decision::accept()
    }
    fn apply_update(&self, current: &[u8], update: &[u8]) -> Result<Vec<u8>, String> {
        let mut next = current.to_vec();
        next.extend_from_slice(update);
        Ok(next)
    }
}

/// Factory for [`AppendBlob`].
pub fn append_blob_factory() -> Box<dyn B2BObject> {
    Box::new(AppendBlob::new())
}

impl Fleet {
    /// Builds `n` coordinators on a perfect 1 ms network.
    pub fn new(n: usize, seed: u64) -> Fleet {
        Fleet::with_options(
            n,
            seed,
            CoordinatorConfig::default(),
            FaultPlan::default(),
            Crypto::Ed25519,
            true,
        )
    }

    /// Full-control constructor (fresh sink-less telemetry).
    pub fn with_options(
        n: usize,
        seed: u64,
        config: CoordinatorConfig,
        plan: FaultPlan,
        crypto: Crypto,
        with_tsa: bool,
    ) -> Fleet {
        Fleet::with_telemetry(n, seed, config, plan, crypto, with_tsa, Telemetry::new())
    }

    /// [`Fleet::with_options`] with a caller-supplied telemetry handle —
    /// attach a trace sink before construction to flight-record the whole
    /// fleet (`exp -- trace` does exactly this).
    #[allow(clippy::too_many_arguments)]
    pub fn with_telemetry(
        n: usize,
        seed: u64,
        config: CoordinatorConfig,
        plan: FaultPlan,
        crypto: Crypto,
        with_tsa: bool,
        telemetry: Telemetry,
    ) -> Fleet {
        let mut ring = KeyRing::new();
        if config.ttp == Some(PartyId::new("notary")) {
            // Pre-register the notary key so members can verify its
            // resolutions; the node itself is added by `add_notary`.
            ring.register(
                PartyId::new("notary"),
                KeyPair::generate_from_seed(7777).public_key(),
            );
        }
        let mut signers: Vec<Box<dyn Fn() -> Box<dyn Signer> + Send>> = Vec::new();
        for i in 0..n {
            match crypto {
                Crypto::Ed25519 => {
                    let kp = KeyPair::generate_from_seed(1000 + i as u64);
                    ring.register(party(i), kp.public_key());
                    signers.push(Box::new(move || Box::new(kp.clone())));
                }
                Crypto::Insecure => {
                    let s = InsecureSigner::from_seed(1000 + i as u64);
                    ring.register(party(i), s.public_key());
                    signers.push(Box::new(move || Box::new(s.clone())));
                }
            }
        }
        let tsa = with_tsa.then(|| match crypto {
            Crypto::Ed25519 => TimeStampAuthority::new(KeyPair::generate_from_seed(9999)),
            Crypto::Insecure => TimeStampAuthority::new(InsecureSigner::from_seed(9999)),
        });
        let mut net = SimNet::new(seed);
        net.set_default_plan(plan);
        net.set_telemetry(telemetry.clone());
        let mut stores = HashMap::new();
        for (i, make_signer) in signers.into_iter().enumerate() {
            let store = Arc::new(MemStore::new());
            stores.insert(party(i), store.clone());
            let mut builder = Coordinator::builder(party(i), make_signer())
                .ring(ring.clone())
                .config(config.clone())
                .store(store)
                .seed(seed.wrapping_add(i as u64))
                .telemetry(telemetry.clone());
            if let Some(tsa) = &tsa {
                builder = builder.tsa(tsa.clone());
            }
            net.add_node(builder.build());
        }
        Fleet {
            net,
            parties: (0..n).map(party).collect(),
            stores,
            ring,
            telemetry,
        }
    }

    /// Registers `alias` at org0 and joins the rest sequentially.
    pub fn setup_object<F>(&mut self, alias: &str, factory: F)
    where
        F: Fn() -> Box<dyn B2BObject> + Clone + Send + 'static,
    {
        let f0 = factory.clone();
        let a = alias.to_string();
        self.net.invoke(&party(0), move |c, _| {
            c.register_object(ObjectId::new(a), Box::new(f0)).unwrap();
        });
        for i in 1..self.parties.len() {
            let fi = factory.clone();
            let sponsor = party(i - 1);
            let a = alias.to_string();
            self.net.invoke(&party(i), move |c, ctx| {
                c.request_connect(ObjectId::new(a), Box::new(fi), sponsor, ctx)
                    .unwrap();
            });
            self.run();
        }
    }

    /// Drives the network to quiescence.
    pub fn run(&mut self) {
        self.net.run_until_quiet(QUIET);
    }

    /// Proposes an overwrite from `who` and drives to quiescence.
    pub fn propose(&mut self, who: usize, alias: &str, state: Vec<u8>) -> RunId {
        let oid = ObjectId::new(alias.to_string());
        let run = self.net.invoke(&party(who), move |c, ctx| {
            c.propose_overwrite(&oid, state, ctx).unwrap()
        });
        self.run();
        run
    }

    /// Proposes an update delta from `who` and drives to quiescence.
    pub fn propose_update(&mut self, who: usize, alias: &str, update: Vec<u8>) -> RunId {
        let oid = ObjectId::new(alias.to_string());
        let run = self.net.invoke(&party(who), move |c, ctx| {
            c.propose_update(&oid, update, ctx).unwrap()
        });
        self.run();
        run
    }

    /// The outcome of `run` at `who`.
    pub fn outcome(&self, who: usize, run: &RunId) -> Option<Outcome> {
        self.net.node(&party(who)).outcome_of(run).cloned()
    }

    /// Sum of protocol-level messages across parties.
    pub fn total_protocol_messages(&self) -> u64 {
        self.parties
            .iter()
            .map(|p| self.net.node(p).messages_sent())
            .sum()
    }

    /// A point-in-time snapshot of the fleet-wide metrics registry.
    ///
    /// Every coordinator shares the fleet's [`Telemetry`] handle, so this
    /// already aggregates across parties; use
    /// [`MetricsSnapshot::merge`] to combine several fleets.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.telemetry.metrics().snapshot()
    }
}

/// Formats a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_runs_a_basic_workload() {
        let mut fleet = Fleet::new(3, 1);
        fleet.setup_object("c", counter_factory);
        let run = fleet.propose(0, "c", enc(5));
        assert!(fleet.outcome(0, &run).unwrap().is_installed());
    }

    #[test]
    fn insecure_crypto_fleet_also_works() {
        let mut fleet = Fleet::with_options(
            2,
            2,
            CoordinatorConfig::default(),
            FaultPlan::default(),
            Crypto::Insecure,
            false,
        );
        fleet.setup_object("c", counter_factory);
        let run = fleet.propose(1, "c", enc(9));
        assert!(fleet.outcome(0, &run).unwrap().is_installed());
    }
}
