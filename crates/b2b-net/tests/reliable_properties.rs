//! Randomized tests of the reliable-delivery layer: *eventual, once-only
//! delivery* (paper §4.2) must hold for arbitrary message batches under
//! arbitrary loss/duplication/jitter schedules, and across crash-recovery
//! epochs.
//!
//! These were property-based (proptest) tests; the offline build vendors no
//! proptest, so each property runs as a seeded deterministic loop instead.

use b2b_crypto::{PartyId, TimeMs};
use b2b_net::reliable::Inbound;
use b2b_net::{FaultPlan, NetNode, NodeCtx, ReliableMux, SimNet};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: u64 = 24;

fn bytes(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(min_len..=max_len);
    (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect()
}

fn batch(rng: &mut StdRng, max_items: usize, max_len: usize) -> Vec<Vec<u8>> {
    let n = rng.gen_range(0..=max_items);
    (0..n).map(|_| bytes(rng, 0, max_len)).collect()
}

/// A node that reliably sends a fixed batch on start and records every
/// payload delivered up the stack.
struct Endpoint {
    id: PartyId,
    peer: PartyId,
    mux: ReliableMux,
    to_send: Vec<Vec<u8>>,
    delivered: Vec<Vec<u8>>,
}

impl NetNode for Endpoint {
    fn id(&self) -> PartyId {
        self.id.clone()
    }
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        for m in std::mem::take(&mut self.to_send) {
            let peer = self.peer.clone();
            self.mux.send(peer, m, ctx);
        }
    }
    fn on_message(&mut self, from: &PartyId, payload: &[u8], ctx: &mut NodeCtx) {
        if let Inbound::Deliver(m, _) = self.mux.on_message(from, payload, ctx) {
            self.delivered.push(m);
        }
    }
    fn on_timer(&mut self, timer: u64, ctx: &mut NodeCtx) {
        self.mux.on_timer(timer, ctx);
    }
}

/// Every payload is delivered exactly once, whatever the fault plan.
#[test]
fn once_only_delivery_under_arbitrary_faults() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2E11AB1E ^ case);
        let seed = rng.gen_range(0..10_000u64);
        let drop_rate = rng.gen_range(0..600u64) as f64 / 1000.0;
        let dup_rate = rng.gen_range(0..500u64) as f64 / 1000.0;
        let max_delay = rng.gen_range(1..60u64);
        let batch_a = batch(&mut rng, 14, 32);
        let batch_b = batch(&mut rng, 14, 32);

        let mut net: SimNet<Endpoint> = SimNet::new(seed);
        net.set_default_plan(
            FaultPlan::new()
                .drop_rate(drop_rate)
                .dup_rate(dup_rate)
                .delay(TimeMs(1), TimeMs(max_delay)),
        );
        net.add_node(Endpoint {
            id: PartyId::new("a"),
            peer: PartyId::new("b"),
            mux: ReliableMux::new(TimeMs(80), 1),
            to_send: batch_a.clone(),
            delivered: vec![],
        });
        net.add_node(Endpoint {
            id: PartyId::new("b"),
            peer: PartyId::new("a"),
            mux: ReliableMux::new(TimeMs(80), 2),
            to_send: batch_b.clone(),
            delivered: vec![],
        });
        net.run_until_quiet(TimeMs(600_000));

        let mut got_b = net.node(&PartyId::new("b")).delivered.clone();
        let mut want_b = batch_a;
        got_b.sort();
        want_b.sort();
        assert_eq!(got_b, want_b, "b receives a's batch exactly once");

        let mut got_a = net.node(&PartyId::new("a")).delivered.clone();
        let mut want_a = batch_b;
        got_a.sort();
        want_a.sort();
        assert_eq!(got_a, want_a, "a receives b's batch exactly once");
        assert!(net.node(&PartyId::new("a")).mux.all_acked());
        assert!(net.node(&PartyId::new("b")).mux.all_acked());
    }
}

/// A receiver crash (losing dedup state) never manufactures duplicate
/// *new-epoch* deliveries: payloads sent after the receiver's recovery
/// under a fresh sender epoch arrive exactly once.
#[test]
fn fresh_epochs_deliver_exactly_once_after_dedup_loss() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE90C ^ case);
        let seed = rng.gen_range(0..10_000u64);
        let n = rng.gen_range(1..10usize);
        let payloads: Vec<Vec<u8>> = (0..n).map(|_| bytes(&mut rng, 1, 16)).collect();

        // Model: two muxes; receiver state reset mid-stream; sender
        // restarts with a new epoch (as the coordinator does on recovery).
        let from = PartyId::new("tx");
        let mut rx = ReliableMux::new(TimeMs(10), 0);
        let mut delivered = Vec::new();

        // Pre-crash epoch delivers some traffic.
        let mut tx1 = ReliableMux::new(TimeMs(10), seed.wrapping_add(1));
        for p in &payloads {
            let mut ctx = NodeCtx::new(TimeMs(0));
            tx1.send(PartyId::new("rx"), p.clone(), &mut ctx);
            for (_, frame) in ctx.take_outgoing() {
                let mut rctx = NodeCtx::new(TimeMs(1));
                if let Inbound::Deliver(m, _) = rx.on_message(&from, &frame, &mut rctx) {
                    delivered.push(m);
                }
            }
        }
        // Receiver crashes: dedup state lost.
        rx = ReliableMux::new(TimeMs(10), 99);
        let mut post = Vec::new();
        // Sender also restarts with a fresh epoch and re-sends everything.
        let mut tx2 = ReliableMux::new(TimeMs(10), seed.wrapping_add(2));
        for p in &payloads {
            let mut ctx = NodeCtx::new(TimeMs(2));
            tx2.send(PartyId::new("rx"), p.clone(), &mut ctx);
            for (_, frame) in ctx.take_outgoing() {
                let mut rctx = NodeCtx::new(TimeMs(3));
                if let Inbound::Deliver(m, _) = rx.on_message(&from, &frame, &mut rctx) {
                    post.push(m);
                }
                // A duplicate of the same frame is suppressed.
                let mut rctx2 = NodeCtx::new(TimeMs(4));
                assert_eq!(rx.on_message(&from, &frame, &mut rctx2), Inbound::Duplicate);
            }
        }
        assert_eq!(post, payloads);
        let _ = delivered;
    }
}
