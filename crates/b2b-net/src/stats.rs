//! Traffic statistics collected by the network drivers.
//!
//! Experiment E1 (message complexity vs group size) and E6 (liveness under
//! faults) read these counters.

use serde::{Deserialize, Serialize};

/// Counters of datagram fates inside a network driver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Datagrams handed to the network by nodes.
    pub sent: u64,
    /// Datagrams delivered to a node's `on_message`.
    pub delivered: u64,
    /// Datagrams removed by the fault plan or the intruder.
    pub dropped: u64,
    /// Extra copies delivered due to duplication faults.
    pub duplicated: u64,
    /// Datagrams discarded because the destination was crashed or
    /// partitioned away at delivery time.
    pub undeliverable: u64,
    /// Datagrams discarded specifically by an active partition — a subset
    /// of `undeliverable`, counted separately so a checker run's fault
    /// budget is auditable (per-link breakdowns live in the telemetry
    /// registry under `partition_drops:<from>-><to>`).
    pub partition_drops: u64,
    /// Datagrams the installed intruder acted upon (dropped, replaced,
    /// delayed or used as an injection trigger); `Deliver` decisions are
    /// not counted. Per-link breakdowns live in the telemetry registry
    /// under `intruder_actions:<from>-><to>`.
    pub intruder_actions: u64,
    /// Total payload bytes handed to the network by nodes.
    pub bytes_sent: u64,
    /// Frames retransmitted by the nodes' reliable layers (harvested from
    /// each node's [`crate::ReliableMux`]; zero for transports without one).
    pub retransmits: u64,
    /// Duplicate frames suppressed by the nodes' reliable layers before
    /// delivery to the protocol (harvested likewise).
    pub dedup_drops: u64,
    /// Connections established to peers (TCP transport; zero elsewhere).
    pub connects: u64,
    /// Connections re-established after a loss — a subset of `connects`
    /// (TCP transport; zero elsewhere).
    pub reconnects: u64,
    /// Recoverable I/O failures on the transport's connect/write path:
    /// failed connect attempts, established streams dying mid-write,
    /// reader-thread spawn failures. Each armed a backoff or dropped a
    /// connection instead of panicking; retransmission masks the loss, so
    /// these do not add to [`NetStats::lost`] beyond the frames already
    /// counted in `dropped`.
    pub io_errors: u64,
}

impl NetStats {
    /// Returns a zeroed counter set.
    pub fn new() -> NetStats {
        NetStats::default()
    }

    /// Total datagrams that failed to reach a live destination.
    ///
    /// Deliberately unchanged by the reliable-layer counters: retransmits
    /// and dedup drops describe *masking* work, not loss.
    pub fn lost(&self) -> u64 {
        self.dropped + self.undeliverable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lost_sums_failures() {
        let s = NetStats {
            sent: 10,
            delivered: 6,
            dropped: 3,
            duplicated: 0,
            undeliverable: 1,
            partition_drops: 1,
            intruder_actions: 0,
            bytes_sent: 100,
            retransmits: 2,
            dedup_drops: 1,
            connects: 2,
            reconnects: 1,
            io_errors: 1,
        };
        assert_eq!(s.lost(), 4);
    }

    #[test]
    fn partition_and_intruder_counters_do_not_inflate_loss() {
        // `partition_drops` is a breakdown of `undeliverable`, and
        // `intruder_actions` counts decisions, not datagrams: neither adds
        // to `lost()` on its own.
        let s = NetStats {
            partition_drops: 4,
            intruder_actions: 9,
            ..NetStats::default()
        };
        assert_eq!(s.lost(), 0);
    }

    #[test]
    fn reliable_layer_counters_do_not_count_as_loss() {
        let s = NetStats {
            retransmits: 7,
            dedup_drops: 5,
            ..NetStats::default()
        };
        assert_eq!(s.lost(), 0);
    }

    #[test]
    fn io_errors_do_not_inflate_loss() {
        // Every I/O error that actually lost a frame already bumped
        // `dropped`; the error counter is diagnostic, not additive.
        let s = NetStats {
            io_errors: 6,
            ..NetStats::default()
        };
        assert_eq!(s.lost(), 0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NetStats::new(), NetStats::default());
        assert_eq!(NetStats::new().lost(), 0);
    }
}
