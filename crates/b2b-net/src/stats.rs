//! Traffic statistics collected by the network drivers.
//!
//! Experiment E1 (message complexity vs group size) and E6 (liveness under
//! faults) read these counters.

use serde::{Deserialize, Serialize};

/// Counters of datagram fates inside a network driver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Datagrams handed to the network by nodes.
    pub sent: u64,
    /// Datagrams delivered to a node's `on_message`.
    pub delivered: u64,
    /// Datagrams removed by the fault plan or the intruder.
    pub dropped: u64,
    /// Extra copies delivered due to duplication faults.
    pub duplicated: u64,
    /// Datagrams discarded because the destination was crashed or
    /// partitioned away at delivery time.
    pub undeliverable: u64,
    /// Total payload bytes handed to the network by nodes.
    pub bytes_sent: u64,
}

impl NetStats {
    /// Returns a zeroed counter set.
    pub fn new() -> NetStats {
        NetStats::default()
    }

    /// Total datagrams that failed to reach a live destination.
    pub fn lost(&self) -> u64 {
        self.dropped + self.undeliverable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lost_sums_failures() {
        let s = NetStats {
            sent: 10,
            delivered: 6,
            dropped: 3,
            duplicated: 0,
            undeliverable: 1,
            bytes_sent: 100,
        };
        assert_eq!(s.lost(), 4);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NetStats::new(), NetStats::default());
        assert_eq!(NetStats::new().lost(), 0);
    }
}
