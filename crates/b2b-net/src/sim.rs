//! Deterministic discrete-event network simulator.
//!
//! [`SimNet`] drives a set of [`NetNode`] protocol engines under virtual
//! time with seeded randomness, so every scenario — including adversarial
//! and faulty ones — replays identically from the same seed. It implements
//! the failure model of paper §4.2: messages may be lost, duplicated,
//! delayed and reordered (per-link [`FaultPlan`]s); network partitions heal
//! eventually; nodes crash and eventually recover. A Dolev-Yao
//! [`Intruder`] may additionally be installed in the network path.
//!
//! # Determinism and the simultaneous-event tie-break
//!
//! Events are ordered by `(virtual time, insertion sequence)`: when two
//! events fall on the same millisecond, the one *scheduled first* fires
//! first. Together with the seeded RNG this makes every schedule a pure
//! function of `(seed, scripted inputs)` — the property `b2b-check` relies
//! on to replay a shrunk counterexample byte-identically. The tie-break is
//! pinned by a unit test and must not change.
//!
//! # Example
//!
//! ```
//! use b2b_crypto::{PartyId, TimeMs};
//! use b2b_net::{NetNode, NodeCtx, SimNet};
//!
//! /// A node that echoes every payload back to its sender.
//! struct Echo(PartyId);
//! impl NetNode for Echo {
//!     fn id(&self) -> PartyId { self.0.clone() }
//!     fn on_message(&mut self, from: &PartyId, payload: &[u8], ctx: &mut NodeCtx) {
//!         if payload != b"pong" {
//!             ctx.send(from.clone(), b"pong".to_vec());
//!         }
//!     }
//! }
//!
//! let mut net = SimNet::new(42);
//! net.add_node(Echo(PartyId::new("a")));
//! net.add_node(Echo(PartyId::new("b")));
//! net.invoke(&PartyId::new("a"), |_node, ctx| {
//!     ctx.send(PartyId::new("b"), b"ping".to_vec());
//! });
//! net.run_until_quiet(TimeMs(1_000));
//! assert_eq!(net.stats().delivered, 2); // ping + pong
//! ```

use crate::fault::FaultPlan;
use crate::intruder::{InterceptAction, Intruder, PassThrough};
use crate::node::{NetNode, NodeCtx, Payload};
use crate::stats::NetStats;
use b2b_crypto::{PartyId, TimeMs};
use b2b_telemetry::{names, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A scripted action run against a node at a virtual time.
type NodeAction<N> = Box<dyn FnOnce(&mut N, &mut NodeCtx) + Send>;

enum EventKind<N> {
    Deliver {
        from: PartyId,
        to: PartyId,
        payload: Payload,
    },
    Timer {
        node: PartyId,
        id: u64,
    },
    Crash {
        node: PartyId,
    },
    Recover {
        node: PartyId,
    },
    Action {
        node: PartyId,
        f: NodeAction<N>,
    },
}

struct Event<N> {
    time: TimeMs,
    seq: u64,
    kind: EventKind<N>,
}

impl<N> PartialEq for Event<N> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<N> Eq for Event<N> {}
impl<N> PartialOrd for Event<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<N> Ord for Event<N> {
    // Reversed so the max-heap pops the earliest event first.
    //
    // The tie-break for simultaneous events is the PINNED, load-bearing
    // part: `seq` is the global insertion order, so events scheduled for
    // the same virtual time fire strictly in the order they were pushed
    // (schedule-time FIFO). Counterexample replay in `b2b-check` depends
    // on this being stable — see `simultaneous_events_fire_in_insertion_
    // order` — so any change here is a breaking change to every committed
    // fault-plan fixture.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct NodeSlot<N> {
    node: Option<N>,
    crashed: bool,
}

/// An active partition separating two sets of nodes until a heal time.
#[derive(Debug, Clone)]
struct Partition {
    side_a: HashSet<PartyId>,
    side_b: HashSet<PartyId>,
    heals_at: TimeMs,
}

impl Partition {
    fn separates(&self, x: &PartyId, y: &PartyId, now: TimeMs) -> bool {
        now < self.heals_at
            && ((self.side_a.contains(x) && self.side_b.contains(y))
                || (self.side_b.contains(x) && self.side_a.contains(y)))
    }
}

/// The deterministic network simulator.
///
/// All nodes must share one engine type `N`; the B2BObjects coordinator is
/// that type in practice. Scripted client activity is injected with
/// [`SimNet::invoke`] (immediately) or [`SimNet::at`] (at a virtual time).
pub struct SimNet<N: NetNode> {
    nodes: HashMap<PartyId, NodeSlot<N>>,
    queue: BinaryHeap<Event<N>>,
    now: TimeMs,
    seq: u64,
    rng: StdRng,
    default_plan: FaultPlan,
    link_plans: HashMap<(PartyId, PartyId), FaultPlan>,
    partitions: Vec<Partition>,
    intruder: Box<dyn Intruder>,
    stats: NetStats,
    telemetry: Telemetry,
}

impl<N: NetNode> SimNet<N> {
    /// Creates an empty simulated network with the given randomness seed.
    pub fn new(seed: u64) -> SimNet<N> {
        SimNet {
            nodes: HashMap::new(),
            queue: BinaryHeap::new(),
            now: TimeMs::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            default_plan: FaultPlan::default(),
            link_plans: HashMap::new(),
            partitions: Vec::new(),
            intruder: Box::new(PassThrough),
            stats: NetStats::new(),
            telemetry: Telemetry::default(),
        }
    }

    /// Attaches an observability handle. When its sink is set, the driver
    /// emits `net/send`, `net/deliver` and `net/drop` trace events stamped
    /// with virtual time; and [`SimNet::stats`] surfaces the registry's
    /// reliable-layer counters (`retransmits`, `dedup_drops`) — share the
    /// same handle with the nodes' [`crate::ReliableMux`]es to see them.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Sets the fault plan applied to links without a specific plan.
    pub fn set_default_plan(&mut self, plan: FaultPlan) {
        self.default_plan = plan;
    }

    /// Sets the fault plan for the directed link `from → to`.
    pub fn set_link_plan(&mut self, from: PartyId, to: PartyId, plan: FaultPlan) {
        self.link_plans.insert((from, to), plan);
    }

    /// Installs a network intruder (replacing any previous one).
    pub fn set_intruder(&mut self, intruder: impl Intruder + 'static) {
        self.intruder = Box::new(intruder);
    }

    /// Adds a node and immediately runs its `on_start` callback.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same id is already present.
    pub fn add_node(&mut self, node: N) {
        let id = node.id();
        assert!(
            !self.nodes.contains_key(&id),
            "duplicate node id {id} added to SimNet"
        );
        self.nodes.insert(
            id.clone(),
            NodeSlot {
                node: Some(node),
                crashed: false,
            },
        );
        self.with_node(&id, |n, ctx| n.on_start(ctx));
    }

    /// Current virtual time.
    pub fn now(&self) -> TimeMs {
        self.now
    }

    /// Traffic statistics so far.
    ///
    /// The `retransmits`/`dedup_drops` fields are harvested from the
    /// attached telemetry registry (zero without one — the driver itself
    /// cannot see inside the nodes' reliable layers).
    pub fn stats(&self) -> NetStats {
        let mut stats = self.stats;
        let snap = self.telemetry.metrics().snapshot();
        stats.retransmits = snap.counter(names::RETRANSMITS);
        stats.dedup_drops = snap.counter(names::DEDUP_DROPS);
        stats
    }

    /// Immutable access to a node's engine for assertions.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn node(&self, id: &PartyId) -> &N {
        self.nodes
            .get(id)
            .and_then(|s| s.node.as_ref())
            .unwrap_or_else(|| panic!("unknown node {id}"))
    }

    /// Returns the ids of all nodes, in arbitrary order.
    pub fn node_ids(&self) -> Vec<PartyId> {
        self.nodes.keys().cloned().collect()
    }

    /// Returns `true` if the node is currently crashed.
    pub fn is_crashed(&self, id: &PartyId) -> bool {
        self.nodes.get(id).map(|s| s.crashed).unwrap_or(false)
    }

    /// Runs `f` against a node right now (a scripted client action), then
    /// applies the effects it queued. Returns `f`'s result.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the node is crashed.
    pub fn invoke<R>(&mut self, id: &PartyId, f: impl FnOnce(&mut N, &mut NodeCtx) -> R) -> R {
        assert!(!self.is_crashed(id), "invoke on crashed node {id}");
        self.with_node(id, f)
    }

    /// Schedules `f` to run against `node` at virtual time `at`.
    pub fn at(
        &mut self,
        at: TimeMs,
        node: PartyId,
        f: impl FnOnce(&mut N, &mut NodeCtx) + Send + 'static,
    ) {
        self.push_event(
            at,
            EventKind::Action {
                node,
                f: Box::new(f),
            },
        );
    }

    /// Schedules a crash of `node` at time `at`. In-flight messages to a
    /// crashed node are lost; its timers are discarded on delivery.
    pub fn crash_at(&mut self, at: TimeMs, node: PartyId) {
        self.push_event(at, EventKind::Crash { node });
    }

    /// Schedules recovery of `node` at time `at` (runs `on_recover`).
    pub fn recover_at(&mut self, at: TimeMs, node: PartyId) {
        self.push_event(at, EventKind::Recover { node });
    }

    /// Partitions the network into two sides that cannot exchange messages
    /// until `heals_at`.
    pub fn partition(
        &mut self,
        side_a: impl IntoIterator<Item = PartyId>,
        side_b: impl IntoIterator<Item = PartyId>,
        heals_at: TimeMs,
    ) {
        self.partitions.push(Partition {
            side_a: side_a.into_iter().collect(),
            side_b: side_b.into_iter().collect(),
            heals_at,
        });
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "virtual time went backwards");
        self.now = event.time;
        match event.kind {
            EventKind::Deliver { from, to, payload } => {
                let deliverable = match self.nodes.get(&to) {
                    Some(slot) => !slot.crashed,
                    None => false,
                };
                if deliverable {
                    self.stats.delivered += 1;
                    self.telemetry.trace(
                        self.now.as_millis(),
                        to.as_str(),
                        "net",
                        "deliver",
                        || format!("from={from} bytes={}", payload.len()),
                    );
                    self.with_node(&to, |n, ctx| n.on_message(&from, &payload, ctx));
                } else {
                    self.stats.undeliverable += 1;
                    self.telemetry
                        .trace(self.now.as_millis(), to.as_str(), "net", "drop", || {
                            format!("from={from} reason=crashed_or_unknown")
                        });
                }
            }
            EventKind::Timer { node, id } => {
                let live = self.nodes.get(&node).map(|s| !s.crashed).unwrap_or(false);
                if live {
                    self.with_node(&node, |n, ctx| n.on_timer(id, ctx));
                }
            }
            EventKind::Crash { node } => {
                if let Some(slot) = self.nodes.get_mut(&node) {
                    slot.crashed = true;
                    if let Some(n) = slot.node.as_mut() {
                        n.on_crash();
                    }
                }
            }
            EventKind::Recover { node } => {
                if let Some(slot) = self.nodes.get_mut(&node) {
                    slot.crashed = false;
                }
                self.with_node(&node, |n, ctx| n.on_recover(ctx));
            }
            EventKind::Action { node, f } => {
                let live = self.nodes.get(&node).map(|s| !s.crashed).unwrap_or(false);
                if live {
                    self.with_node(&node, |n, ctx| f(n, ctx));
                }
            }
        }
        true
    }

    /// Runs events until the queue is empty or virtual time would exceed
    /// `max_time`. Returns the virtual time reached.
    pub fn run_until_quiet(&mut self, max_time: TimeMs) -> TimeMs {
        while let Some(event) = self.queue.peek() {
            if event.time > max_time {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Runs events until virtual time reaches `until` (events after it stay
    /// queued).
    pub fn run_until(&mut self, until: TimeMs) {
        while let Some(event) = self.queue.peek() {
            if event.time > until {
                break;
            }
            self.step();
        }
        if self.now < until {
            self.now = until;
        }
    }

    fn push_event(&mut self, at: TimeMs, kind: EventKind<N>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event {
            time: at.max(self.now),
            seq,
            kind,
        });
    }

    fn with_node<R>(&mut self, id: &PartyId, f: impl FnOnce(&mut N, &mut NodeCtx) -> R) -> R {
        let slot = self
            .nodes
            .get_mut(id)
            .unwrap_or_else(|| panic!("unknown node {id}"));
        let mut node = slot.node.take().expect("node re-entered");
        let mut ctx = NodeCtx::new(self.now);
        let out = f(&mut node, &mut ctx);
        self.nodes.get_mut(id).expect("node slot vanished").node = Some(node);
        self.apply_effects(id.clone(), ctx);
        out
    }

    fn apply_effects(&mut self, from: PartyId, mut ctx: NodeCtx) {
        for (id, after) in ctx.take_timers() {
            let at = self.now + after;
            self.push_event(
                at,
                EventKind::Timer {
                    node: from.clone(),
                    id,
                },
            );
        }
        for (to, payload) in ctx.take_outgoing() {
            self.stats.sent += 1;
            self.stats.bytes_sent += payload.len() as u64;
            self.telemetry
                .trace(self.now.as_millis(), from.as_str(), "net", "send", || {
                    format!("to={to} bytes={}", payload.len())
                });
            let action = self.intruder.intercept(&from, &to, &payload, self.now);
            if action != InterceptAction::Deliver {
                self.stats.intruder_actions += 1;
                self.telemetry.inc(names::INTRUDER_ACTIONS);
                self.telemetry
                    .inc(&format!("intruder_actions:{from}->{to}"));
            }
            match action {
                InterceptAction::Deliver => {
                    self.route(from.clone(), to, payload, TimeMs::ZERO);
                }
                InterceptAction::Drop => {
                    self.stats.dropped += 1;
                }
                InterceptAction::Replace(replacement) => {
                    self.route(from.clone(), to, replacement.into(), TimeMs::ZERO);
                }
                InterceptAction::Delay(extra) => {
                    self.route(from.clone(), to, payload, extra);
                }
                InterceptAction::Inject(injections) => {
                    self.route(from.clone(), to, payload, TimeMs::ZERO);
                    for inj in injections {
                        self.route(inj.from, inj.to, inj.payload.into(), inj.after);
                    }
                }
            }
        }
    }

    /// Applies partition/fault-plan semantics and schedules delivery.
    ///
    /// Duplication clones the shared payload handle, not the bytes.
    fn route(&mut self, from: PartyId, to: PartyId, payload: Payload, extra_delay: TimeMs) {
        if self
            .partitions
            .iter()
            .any(|p| p.separates(&from, &to, self.now))
        {
            self.stats.undeliverable += 1;
            self.stats.partition_drops += 1;
            self.telemetry.inc(names::PARTITION_DROPS);
            self.telemetry.inc(&format!("partition_drops:{from}->{to}"));
            self.telemetry
                .trace(self.now.as_millis(), from.as_str(), "net", "drop", || {
                    format!("to={to} reason=partition")
                });
            return;
        }
        let plan = self
            .link_plans
            .get(&(from.clone(), to.clone()))
            .copied()
            .unwrap_or(self.default_plan);
        if plan.drop_rate > 0.0 && self.rng.gen_bool(plan.drop_rate) {
            self.stats.dropped += 1;
            self.telemetry
                .trace(self.now.as_millis(), from.as_str(), "net", "drop", || {
                    format!("to={to} reason=fault_plan")
                });
            return;
        }
        let delay = if plan.max_delay > plan.min_delay {
            TimeMs(
                self.rng
                    .gen_range(plan.min_delay.as_millis()..=plan.max_delay.as_millis()),
            )
        } else {
            plan.min_delay
        };
        let deliver_at = self.now + delay + extra_delay;
        if plan.dup_rate > 0.0 && self.rng.gen_bool(plan.dup_rate) {
            self.stats.duplicated += 1;
            let dup_delay = TimeMs(
                self.rng
                    .gen_range(plan.min_delay.as_millis()..=plan.max_delay.as_millis()),
            );
            self.push_event(
                self.now + dup_delay + extra_delay,
                EventKind::Deliver {
                    from: from.clone(),
                    to: to.clone(),
                    payload: payload.clone(),
                },
            );
        }
        self.push_event(deliver_at, EventKind::Deliver { from, to, payload });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intruder::FnIntruder;
    use std::collections::VecDeque;

    /// Test node: records received payloads; can be told to send.
    struct Probe {
        id: PartyId,
        received: Vec<(PartyId, Vec<u8>)>,
        timers_fired: Vec<u64>,
        crashes: u32,
        recoveries: u32,
        start_sends: VecDeque<(PartyId, Vec<u8>)>,
    }

    impl Probe {
        fn new(name: &str) -> Probe {
            Probe {
                id: PartyId::new(name),
                received: Vec::new(),
                timers_fired: Vec::new(),
                crashes: 0,
                recoveries: 0,
                start_sends: VecDeque::new(),
            }
        }
    }

    impl NetNode for Probe {
        fn id(&self) -> PartyId {
            self.id.clone()
        }
        fn on_start(&mut self, ctx: &mut NodeCtx) {
            while let Some((to, payload)) = self.start_sends.pop_front() {
                ctx.send(to, payload);
            }
        }
        fn on_message(&mut self, from: &PartyId, payload: &[u8], _ctx: &mut NodeCtx) {
            self.received.push((from.clone(), payload.to_vec()));
        }
        fn on_timer(&mut self, timer: u64, _ctx: &mut NodeCtx) {
            self.timers_fired.push(timer);
        }
        fn on_crash(&mut self) {
            self.crashes += 1;
        }
        fn on_recover(&mut self, _ctx: &mut NodeCtx) {
            self.recoveries += 1;
        }
    }

    fn two_probe_net(seed: u64) -> SimNet<Probe> {
        let mut net = SimNet::new(seed);
        net.add_node(Probe::new("a"));
        net.add_node(Probe::new("b"));
        net
    }

    #[test]
    fn delivers_messages_in_time_order() {
        let mut net = two_probe_net(1);
        net.invoke(&PartyId::new("a"), |_n, ctx| {
            ctx.send(PartyId::new("b"), vec![1]);
            ctx.send(PartyId::new("b"), vec![2]);
        });
        net.run_until_quiet(TimeMs(100));
        let b = net.node(&PartyId::new("b"));
        assert_eq!(b.received.len(), 2);
        assert_eq!(b.received[0].1, vec![1]);
        assert_eq!(b.received[1].1, vec![2]);
    }

    #[test]
    fn timers_fire_after_requested_delay() {
        let mut net = two_probe_net(1);
        net.invoke(&PartyId::new("a"), |_n, ctx| ctx.set_timer(7, TimeMs(50)));
        net.run_until(TimeMs(49));
        assert!(net.node(&PartyId::new("a")).timers_fired.is_empty());
        net.run_until(TimeMs(50));
        assert_eq!(net.node(&PartyId::new("a")).timers_fired, vec![7]);
    }

    #[test]
    fn drop_faults_lose_messages() {
        let mut net: SimNet<Probe> = SimNet::new(3);
        net.set_default_plan(FaultPlan::new().drop_rate(1.0));
        net.add_node(Probe::new("a"));
        net.add_node(Probe::new("b"));
        net.invoke(&PartyId::new("a"), |_n, ctx| {
            ctx.send(PartyId::new("b"), vec![9]);
        });
        net.run_until_quiet(TimeMs(100));
        assert!(net.node(&PartyId::new("b")).received.is_empty());
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut net: SimNet<Probe> = SimNet::new(4);
        net.set_default_plan(FaultPlan::new().dup_rate(1.0));
        net.add_node(Probe::new("a"));
        net.add_node(Probe::new("b"));
        net.invoke(&PartyId::new("a"), |_n, ctx| {
            ctx.send(PartyId::new("b"), vec![9]);
        });
        net.run_until_quiet(TimeMs(100));
        assert_eq!(net.node(&PartyId::new("b")).received.len(), 2);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn crashed_node_loses_messages_until_recovery() {
        let mut net = two_probe_net(5);
        net.crash_at(TimeMs(10), PartyId::new("b"));
        net.at(TimeMs(20), PartyId::new("a"), |_n, ctx| {
            ctx.send(PartyId::new("b"), vec![1]);
        });
        net.recover_at(TimeMs(30), PartyId::new("b"));
        net.at(TimeMs(40), PartyId::new("a"), |_n, ctx| {
            ctx.send(PartyId::new("b"), vec![2]);
        });
        net.run_until_quiet(TimeMs(100));
        let b = net.node(&PartyId::new("b"));
        assert_eq!(b.crashes, 1);
        assert_eq!(b.recoveries, 1);
        assert_eq!(b.received.len(), 1);
        assert_eq!(b.received[0].1, vec![2]);
        assert_eq!(net.stats().undeliverable, 1);
    }

    #[test]
    fn partitions_block_then_heal() {
        let mut net = two_probe_net(6);
        net.partition([PartyId::new("a")], [PartyId::new("b")], TimeMs(100));
        net.at(TimeMs(10), PartyId::new("a"), |_n, ctx| {
            ctx.send(PartyId::new("b"), vec![1]);
        });
        net.at(TimeMs(150), PartyId::new("a"), |_n, ctx| {
            ctx.send(PartyId::new("b"), vec![2]);
        });
        net.run_until_quiet(TimeMs(500));
        let b = net.node(&PartyId::new("b"));
        assert_eq!(b.received.len(), 1);
        assert_eq!(b.received[0].1, vec![2]);
    }

    #[test]
    fn intruder_can_tamper_payloads() {
        let mut net = two_probe_net(7);
        net.set_intruder(FnIntruder::new(
            |_f: &PartyId, _t: &PartyId, p: &[u8], _n| {
                let mut m = p.to_vec();
                m[0] = 0xee;
                InterceptAction::Replace(m)
            },
        ));
        net.invoke(&PartyId::new("a"), |_n, ctx| {
            ctx.send(PartyId::new("b"), vec![1]);
        });
        net.run_until_quiet(TimeMs(100));
        assert_eq!(net.node(&PartyId::new("b")).received[0].1, vec![0xee]);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut net: SimNet<Probe> = SimNet::new(seed);
            net.set_default_plan(FaultPlan::new().drop_rate(0.3).delay(TimeMs(1), TimeMs(20)));
            net.add_node(Probe::new("a"));
            net.add_node(Probe::new("b"));
            for i in 0..20u8 {
                net.at(TimeMs(u64::from(i)), PartyId::new("a"), move |_n, ctx| {
                    ctx.send(PartyId::new("b"), vec![i]);
                });
            }
            net.run_until_quiet(TimeMs(1_000));
            net.node(&PartyId::new("b")).received.clone()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        // PIN: events scheduled for the same virtual millisecond fire in
        // the order they were scheduled (global insertion sequence), for
        // every event kind. Counterexample fixtures committed by b2b-check
        // replay against exactly this order; do not weaken this test.
        let mut net = two_probe_net(1);
        let (a, b) = (PartyId::new("a"), PartyId::new("b"));
        for i in 0..5u8 {
            net.at(TimeMs(10), a.clone(), move |_n, ctx| {
                ctx.send(PartyId::new("b"), vec![i]);
            });
        }
        net.run_until_quiet(TimeMs(1_000));
        let order: Vec<u8> = net.node(&b).received.iter().map(|(_, p)| p[0]).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);

        // Timers armed for the same instant also fire in arming order.
        let mut net2 = two_probe_net(1);
        net2.invoke(&a, |_n, ctx| {
            ctx.set_timer(3, TimeMs(20));
            ctx.set_timer(1, TimeMs(20));
            ctx.set_timer(2, TimeMs(20));
        });
        net2.run_until_quiet(TimeMs(100));
        assert_eq!(net2.node(&a).timers_fired, vec![3, 1, 2]);
    }

    #[test]
    fn partition_drops_are_counted_per_link() {
        let mut net = two_probe_net(8);
        let tel = Telemetry::new();
        net.set_telemetry(tel.clone());
        net.partition([PartyId::new("a")], [PartyId::new("b")], TimeMs(100));
        net.at(TimeMs(10), PartyId::new("a"), |_n, ctx| {
            ctx.send(PartyId::new("b"), vec![1]);
            ctx.send(PartyId::new("b"), vec![2]);
        });
        net.run_until_quiet(TimeMs(500));
        let stats = net.stats();
        assert_eq!(stats.partition_drops, 2);
        assert_eq!(stats.undeliverable, 2, "partition drops stay a subset");
        let snap = tel.metrics().snapshot();
        assert_eq!(snap.counter(names::PARTITION_DROPS), 2);
        assert_eq!(snap.counter("partition_drops:a->b"), 2);
        assert_eq!(snap.counter("partition_drops:b->a"), 0);
    }

    #[test]
    fn intruder_actions_are_counted() {
        let mut net = two_probe_net(9);
        let tel = Telemetry::new();
        net.set_telemetry(tel.clone());
        net.set_intruder(FnIntruder::new(
            |_f: &PartyId, _t: &PartyId, p: &[u8], _n| {
                if p == b"seen" {
                    InterceptAction::Deliver
                } else {
                    InterceptAction::Drop
                }
            },
        ));
        net.invoke(&PartyId::new("a"), |_n, ctx| {
            ctx.send(PartyId::new("b"), b"seen".to_vec());
            ctx.send(PartyId::new("b"), b"gone".to_vec());
            ctx.send(PartyId::new("b"), b"gone".to_vec());
        });
        net.run_until_quiet(TimeMs(100));
        let stats = net.stats();
        assert_eq!(stats.intruder_actions, 2, "Deliver decisions not counted");
        assert_eq!(stats.dropped, 2);
        let snap = tel.metrics().snapshot();
        assert_eq!(snap.counter(names::INTRUDER_ACTIONS), 2);
        assert_eq!(snap.counter("intruder_actions:a->b"), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_rejected() {
        let mut net: SimNet<Probe> = SimNet::new(1);
        net.add_node(Probe::new("a"));
        net.add_node(Probe::new("a"));
    }

    #[test]
    fn jitter_reorders_messages() {
        // With a wide delay window some pair of messages must arrive out of
        // send order for at least one seed; use a fixed seed known to reorder.
        let mut net: SimNet<Probe> = SimNet::new(2);
        net.set_default_plan(FaultPlan::new().delay(TimeMs(1), TimeMs(100)));
        net.add_node(Probe::new("a"));
        net.add_node(Probe::new("b"));
        for i in 0..10u8 {
            net.at(TimeMs(u64::from(i)), PartyId::new("a"), move |_n, ctx| {
                ctx.send(PartyId::new("b"), vec![i]);
            });
        }
        net.run_until_quiet(TimeMs(1_000));
        let order: Vec<u8> = net
            .node(&PartyId::new("b"))
            .received
            .iter()
            .map(|(_, p)| p[0])
            .collect();
        assert_eq!(order.len(), 10);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_ne!(order, sorted, "expected at least one reordering");
    }
}
