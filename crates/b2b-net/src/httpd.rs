//! Reusable dependency-free HTTP/1.1 plumbing.
//!
//! [`HttpServer`] generalises the socket handling that [`crate::scrape`]
//! grew for `/metrics` into a small embeddable server any crate in the
//! workspace can put a JSON API on (the `b2b-server` order service is the
//! main client):
//!
//! * **Readiness-driven accept** — the listener is nonblocking and the
//!   accept thread waits on it with the same raw `poll(2)` primitive as
//!   the [`crate::shard_tcp`] reactor, so shutdown never needs the
//!   throwaway-connection trick: flip the stop flag, the poll timeout
//!   expires, the thread exits and is **joined**.
//! * **A fixed worker pool** — accepted connections are handed to `N`
//!   worker threads over a channel; each worker serves its connection
//!   with HTTP/1.1 keep-alive until the peer closes, an idle timeout
//!   passes, or the server stops. Workers are joined on shutdown too.
//! * **No HTTP library** — request line + headers + `Content-Length`
//!   body is all the protocol spoken, which is all a Prometheus scraper,
//!   `curl`, or the closed-loop load driver needs.
//!
//! The handler runs on the worker thread and may block (the order server
//! blocks synchronous-mode requests on protocol rounds); size the pool
//! for the expected concurrency.

use crate::shard_tcp::{sys_poll, PollFd, POLLIN};
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted request (head + body). Requests beyond it earn a
/// `413` and the connection closes — nothing in the workspace speaks
/// megabyte requests.
pub const MAX_REQUEST_LEN: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, uppercased by the peer (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (no query string).
    pub path: String,
    /// Raw query string (without the `?`), empty when absent.
    pub query: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The value of query parameter `key`, if present (`k=v` pairs split
    /// on `&`; no percent-decoding — the workspace APIs use plain
    /// tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Splits the path into its `/`-separated segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// One HTTP response: status code, content type and body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json".into(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
        }
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "OK",
        }
    }
}

/// The request handler: runs on a worker thread, may block.
pub type HttpHandler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// Accepted-connection hand-off queue between the acceptor and the
/// worker pool (the vendored channel stand-in is single-consumer, so
/// the pool shares a Condvar-guarded deque instead).
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, stream: TcpStream) {
        self.queue.lock().expect("conn queue poisoned").push_back(stream);
        self.ready.notify_one();
    }

    /// Pops one connection, waiting up to `timeout` for one to arrive.
    fn pop_timeout(&self, timeout: Duration) -> Option<TcpStream> {
        let mut guard = self.queue.lock().expect("conn queue poisoned");
        if let Some(stream) = guard.pop_front() {
            return Some(stream);
        }
        let (mut guard, _) = self
            .ready
            .wait_timeout(guard, timeout)
            .expect("conn queue poisoned");
        guard.pop_front()
    }
}

/// A small embeddable HTTP/1.1 server on a joined thread pool.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves requests through `handler` on `workers` threads.
    pub fn bind(addr: &str, workers: usize, handler: HttpHandler) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnQueue::new());

        let worker_handles = (0..workers.max(1))
            .map(|i| {
                let conns = conns.clone();
                let stop = stop.clone();
                let handler = handler.clone();
                std::thread::Builder::new()
                    .name(format!("b2b-http-{i}"))
                    .spawn(move || loop {
                        match conns.pop_timeout(Duration::from_millis(200)) {
                            Some(stream) => {
                                // A broken connection is the peer's
                                // problem; the worker moves on.
                                let _ = serve_connection(stream, &handler, &stop);
                            }
                            None => {
                                if stop.load(Ordering::SeqCst) {
                                    return;
                                }
                            }
                        }
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        let stop_accept = stop.clone();
        let acceptor = std::thread::Builder::new()
            .name("b2b-http-accept".to_string())
            .spawn(move || {
                let fd = listener.as_raw_fd();
                while !stop_accept.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            conns.push(stream);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            // Readiness wait, reactor-style: wake on a
                            // pending connection or re-check stop after
                            // the timeout.
                            let mut fds = [PollFd::new(fd, POLLIN)];
                            let _ = sys_poll(&mut fds, 100);
                        }
                        // Transient accept errors (ECONNABORTED etc.).
                        Err(_) => {}
                    }
                }
            })?;

        Ok(HttpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the pool and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serves one connection with keep-alive until the peer closes, the
/// server stops, or the connection idles past its budget.
fn serve_connection(
    mut stream: TcpStream,
    handler: &HttpHandler,
    stop: &AtomicBool,
) -> io::Result<()> {
    // Short read timeout: the loop re-checks the stop flag between
    // timeouts, so shutdown joins promptly while keep-alive connections
    // stay open across many requests.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let idle_budget = Duration::from_secs(30);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut last_activity = Instant::now();
    loop {
        // Parse every complete request already buffered before reading
        // more (peers may pipeline).
        while let Some((request, consumed, close)) = parse_request(&buf)? {
            buf.drain(..consumed);
            last_activity = Instant::now();
            let response = handler(&request);
            write_response(&mut stream, &response, close)?;
            if close {
                return Ok(());
            }
        }
        if buf.len() > MAX_REQUEST_LEN {
            let too_big = HttpResponse::text(413, "request too large\n");
            write_response(&mut stream, &too_big, true)?;
            return Ok(());
        }
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_activity.elapsed() > idle_budget {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Tries to parse one complete request from the front of `buf`. Returns
/// `(request, bytes_consumed, close_after_response)`, or `None` when
/// more bytes are needed. A malformed request line is an error (the
/// connection closes).
#[allow(clippy::type_complexity)]
fn parse_request(buf: &[u8]) -> io::Result<Option<(HttpRequest, usize, bool)>> {
    let Some(head_end) = find_head_end(buf) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::new(ErrorKind::InvalidData, "non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("HTTP/1.1");
    if method.is_empty() || target.is_empty() {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            "malformed request line",
        ));
    }
    let mut content_length = 0usize;
    let mut connection = String::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| io::Error::new(ErrorKind::InvalidData, "bad Content-Length"))?
            }
            "connection" => connection = value.to_ascii_lowercase(),
            _ => {}
        }
    }
    if content_length > MAX_REQUEST_LEN {
        return Err(io::Error::new(ErrorKind::InvalidData, "body too large"));
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let close = match connection.as_str() {
        "close" => true,
        "keep-alive" => false,
        _ => version == "HTTP/1.0",
    };
    Ok(Some((
        HttpRequest {
            method,
            path,
            query,
            body,
        },
        body_start + content_length,
        close,
    )))
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &HttpResponse, close: bool) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        HttpResponse::reason(response.status),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// A minimal keep-alive HTTP/1.1 client for tests and the closed-loop
/// load driver: one persistent connection, blocking request/response.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(HttpClient {
            stream,
            buf: Vec::with_capacity(4096),
        })
    }

    /// Issues one request and blocks for the response, returning
    /// `(status, body)`. The connection stays open for the next call.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: b2b\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len(),
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Convenience `GET`.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, b"")
    }

    /// Convenience `POST` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body.as_bytes())
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        loop {
            if let Some(head_end) = find_head_end(&self.buf) {
                let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
                let status: u16 = head
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
                let content_length: usize = head
                    .lines()
                    .find_map(|l| {
                        let (name, value) = l.split_once(':')?;
                        name.trim()
                            .eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse().ok())?
                    })
                    .unwrap_or(0);
                let body_start = head_end + 4;
                while self.buf.len() < body_start + content_length {
                    self.fill()?;
                }
                let body =
                    String::from_utf8_lossy(&self.buf[body_start..body_start + content_length])
                        .to_string();
                self.buf.drain(..body_start + content_length);
                return Ok((status, body));
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk)? {
            0 => Err(io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            n => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        let handler: HttpHandler = Arc::new(|req: &HttpRequest| {
            if req.path == "/echo" {
                HttpResponse::json(
                    200,
                    format!(
                        "{{\"method\":\"{}\",\"q\":\"{}\",\"body_len\":{}}}",
                        req.method,
                        req.query_param("q").unwrap_or(""),
                        req.body.len()
                    ),
                )
            } else {
                HttpResponse::text(404, "nope\n")
            }
        });
        HttpServer::bind("127.0.0.1:0", 2, handler).expect("bind")
    }

    #[test]
    fn keep_alive_round_trips_and_clean_shutdown() {
        let server = echo_server();
        let mut client = HttpClient::connect(server.addr()).expect("connect");
        // Several requests over ONE connection.
        for i in 0..5 {
            let (status, body) = client
                .post(&format!("/echo?q=x{i}"), "{\"k\":1}")
                .expect("request");
            assert_eq!(status, 200);
            assert!(body.contains(&format!("\"q\":\"x{i}\"")), "{body}");
            assert!(body.contains("\"body_len\":7"), "{body}");
        }
        let (status, _) = client.get("/missing").expect("request");
        assert_eq!(status, 404);
        // Clean shutdown joins the acceptor and the workers without any
        // throwaway-connection unblocking.
        server.shutdown();
    }

    #[test]
    fn http10_connection_close_semantics() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"GET /echo HTTP/1.0\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        server.shutdown();
    }

    #[test]
    fn oversized_body_is_rejected() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let head = format!(
            "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_REQUEST_LEN + 1
        );
        stream.write_all(head.as_bytes()).expect("write");
        let mut response = String::new();
        // Server closes after the error response.
        let _ = stream.read_to_string(&mut response);
        assert!(response.is_empty() || !response.starts_with("HTTP/1.1 2"));
        server.shutdown();
    }
}
