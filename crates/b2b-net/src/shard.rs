//! Sharded multi-group runtime: thousands of coordination groups on a
//! fixed worker pool.
//!
//! The paper's middleware assumes many independent information-sharing
//! objects coexist — every game, order book or auction is its own
//! coordination group. The threaded transport ([`crate::inproc`])
//! dedicates one OS thread per node, which tops out at a few hundred
//! nodes per process. This module multiplexes instead:
//!
//! * a **shard map** — every group is pinned to one of ≈ `num_cpus`
//!   shards at registration (`GroupId → shard`, frozen before the workers
//!   start, so routing is lock-free reads of an immutable table);
//! * a **group envelope** on every frame — sends are wrapped with
//!   [`crate::reliable::encode_group_frame`] (`[group id, BE u64][frame]`)
//!   so one fabric endpoint carries traffic for many groups and delivery
//!   verifies the id against the destination slot;
//! * **per-shard timer wheels** — a hashed wheel per worker replaces the
//!   per-node binary heaps, so 20k nodes' retransmit timers cost one
//!   wheel advance per shard tick instead of 20k thread wakeups;
//! * **bounded shard inboxes with order-preserving backpressure** —
//!   every slot sends through its own FIFO outbox; when a destination
//!   shard's inbox is full the outbox parks head-of-line (counting
//!   [`names::INBOX_FULL_STALLS`]) and the slot's owning worker
//!   re-drains it. Frames are never shed or reordered: the reliable
//!   layer dedups duplicates but delivers in arrival order, and the
//!   coordination protocols' pipelined rounds require per-link FIFO
//!   (a round-`i+1` proposal overtaking round `i`'s decision reads as a
//!   predecessor mismatch and draws an honest veto).
//!
//! The per-node engine state lives in *slots* (`(GroupId, PartyId) →
//! Mutex<engine>`), so [`GroupHandle::invoke`]/[`GroupHandle::wait_until`]
//! offer exactly the client surface of [`crate::inproc::NodeHandle`] —
//! engines run unmodified, and a single-group sharded run produces the
//! same protocol traffic (hence byte-identical evidence and trace DAGs)
//! as the thread-per-node path. Crash/recovery mirrors the simulator:
//! crashing a node bumps its epoch (stale timers are lazily discarded),
//! drops its inbound frames, and recovery replays the engine's
//! `on_recover`.

use crate::inproc::Fabric;
use crate::node::{NetNode, NodeCtx, Payload};
use crate::reliable::{decode_group_frame, encode_group_frame};
use crate::stats::NetStats;
use b2b_crypto::{PartyId, TimeMs};
use b2b_telemetry::{names, Telemetry};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identity of one coordination group inside a sharded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u64);

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Default bound of each shard's event inbox. A shard serves many groups,
/// so its inbox is sized well above the per-node
/// [`crate::inproc::DEFAULT_INBOX_CAPACITY`].
pub const DEFAULT_SHARD_INBOX_CAPACITY: usize = 16 * 1024;

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// Milliseconds per wheel tick. Protocol timers (retransmit backoff,
/// linger) are tens of milliseconds and up; 4 ms resolution is far below
/// any timer the engines arm.
const WHEEL_TICK_MS: u64 = 4;
/// Buckets per wheel: a 1.024 s horizon before entries overflow.
const WHEEL_BUCKETS: usize = 256;

struct TimerEntry {
    deadline: TimeMs,
    gid: GroupId,
    party: PartyId,
    timer_id: u64,
    /// Crash epoch of the slot when the timer was armed; a fire whose
    /// epoch no longer matches is a timer of a crashed incarnation and is
    /// discarded (the simulator cancels timers on crash; the wheel
    /// cancels lazily).
    epoch: u64,
}

/// A hashed timer wheel: O(1) insert, O(buckets-passed) advance,
/// amortising every timer in the shard into one data structure.
struct TimerWheel {
    buckets: Vec<Vec<TimerEntry>>,
    /// Absolute tick the cursor bucket corresponds to.
    cursor_tick: u64,
    /// Entries with deadlines beyond the wheel horizon, re-hashed when
    /// the cursor wraps.
    overflow: Vec<TimerEntry>,
    len: usize,
}

impl TimerWheel {
    fn new(now: TimeMs) -> TimerWheel {
        TimerWheel {
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            cursor_tick: now.0 / WHEEL_TICK_MS,
            overflow: Vec::new(),
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn insert(&mut self, entry: TimerEntry) {
        self.len += 1;
        let tick = entry.deadline.0 / WHEEL_TICK_MS;
        if tick >= self.cursor_tick + WHEEL_BUCKETS as u64 {
            self.overflow.push(entry);
        } else {
            // Past-due entries land in the cursor bucket and fire on the
            // next advance.
            let tick = tick.max(self.cursor_tick);
            self.buckets[(tick % WHEEL_BUCKETS as u64) as usize].push(entry);
        }
    }

    /// Advances the cursor to `now`, returning every due entry.
    fn advance(&mut self, now: TimeMs) -> Vec<TimerEntry> {
        let target_tick = now.0 / WHEEL_TICK_MS;
        let mut due = Vec::new();
        while self.cursor_tick <= target_tick {
            let idx = (self.cursor_tick % WHEEL_BUCKETS as u64) as usize;
            let bucket = std::mem::take(&mut self.buckets[idx]);
            for entry in bucket {
                if entry.deadline.0 <= now.0 {
                    due.push(entry);
                } else {
                    // A future revolution's entry sharing this bucket.
                    self.buckets[idx].push(entry);
                }
            }
            self.cursor_tick += 1;
            if idx == WHEEL_BUCKETS - 1 && !self.overflow.is_empty() {
                // Cursor wrapped: pull overflow entries that are now
                // within the horizon back onto the wheel.
                let horizon = self.cursor_tick + WHEEL_BUCKETS as u64;
                let (near, far): (Vec<_>, Vec<_>) = std::mem::take(&mut self.overflow)
                    .into_iter()
                    .partition(|e| e.deadline.0 / WHEEL_TICK_MS < horizon);
                self.overflow = far;
                for entry in near {
                    self.len -= 1; // insert re-counts it
                    self.insert(entry);
                }
            }
        }
        self.len -= due.len();
        due
    }
}

// ---------------------------------------------------------------------------
// Slots and events
// ---------------------------------------------------------------------------

struct SlotInner<N> {
    node: N,
    crashed: bool,
    /// Bumped on every crash; timers armed before the bump never fire.
    epoch: u64,
    /// Outgoing events not yet accepted by their destination — a local
    /// shard's inbox or the external transport — in send order. Drained
    /// front-first; a full destination parks the whole queue
    /// (head-of-line) so per-link FIFO holds.
    outbox: VecDeque<(OutDest, ShardEvent)>,
    /// Whether this slot is registered on its shard's parked list.
    outbox_blocked: bool,
}

/// One node's engine state, resident on exactly one shard.
struct Slot<N> {
    gid: GroupId,
    party: PartyId,
    shard: usize,
    inner: Mutex<SlotInner<N>>,
    cv: Condvar,
}

enum ShardEvent {
    /// A group-enveloped frame for `(gid, to)`.
    Deliver {
        gid: GroupId,
        from: PartyId,
        to: PartyId,
        frame: Payload,
    },
    /// Recompute the loop deadline (a client armed a timer or wants the
    /// loop to notice state it changed).
    Wake,
    Stop,
}

/// Where an outbox entry is headed: a local worker shard, or out of the
/// process through the configured [`ExternalRoute`].
enum OutDest {
    Shard(usize),
    External,
}

/// A transport's answer to one offered frame.
pub(crate) enum RouteOffer {
    /// Accepted; the transport owns the frame now.
    Sent,
    /// Transport queue full — the sender's outbox parks head-of-line and
    /// the offer is retried, so per-link FIFO carries across the socket.
    Full,
    /// No route to that party; the frame is dropped (a lost message, as
    /// the paper's model allows).
    Unroutable,
}

/// A transport bridging this process's slots to remote endpoints.
///
/// Installed once per [`ShardedNet`] (see
/// [`ShardedNet::set_external_route`]); sends to parties without a local
/// slot are offered here instead of being dropped.
pub(crate) trait ExternalRoute: Send + Sync {
    /// Offers one group-enveloped `frame` addressed to `to`. Must not
    /// block: backpressure is expressed through [`RouteOffer::Full`].
    fn try_send(&self, gid: GroupId, to: &PartyId, frame: &Payload) -> RouteOffer;
}

/// An inbound sink handed to a transport: `(raw group id, sender,
/// enveloped frame) → accepted?`. Returns `false` when the destination
/// shard's inbox is full — the transport must hold the frame and retry
/// (its socket receive window then pushes back on the peer).
pub(crate) type ExternalInjector = Arc<dyn Fn(u64, PartyId, Payload) -> bool + Send + Sync>;

// ---------------------------------------------------------------------------
// The core: routing table, shard inboxes, wheels
// ---------------------------------------------------------------------------

struct Core<N> {
    start: Instant,
    /// Frozen before workers start: group → shard.
    shard_of: HashMap<GroupId, usize>,
    slots: HashMap<(GroupId, PartyId), Arc<Slot<N>>>,
    shard_txs: Vec<Sender<ShardEvent>>,
    wheels: Vec<Mutex<TimerWheel>>,
    /// Approximate queued events per shard (sampled into
    /// [`names::SHARD_QUEUE_DEPTH`]).
    depths: Vec<AtomicUsize>,
    /// Per *source* shard: slots whose outbox parked on a full
    /// destination inbox, awaiting a re-drain by their owning worker.
    parked: Vec<Mutex<Vec<(GroupId, PartyId)>>>,
    /// Set once (before any engine runs) when a transport bridges this
    /// process to remote endpoints; sends to parties without a local
    /// slot route here. Never set for a purely in-process net.
    external: OnceLock<Arc<dyn ExternalRoute>>,
    telemetry: Telemetry,
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
}

impl<N: NetNode> Core<N> {
    fn now(&self) -> TimeMs {
        TimeMs(self.start.elapsed().as_millis() as u64)
    }

    /// Queues one outgoing payload from `slot` onto its FIFO outbox
    /// (caller holds the slot lock).
    fn enqueue_out(
        &self,
        slot: &Slot<N>,
        inner: &mut SlotInner<N>,
        to: &PartyId,
        payload: Payload,
    ) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        let Some(&shard) = self.shard_of.get(&slot.gid) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let dest = if self.slots.contains_key(&(slot.gid, to.clone())) {
            OutDest::Shard(shard)
        } else if self.external.get().is_some() {
            // The party lives on a remote endpoint: route through the
            // transport, in the same FIFO as local frames.
            OutDest::External
        } else {
            // Unknown destination: undeliverable, silently lost (the
            // paper's model treats it as a lost message).
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let event = ShardEvent::Deliver {
            gid: slot.gid,
            from: slot.party.clone(),
            to: to.clone(),
            frame: encode_group_frame(slot.gid.0, &payload).into(),
        };
        inner.outbox.push_back((dest, event));
    }

    /// Offers `slot`'s outbox to the destinations in send order — local
    /// shard inboxes or the external transport — stopping at the first
    /// full one (head-of-line — nothing is shed and nothing overtakes).
    /// Never blocks, so workers cannot deadlock on each other's full
    /// inboxes. Returns whether the outbox emptied (caller holds the
    /// slot lock).
    fn try_drain(&self, inner: &mut SlotInner<N>) -> bool {
        while let Some((dest, event)) = inner.outbox.pop_front() {
            match dest {
                OutDest::Shard(d) => match self.shard_txs[d].try_send(event) {
                    Ok(()) => {
                        self.depths[d].fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        // Shutting down; the frame is lost with the pool.
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(event)) => {
                        inner.outbox.push_front((OutDest::Shard(d), event));
                        return false;
                    }
                },
                OutDest::External => {
                    let Some(route) = self.external.get() else {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    let ShardEvent::Deliver { gid, to, frame, .. } = &event else {
                        continue;
                    };
                    match route.try_send(*gid, to, frame) {
                        RouteOffer::Sent => {}
                        RouteOffer::Unroutable => {
                            self.dropped.fetch_add(1, Ordering::Relaxed);
                        }
                        RouteOffer::Full => {
                            inner.outbox.push_front((OutDest::External, event));
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// [`Core::try_drain`], plus parking: a still-blocked outbox is
    /// registered (once per stall) with its owning worker for re-drains,
    /// counting [`names::INBOX_FULL_STALLS`] (caller holds the slot
    /// lock).
    fn drain_outbox(&self, slot: &Slot<N>, inner: &mut SlotInner<N>) {
        if self.try_drain(inner) {
            inner.outbox_blocked = false;
            return;
        }
        if !inner.outbox_blocked {
            inner.outbox_blocked = true;
            self.telemetry.inc(names::INBOX_FULL_STALLS);
            self.parked[slot.shard]
                .lock()
                .push((slot.gid, slot.party.clone()));
            self.wake(slot.shard);
        }
    }

    /// Applies a context's effects after an engine callback: sends are
    /// group-enveloped and queued through the slot's FIFO outbox, timers
    /// go onto the owning shard's wheel (caller holds the slot lock).
    fn flush(&self, slot: &Slot<N>, inner: &mut SlotInner<N>, ctx: &mut NodeCtx) {
        for (to, payload) in ctx.take_outgoing() {
            self.enqueue_out(slot, inner, &to, payload);
        }
        let timers = ctx.take_timers();
        if !timers.is_empty() {
            let now = self.now();
            let mut wheel = self.wheels[slot.shard].lock();
            for (timer_id, after) in timers {
                wheel.insert(TimerEntry {
                    deadline: now + after,
                    gid: slot.gid,
                    party: slot.party.clone(),
                    timer_id,
                    epoch: inner.epoch,
                });
            }
        }
        self.drain_outbox(slot, inner);
    }

    fn wake(&self, shard: usize) {
        self.depths[shard].fetch_add(1, Ordering::Relaxed);
        if self.shard_txs[shard].try_send(ShardEvent::Wake).is_err() {
            // Full or stopped: either way the worker is busy and will
            // re-check its deadline soon.
            self.depths[shard].fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Offers an externally received, still-enveloped frame to its
    /// destination shard's inbox. Returns `false` when the inbox is full
    /// — the transport must hold the frame and retry later, never shed
    /// or reorder it.
    fn try_inject(&self, gid_raw: u64, from: PartyId, to: PartyId, frame: Payload) -> bool {
        let gid = GroupId(gid_raw);
        let Some(&shard) = self.shard_of.get(&gid) else {
            // Unknown group on this endpoint: consumed, counted, lost.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.telemetry.inc(names::SHARD_UNDELIVERABLE);
            return true;
        };
        let event = ShardEvent::Deliver {
            gid,
            from,
            to,
            frame,
        };
        match self.shard_txs[shard].try_send(event) {
            Ok(()) => {
                self.depths[shard].fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) => false,
            // Shutting down; consume the frame with the pool.
            Err(TrySendError::Disconnected(_)) => true,
        }
    }
}

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

/// Telemetry deltas batched worker-locally so the hot loop touches the
/// shared registry only every flush, not every event.
#[derive(Default)]
struct LocalCounters {
    events: u64,
    timer_fires: u64,
    undeliverable: u64,
}

const COUNTER_FLUSH_EVERY: u64 = 512;
const QUEUE_DEPTH_SAMPLE_EVERY: u64 = 64;
/// Events consumed per loop iteration before the worker re-checks its
/// parked outboxes and timer wheel. Bursting matters under saturation:
/// sweeping thousands of parked slots per single consumed event would
/// crawl, while a burst frees a burst-sized slice of inbox capacity per
/// sweep.
const EVENT_BURST: u64 = 256;

fn run_shard<N: NetNode>(shard: usize, rx: Receiver<ShardEvent>, core: Arc<Core<N>>) {
    let events_name = format!("{}:shard{shard}", names::SHARD_EVENTS);
    let mut local = LocalCounters::default();
    let flush_local = |local: &mut LocalCounters| {
        if local.events > 0 {
            core.telemetry.add(&events_name, local.events);
        }
        if local.timer_fires > 0 {
            core.telemetry
                .add(names::SHARD_TIMER_FIRES, local.timer_fires);
        }
        if local.undeliverable > 0 {
            core.telemetry
                .add(names::SHARD_UNDELIVERABLE, local.undeliverable);
        }
        *local = LocalCounters::default();
    };
    loop {
        // Re-drain outboxes that parked on a full destination inbox.
        let parked = std::mem::take(&mut *core.parked[shard].lock());
        for key in parked {
            let Some(slot) = core.slots.get(&key) else {
                continue;
            };
            let mut inner = slot.inner.lock();
            if core.try_drain(&mut inner) {
                inner.outbox_blocked = false;
            } else {
                // Still blocked: keep the registration (and the stall
                // already counted) until the destination drains.
                core.parked[shard].lock().push(key);
            }
        }
        let parked_pending = !core.parked[shard].lock().is_empty();
        let timers_pending = !core.wheels[shard].lock().is_empty();
        let timeout = if parked_pending {
            Duration::from_millis(1)
        } else if timers_pending {
            Duration::from_millis(WHEEL_TICK_MS)
        } else {
            Duration::from_millis(100)
        };
        let mut stop = false;
        let mut next = match rx.recv_timeout(timeout) {
            Ok(event) => Some(event),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut burst = 0;
        while let Some(event) = next {
            core.depths[shard].fetch_sub(1, Ordering::Relaxed);
            local.events += 1;
            match event {
                ShardEvent::Deliver {
                    gid,
                    from,
                    to,
                    frame,
                } => deliver(&core, gid, &from, &to, &frame, &mut local),
                ShardEvent::Wake => {}
                ShardEvent::Stop => {
                    stop = true;
                    break;
                }
            }
            if local.events % QUEUE_DEPTH_SAMPLE_EVERY == 0 {
                let depth = core.depths[shard].load(Ordering::Relaxed) as u64;
                core.telemetry.observe_ms(names::SHARD_QUEUE_DEPTH, depth);
            }
            burst += 1;
            next = if burst < EVENT_BURST {
                rx.try_recv().ok()
            } else {
                None
            };
        }
        if stop {
            break;
        }
        // Fire due timers across every group resident on this shard.
        let due = core.wheels[shard].lock().advance(core.now());
        for entry in due {
            let Some(slot) = core.slots.get(&(entry.gid, entry.party.clone())) else {
                continue;
            };
            let mut ctx = NodeCtx::new(core.now());
            let mut inner = slot.inner.lock();
            if inner.crashed || inner.epoch != entry.epoch {
                continue; // a crashed incarnation's timer
            }
            local.timer_fires += 1;
            inner.node.on_timer(entry.timer_id, &mut ctx);
            core.flush(slot, &mut inner, &mut ctx);
            slot.cv.notify_all();
        }
        if local.events >= COUNTER_FLUSH_EVERY {
            flush_local(&mut local);
        }
    }
    flush_local(&mut local);
}

fn deliver<N: NetNode>(
    core: &Core<N>,
    gid: GroupId,
    from: &PartyId,
    to: &PartyId,
    frame: &[u8],
    local: &mut LocalCounters,
) {
    // Strip and verify the group envelope: a frame routed to the wrong
    // group's slot must never reach an engine.
    let Some((wire_gid, inner_frame)) = decode_group_frame(frame) else {
        local.undeliverable += 1;
        return;
    };
    if wire_gid != gid.0 {
        local.undeliverable += 1;
        return;
    }
    let Some(slot) = core.slots.get(&(gid, to.clone())) else {
        local.undeliverable += 1;
        return;
    };
    let mut ctx = NodeCtx::new(core.now());
    let mut inner = slot.inner.lock();
    if inner.crashed {
        local.undeliverable += 1;
        return;
    }
    core.delivered.fetch_add(1, Ordering::Relaxed);
    inner.node.on_message(from, inner_frame, &mut ctx);
    core.flush(slot, &mut inner, &mut ctx);
    slot.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A handle for interacting with one node of one group in a
/// [`ShardedNet`] — the multi-group counterpart of
/// [`crate::inproc::NodeHandle`], with the same `invoke`/`read`/
/// `wait_until` surface.
pub struct GroupHandle<N: NetNode> {
    slot: Arc<Slot<N>>,
    core: Arc<Core<N>>,
}

impl<N: NetNode> Clone for GroupHandle<N> {
    fn clone(&self) -> Self {
        GroupHandle {
            slot: Arc::clone(&self.slot),
            core: Arc::clone(&self.core),
        }
    }
}

impl<N: NetNode> GroupHandle<N> {
    /// The group this handle addresses.
    pub fn group(&self) -> GroupId {
        self.slot.gid
    }

    /// This node's identity.
    pub fn id(&self) -> &PartyId {
        &self.slot.party
    }

    /// Runs a local call against the engine, applies its effects (sends
    /// and timers), and returns the call's result.
    pub fn invoke<R>(&self, f: impl FnOnce(&mut N, &mut NodeCtx) -> R) -> R {
        let mut ctx = NodeCtx::new(self.core.now());
        let result = {
            let mut inner = self.slot.inner.lock();
            let result = f(&mut inner.node, &mut ctx);
            self.core.flush(&self.slot, &mut inner, &mut ctx);
            self.slot.cv.notify_all();
            result
        };
        // Recompute the shard's loop deadline in case a timer was armed.
        self.core.wake(self.slot.shard);
        result
    }

    /// Reads from the engine without applying effects.
    pub fn read<R>(&self, f: impl FnOnce(&N) -> R) -> R {
        f(&self.slot.inner.lock().node)
    }

    /// Blocks until `pred` holds or `timeout` elapses; returns whether
    /// the predicate was satisfied. Re-evaluated after every event the
    /// node processes.
    pub fn wait_until(&self, timeout: Duration, mut pred: impl FnMut(&N) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.slot.inner.lock();
        loop {
            if pred(&inner.node) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            if self.slot.cv.wait_until(&mut inner, deadline).timed_out() {
                return pred(&inner.node);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Builder and net
// ---------------------------------------------------------------------------

/// Configures a [`ShardedNet`] before any worker starts.
pub struct ShardedNetBuilder<N: NetNode> {
    groups: Vec<(GroupId, Vec<N>)>,
    shards: usize,
    inbox_capacity: usize,
    telemetry: Telemetry,
}

/// A spawned-but-not-started pool plus its registration list, in
/// registration order (the [`ShardedNet::start_all`] argument).
pub(crate) type Unstarted<N> = (ShardedNet<N>, Vec<(GroupId, PartyId)>);

impl<N: NetNode> ShardedNetBuilder<N> {
    /// Registers one group's nodes. Insertion order is the placement
    /// order: group *i* lands on shard `i % shards`.
    ///
    /// # Panics
    ///
    /// Panics if `gid` was already added or two nodes share an id.
    pub fn add_group(mut self, gid: GroupId, nodes: Vec<N>) -> Self {
        assert!(
            !self.groups.iter().any(|(g, _)| *g == gid),
            "duplicate group {gid} in ShardedNet"
        );
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                assert!(a.id() != b.id(), "duplicate node id {} in {gid}", a.id());
            }
        }
        self.groups.push((gid, nodes));
        self
    }

    /// Overrides the worker-pool size (default: available parallelism).
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }

    /// Overrides the per-shard inbox bound
    /// (default [`DEFAULT_SHARD_INBOX_CAPACITY`]).
    pub fn inbox_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "inbox capacity must be positive");
        self.inbox_capacity = capacity;
        self
    }

    /// Attaches a telemetry handle (shard occupancy, queue depth, stall
    /// and undeliverable counters).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Freezes the shard map, starts the worker pool and runs every
    /// node's `on_start` (groups in registration order).
    ///
    /// # Errors
    ///
    /// Returns the OS error if a worker thread cannot be spawned; the
    /// workers already started are stopped and joined first, so a failed
    /// spawn leaves no partial pool behind (and no engine has run
    /// `on_start` yet).
    pub fn spawn(self) -> io::Result<ShardedNet<N>> {
        let (net, started) = self.spawn_without_start()?;
        net.start_all(&started);
        Ok(net)
    }

    /// Like [`ShardedNetBuilder::spawn`] but without running any
    /// engine's `on_start`, returning the registration list instead.
    /// Transports that must install an [`ExternalRoute`] before the
    /// first send (the multiplexed TCP bridge) start the pool, wire the
    /// route, then call [`ShardedNet::start_all`].
    pub(crate) fn spawn_without_start(self) -> io::Result<Unstarted<N>> {
        let shards = self.shards;
        let start = Instant::now();
        let mut shard_of = HashMap::new();
        let mut slots = HashMap::new();
        let mut occupancy = vec![0u64; shards];
        let mut started: Vec<(GroupId, PartyId)> = Vec::new();
        for (i, (gid, nodes)) in self.groups.into_iter().enumerate() {
            let shard = i % shards;
            shard_of.insert(gid, shard);
            occupancy[shard] += 1;
            for node in nodes {
                let party = node.id();
                started.push((gid, party.clone()));
                slots.insert(
                    (gid, party.clone()),
                    Arc::new(Slot {
                        gid,
                        party,
                        shard,
                        inner: Mutex::new(SlotInner {
                            node,
                            crashed: false,
                            epoch: 0,
                            outbox: VecDeque::new(),
                            outbox_blocked: false,
                        }),
                        cv: Condvar::new(),
                    }),
                );
            }
        }
        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = bounded(self.inbox_capacity);
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }
        for (i, groups) in occupancy.iter().enumerate() {
            self.telemetry
                .add(&format!("{}:shard{i}", names::SHARD_OCCUPANCY), *groups);
        }
        let core = Arc::new(Core {
            start,
            shard_of,
            slots,
            shard_txs,
            wheels: (0..shards)
                .map(|_| Mutex::new(TimerWheel::new(TimeMs(0))))
                .collect(),
            depths: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            parked: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            external: OnceLock::new(),
            telemetry: self.telemetry,
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        let mut threads = Vec::with_capacity(shards);
        for (i, rx) in shard_rxs.into_iter().enumerate() {
            let worker_core = Arc::clone(&core);
            match std::thread::Builder::new()
                .name(format!("b2b-shard-{i}"))
                .spawn(move || run_shard(i, rx, worker_core))
            {
                Ok(t) => threads.push(t),
                Err(e) => {
                    // Unwind the partial pool: stop and join the workers
                    // already running, then surface the OS error instead
                    // of panicking the process.
                    for tx in &core.shard_txs[..threads.len()] {
                        let _ = tx.send(ShardEvent::Stop);
                    }
                    for t in threads {
                        let _ = t.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok((ShardedNet { core, threads }, started))
    }
}

/// A running sharded multi-group network.
///
/// Dropping the net stops the worker pool.
///
/// # Example
///
/// ```
/// use b2b_crypto::PartyId;
/// use b2b_net::{GroupId, NetNode, NodeCtx, ShardedNet};
/// use std::time::Duration;
///
/// struct Counter { id: PartyId, seen: u32 }
/// impl NetNode for Counter {
///     fn id(&self) -> PartyId { self.id.clone() }
///     fn on_message(&mut self, _f: &PartyId, _p: &[u8], _c: &mut NodeCtx) { self.seen += 1; }
/// }
///
/// let net = ShardedNet::builder()
///     .add_group(GroupId(0), vec![
///         Counter { id: PartyId::new("a"), seen: 0 },
///         Counter { id: PartyId::new("b"), seen: 0 },
///     ])
///     .add_group(GroupId(1), vec![
///         Counter { id: PartyId::new("a"), seen: 0 },
///         Counter { id: PartyId::new("b"), seen: 0 },
///     ])
///     .spawn()
///     .expect("spawn worker pool");
/// net.handle(GroupId(1), &PartyId::new("a")).invoke(|_n, ctx| {
///     ctx.send(PartyId::new("b"), vec![1]);
/// });
/// let b = net.handle(GroupId(1), &PartyId::new("b"));
/// assert!(b.wait_until(Duration::from_secs(2), |n| n.seen == 1));
/// // Group 0's "b" saw nothing: groups are isolated.
/// assert_eq!(net.handle(GroupId(0), &PartyId::new("b")).read(|n| n.seen), 0);
/// ```
pub struct ShardedNet<N: NetNode> {
    core: Arc<Core<N>>,
    threads: Vec<JoinHandle<()>>,
}

impl<N: NetNode> ShardedNet<N> {
    /// Starts configuring a sharded net. Defaults: one shard per
    /// available CPU, [`DEFAULT_SHARD_INBOX_CAPACITY`], no telemetry
    /// sink.
    pub fn builder() -> ShardedNetBuilder<N> {
        ShardedNetBuilder {
            groups: Vec::new(),
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            inbox_capacity: DEFAULT_SHARD_INBOX_CAPACITY,
            telemetry: Telemetry::default(),
        }
    }

    /// Returns the handle for `party` in `gid`.
    ///
    /// # Panics
    ///
    /// Panics if the pair is unknown.
    pub fn handle(&self, gid: GroupId, party: &PartyId) -> GroupHandle<N> {
        let slot = self
            .core
            .slots
            .get(&(gid, party.clone()))
            .unwrap_or_else(|| panic!("unknown node {party} in {gid}"));
        GroupHandle {
            slot: Arc::clone(slot),
            core: Arc::clone(&self.core),
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.threads.len()
    }

    /// Runs `on_start` for every listed slot (registration order) —
    /// the second half of [`ShardedNetBuilder::spawn_without_start`].
    pub(crate) fn start_all(&self, started: &[(GroupId, PartyId)]) {
        for (gid, party) in started {
            self.handle(*gid, party).invoke(|n, ctx| n.on_start(ctx));
        }
    }

    /// Installs the transport that carries frames for parties without a
    /// local slot. First call wins; must happen before any engine runs
    /// (pair with [`ShardedNetBuilder::spawn_without_start`]).
    pub(crate) fn set_external_route(&self, route: Arc<dyn ExternalRoute>) {
        let _ = self.core.external.set(route);
    }

    /// An inbound sink delivering externally received frames to `to`'s
    /// slots on this net (every slot of one endpoint belongs to the same
    /// party). The transport calls it with the raw group id from the
    /// envelope and the sender learned from the connection's hello.
    pub(crate) fn injector(&self, to: PartyId) -> ExternalInjector {
        let core = Arc::clone(&self.core);
        Arc::new(move |gid_raw, from, frame| core.try_inject(gid_raw, from, to.clone(), frame))
    }

    /// Crashes `party` in `gid`: inbound frames are dropped, armed
    /// timers never fire, and the engine's `on_crash` runs (mirroring
    /// the simulator's crash semantics).
    pub fn crash(&self, gid: GroupId, party: &PartyId) {
        let slot = self.handle(gid, party).slot;
        let mut inner = slot.inner.lock();
        if !inner.crashed {
            inner.crashed = true;
            inner.epoch += 1;
            inner.node.on_crash();
            slot.cv.notify_all();
        }
    }

    /// Recovers a crashed `party` in `gid`, running the engine's
    /// `on_recover` and applying its effects.
    pub fn recover(&self, gid: GroupId, party: &PartyId) {
        let slot = self.handle(gid, party).slot;
        {
            let mut ctx = NodeCtx::new(self.core.now());
            let mut inner = slot.inner.lock();
            if !inner.crashed {
                return;
            }
            inner.crashed = false;
            inner.node.on_recover(&mut ctx);
            self.core.flush(&slot, &mut inner, &mut ctx);
            slot.cv.notify_all();
        }
        self.core.wake(slot.shard);
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        NetStats {
            sent: self.core.sent.load(Ordering::Relaxed),
            delivered: self.core.delivered.load(Ordering::Relaxed),
            dropped: self.core.dropped.load(Ordering::Relaxed),
            ..NetStats::default()
        }
    }

    /// Stops the worker pool and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        for tx in &self.core.shard_txs {
            let _ = tx.send(ShardEvent::Stop);
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<N: NetNode> Drop for ShardedNet<N> {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// The sharded net's clock and outbound routing as a [`Fabric`], so
/// engine-side code written against the fabric abstraction (none of the
/// protocol engines, but diagnostic tooling) can address one group.
pub struct GroupFabric<N: NetNode> {
    gid: GroupId,
    core: Arc<Core<N>>,
}

impl<N: NetNode> ShardedNet<N> {
    /// A [`Fabric`] view pinned to `gid`.
    pub fn fabric(&self, gid: GroupId) -> Arc<GroupFabric<N>> {
        Arc::new(GroupFabric {
            gid,
            core: Arc::clone(&self.core),
        })
    }
}

impl<N: NetNode> Fabric for GroupFabric<N> {
    fn now(&self) -> TimeMs {
        self.core.now()
    }

    fn send(&self, from: &PartyId, to: &PartyId, payload: Payload) {
        let Some(slot) = self.core.slots.get(&(self.gid, from.clone())) else {
            self.core.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut inner = slot.inner.lock();
        self.core.enqueue_out(slot, &mut inner, to, payload);
        self.core.drain_outbox(slot, &mut inner);
    }

    fn note_delivered(&self) {
        self.core.delivered.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct PingPong {
        id: PartyId,
        peer: PartyId,
        pings_received: u32,
        pongs_received: u32,
        timer_fires: u32,
        crashes: u32,
        recoveries: u32,
    }

    impl PingPong {
        fn new(id: &str, peer: &str) -> PingPong {
            PingPong {
                id: PartyId::new(id),
                peer: PartyId::new(peer),
                pings_received: 0,
                pongs_received: 0,
                timer_fires: 0,
                crashes: 0,
                recoveries: 0,
            }
        }
    }

    impl NetNode for PingPong {
        fn id(&self) -> PartyId {
            self.id.clone()
        }
        fn on_message(&mut self, from: &PartyId, payload: &[u8], ctx: &mut NodeCtx) {
            match payload {
                b"ping" => {
                    self.pings_received += 1;
                    ctx.send(from.clone(), b"pong".to_vec());
                }
                b"pong" => self.pongs_received += 1,
                _ => {}
            }
        }
        fn on_timer(&mut self, _timer: u64, _ctx: &mut NodeCtx) {
            self.timer_fires += 1;
        }
        fn on_crash(&mut self) {
            self.crashes += 1;
        }
        fn on_recover(&mut self, _ctx: &mut NodeCtx) {
            self.recoveries += 1;
        }
    }

    fn pair() -> Vec<PingPong> {
        vec![PingPong::new("a", "b"), PingPong::new("b", "a")]
    }

    #[test]
    fn groups_are_isolated_on_a_small_pool() {
        let net = ShardedNet::builder()
            .shards(2)
            .add_group(GroupId(0), pair())
            .add_group(GroupId(1), pair())
            .add_group(GroupId(2), pair())
            .spawn()
            .expect("spawn worker pool");
        for g in 0..3 {
            let a = net.handle(GroupId(g), &PartyId::new("a"));
            let peer = a.read(|n| n.peer.clone());
            a.invoke(|_n, ctx| ctx.send(peer, b"ping".to_vec()));
        }
        for g in 0..3 {
            let a = net.handle(GroupId(g), &PartyId::new("a"));
            assert!(
                a.wait_until(Duration::from_secs(5), |n| n.pongs_received == 1),
                "group {g} pong"
            );
            let b = net.handle(GroupId(g), &PartyId::new("b"));
            assert_eq!(
                b.read(|n| n.pings_received),
                1,
                "group {g} exactly one ping"
            );
        }
        assert_eq!(net.shard_count(), 2);
        net.shutdown();
    }

    #[test]
    fn timers_fire_from_the_shard_wheel() {
        let net = ShardedNet::builder()
            .shards(1)
            .add_group(GroupId(7), pair())
            .spawn()
            .expect("spawn worker pool");
        let a = net.handle(GroupId(7), &PartyId::new("a"));
        a.invoke(|_n, ctx| {
            ctx.set_timer(1, TimeMs(10));
            ctx.set_timer(2, TimeMs(40));
        });
        assert!(a.wait_until(Duration::from_secs(5), |n| n.timer_fires == 2));
        net.shutdown();
    }

    #[test]
    fn crash_drops_frames_and_timers_until_recovery() {
        let net = ShardedNet::builder()
            .shards(1)
            .add_group(GroupId(0), pair())
            .spawn()
            .expect("spawn worker pool");
        let gid = GroupId(0);
        let a_id = PartyId::new("a");
        let b_id = PartyId::new("b");
        let b = net.handle(gid, &b_id);
        // Arm a timer on b, then crash it: the timer must never fire.
        b.invoke(|_n, ctx| ctx.set_timer(9, TimeMs(10)));
        net.crash(gid, &b_id);
        assert_eq!(b.read(|n| n.crashes), 1);
        let a = net.handle(gid, &a_id);
        a.invoke(|_n, ctx| ctx.send(PartyId::new("b"), b"ping".to_vec()));
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(b.read(|n| (n.pings_received, n.timer_fires)), (0, 0));
        net.recover(gid, &b_id);
        assert_eq!(b.read(|n| n.recoveries), 1);
        // Delivery works again after recovery.
        a.invoke(|_n, ctx| ctx.send(PartyId::new("b"), b"ping".to_vec()));
        assert!(b.wait_until(Duration::from_secs(5), |n| n.pings_received == 1));
        assert!(
            !b.read(|n| n.timer_fires > 0),
            "crashed incarnation's timer stayed dead"
        );
        net.shutdown();
    }

    #[test]
    fn crash_with_parked_timers_cancels_near_and_overflow_entries() {
        let net = ShardedNet::builder()
            .shards(1)
            .add_group(GroupId(0), pair())
            .spawn()
            .expect("spawn worker pool");
        let gid = GroupId(0);
        let b_id = PartyId::new("b");
        let b = net.handle(gid, &b_id);
        // Park one timer inside the wheel horizon and one beyond it (the
        // overflow list), then crash with both still armed: they belong
        // to the dead incarnation and must be discarded lazily — on the
        // wheel pass for the near entry, and on the overflow re-hash
        // after the cursor wraps for the far one.
        b.invoke(|_n, ctx| {
            ctx.set_timer(1, TimeMs(50));
            ctx.set_timer(2, TimeMs(1_500));
        });
        net.crash(gid, &b_id);
        net.recover(gid, &b_id);
        // A timer armed by the recovered incarnation fires normally.
        b.invoke(|_n, ctx| ctx.set_timer(3, TimeMs(40)));
        assert!(b.wait_until(Duration::from_secs(5), |n| n.timer_fires == 1));
        // Outlive both stale deadlines (and the wheel wrap that re-hashes
        // the overflow entry): neither may fire.
        std::thread::sleep(Duration::from_millis(1_800));
        assert_eq!(
            b.read(|n| n.timer_fires),
            1,
            "a crashed incarnation's parked timers (near and overflow) must stay dead"
        );
        net.shutdown();
    }

    #[test]
    fn wheel_orders_near_far_and_overflow_deadlines() {
        let mut wheel = TimerWheel::new(TimeMs(0));
        let entry = |ms: u64, id: u64| TimerEntry {
            deadline: TimeMs(ms),
            gid: GroupId(0),
            party: PartyId::new("p"),
            timer_id: id,
            epoch: 0,
        };
        wheel.insert(entry(3, 1)); // same tick as now
        wheel.insert(entry(500, 2)); // mid-wheel
        wheel.insert(entry(5_000, 3)); // beyond the 1.024 s horizon
        assert_eq!(
            wheel
                .advance(TimeMs(4))
                .iter()
                .map(|e| e.timer_id)
                .collect::<Vec<_>>(),
            [1]
        );
        assert!(wheel.advance(TimeMs(400)).is_empty());
        assert_eq!(
            wheel
                .advance(TimeMs(600))
                .iter()
                .map(|e| e.timer_id)
                .collect::<Vec<_>>(),
            [2]
        );
        assert!(wheel.advance(TimeMs(4_900)).is_empty());
        assert_eq!(
            wheel
                .advance(TimeMs(5_003))
                .iter()
                .map(|e| e.timer_id)
                .collect::<Vec<_>>(),
            [3]
        );
        assert!(wheel.is_empty());
    }

    struct Recorder {
        id: PartyId,
        received: Vec<u8>,
    }

    impl NetNode for Recorder {
        fn id(&self) -> PartyId {
            self.id.clone()
        }
        fn on_message(&mut self, _from: &PartyId, payload: &[u8], _ctx: &mut NodeCtx) {
            self.received.push(payload[0]);
        }
    }

    #[test]
    fn backpressure_preserves_per_link_fifo() {
        // An inbox far smaller than the burst: the sender's outbox must
        // park head-of-line and drain in order — the coordination
        // protocols rely on per-link FIFO (the reliable layer dedups but
        // does not reorder), so a full inbox may delay frames, never
        // overtake or shed them.
        let net = ShardedNet::builder()
            .shards(1)
            .inbox_capacity(2)
            .add_group(
                GroupId(0),
                vec![
                    Recorder {
                        id: PartyId::new("a"),
                        received: Vec::new(),
                    },
                    Recorder {
                        id: PartyId::new("b"),
                        received: Vec::new(),
                    },
                ],
            )
            .spawn()
            .expect("spawn worker pool");
        let a = net.handle(GroupId(0), &PartyId::new("a"));
        a.invoke(|_n, ctx| {
            for i in 0..200u8 {
                ctx.send(PartyId::new("b"), vec![i]);
            }
        });
        let b = net.handle(GroupId(0), &PartyId::new("b"));
        assert!(b.wait_until(Duration::from_secs(10), |n| n.received.len() == 200));
        assert!(
            b.read(|n| n.received.iter().enumerate().all(|(i, &v)| v == i as u8)),
            "frames were reordered under backpressure"
        );
        assert_eq!(
            net.stats().dropped,
            0,
            "frames were shed under backpressure"
        );
        net.shutdown();
    }

    #[test]
    fn thousand_groups_on_a_small_pool_all_roundtrip() {
        let mut builder = ShardedNet::builder().shards(4);
        for g in 0..1000 {
            builder = builder.add_group(GroupId(g), pair());
        }
        let net = builder.spawn().expect("spawn worker pool");
        for g in 0..1000 {
            net.handle(GroupId(g), &PartyId::new("a"))
                .invoke(|_n, ctx| ctx.send(PartyId::new("b"), b"ping".to_vec()));
        }
        for g in 0..1000 {
            let a = net.handle(GroupId(g), &PartyId::new("a"));
            assert!(
                a.wait_until(Duration::from_secs(10), |n| n.pongs_received == 1),
                "group {g} roundtrip"
            );
        }
        let stats = net.stats();
        assert!(stats.delivered >= 2000);
        net.shutdown();
    }
}
