#![warn(missing_docs)]

//! Network substrate for the B2BObjects middleware.
//!
//! The coordination protocols (paper §4.2) assume "eventual, once-only
//! message delivery", with the middleware itself masking weaker channel
//! semantics. This crate provides:
//!
//! * [`node`] — the [`NetNode`] event-driven interface protocol engines
//!   implement, and the [`NodeCtx`] through which they send messages and
//!   arm timers;
//! * [`sim`] — a deterministic discrete-event network simulator with
//!   virtual time, seeded randomness, node crash/recovery and healing
//!   partitions;
//! * [`fault`] — per-link fault plans (drop, duplicate, delay, reorder);
//! * [`intruder`] — a programmable Dolev-Yao adversary that observes,
//!   removes, delays, replays and tampers with traffic;
//! * [`reliable`] — an ack/retransmit/dedup layer that presents the paper's
//!   assumed *eventual once-only delivery* on top of lossy links;
//! * [`inproc`] — a threaded in-process transport that drives the same
//!   engines concurrently (the role Java RMI played in the prototype);
//! * [`tcp`] — a transport over `std::net` OS sockets with length-prefixed
//!   framing and reconnecting per-peer connections, for crossing process
//!   and host boundaries;
//! * [`shard`] — a sharded multi-group runtime multiplexing thousands of
//!   coordination groups over a fixed worker pool, with per-shard timer
//!   wheels and group-enveloped frames;
//! * [`poll`] — bounded condition-polling helpers for tests against the
//!   real-clock transports;
//! * [`httpd`] — reusable dependency-free HTTP/1.1 plumbing (readiness
//!   accept loop, joined worker pool, keep-alive) shared by the scrape
//!   endpoint and the `b2b-server` order service;
//! * [`scrape`] — a tiny HTTP responder serving the metrics registry in
//!   Prometheus text exposition format, for watching a live TCP fleet.

pub mod fault;
pub mod httpd;
pub mod inproc;
pub mod intruder;
pub mod node;
pub mod poll;
pub mod reliable;
pub mod scrape;
pub mod shard;
pub mod shard_tcp;
pub mod sim;
pub mod stats;
pub mod tcp;

pub use fault::FaultPlan;
pub use httpd::{HttpClient, HttpHandler, HttpRequest, HttpResponse, HttpServer};
pub use inproc::{Fabric, NodeHandle, ThreadedNet, DEFAULT_INBOX_CAPACITY};
pub use intruder::{
    InterceptAction, Intruder, PassThrough, ScriptAction, ScriptRule, ScriptedIntruder,
};
pub use node::{NetNode, NodeCtx, Payload};
pub use reliable::{ReliableMux, RELIABLE_TIMER_BASE};
pub use scrape::ScrapeServer;
pub use shard::{GroupHandle, GroupId, ShardedNet, ShardedNetBuilder};
pub use shard_tcp::{ShardedTcpConfig, ShardedTcpEndpoint, ShardedTcpNet};
pub use sim::SimNet;
pub use stats::NetStats;
pub use tcp::{TcpConfig, TcpEndpoint, TcpNet, MAX_FRAME_LEN};
