//! The event-driven node interface that protocol engines implement.
//!
//! Engines are deterministic state machines: every effect (send a message,
//! arm a timer) is expressed through the [`NodeCtx`] handed to each event
//! callback. The same engine then runs unmodified under the deterministic
//! simulator ([`crate::sim::SimNet`]) and the threaded in-process transport
//! ([`crate::inproc::ThreadedNet`]).

use b2b_crypto::{PartyId, TimeMs};
use std::sync::Arc;

/// A wire payload: reference-counted immutable bytes.
///
/// Multicast fan-out and retransmission both re-send the same bytes, so the
/// transports share one allocation instead of cloning `Vec<u8>`s; `Vec<u8>`
/// converts into a `Payload` wherever one is expected.
pub type Payload = Arc<[u8]>;

/// A network-attached protocol participant.
///
/// Implementations must be deterministic functions of (current state,
/// event): all randomness comes from seeded generators held in the node
/// state, and all time comes from [`NodeCtx::now`].
pub trait NetNode: Send + 'static {
    /// This node's identity on the network.
    fn id(&self) -> PartyId;

    /// Called once when the network starts (or the node is added).
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        let _ = ctx;
    }

    /// Called for every payload delivered to this node.
    fn on_message(&mut self, from: &PartyId, payload: &[u8], ctx: &mut NodeCtx);

    /// Called when a timer armed via [`NodeCtx::set_timer`] fires.
    fn on_timer(&mut self, timer: u64, ctx: &mut NodeCtx) {
        let _ = (timer, ctx);
    }

    /// Called when the node crashes: volatile state is about to be lost.
    ///
    /// Implementations simulating crash-recovery should discard any state
    /// not held in persistent storage.
    fn on_crash(&mut self) {}

    /// Called when a crashed node recovers and rejoins the network.
    fn on_recover(&mut self, ctx: &mut NodeCtx) {
        let _ = ctx;
    }
}

/// The effect context handed to every [`NetNode`] callback.
///
/// Records sends and timer requests; the driving network applies them after
/// the callback returns.
///
/// # Example
///
/// ```
/// use b2b_crypto::{PartyId, TimeMs};
/// use b2b_net::NodeCtx;
///
/// let mut ctx = NodeCtx::new(TimeMs(100));
/// ctx.send(PartyId::new("peer"), b"hello".to_vec());
/// ctx.set_timer(1, TimeMs(50));
/// assert_eq!(ctx.now(), TimeMs(100));
/// assert_eq!(ctx.take_outgoing().len(), 1);
/// assert_eq!(ctx.take_timers(), vec![(1, TimeMs(50))]);
/// ```
#[derive(Debug)]
pub struct NodeCtx {
    now: TimeMs,
    outgoing: Vec<(PartyId, Payload)>,
    timers: Vec<(u64, TimeMs)>,
}

impl NodeCtx {
    /// Creates a context at the given time.
    pub fn new(now: TimeMs) -> NodeCtx {
        NodeCtx {
            now,
            outgoing: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// The current (virtual or real) time.
    pub fn now(&self) -> TimeMs {
        self.now
    }

    /// Queues `payload` for delivery to `to`.
    ///
    /// Accepts anything convertible into a [`Payload`]; pass a `Payload`
    /// clone to fan the same allocation out to several peers.
    pub fn send(&mut self, to: PartyId, payload: impl Into<Payload>) {
        self.outgoing.push((to, payload.into()));
    }

    /// Arms timer `id` to fire `after` from now.
    ///
    /// Timer ids are chosen by the engine; an id may be re-armed, in which
    /// case both firings are delivered (engines treat stale firings as
    /// no-ops).
    pub fn set_timer(&mut self, id: u64, after: TimeMs) {
        self.timers.push((id, after));
    }

    /// Drains the queued sends (driver use).
    pub fn take_outgoing(&mut self) -> Vec<(PartyId, Payload)> {
        std::mem::take(&mut self.outgoing)
    }

    /// Drains the queued timer requests (driver use).
    pub fn take_timers(&mut self) -> Vec<(u64, TimeMs)> {
        std::mem::take(&mut self.timers)
    }

    /// Returns `true` if no effects are queued.
    pub fn is_quiet(&self) -> bool {
        self.outgoing.is_empty() && self.timers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_records_and_drains_effects() {
        let mut ctx = NodeCtx::new(TimeMs(5));
        assert!(ctx.is_quiet());
        ctx.send(PartyId::new("a"), vec![1]);
        ctx.send(PartyId::new("b"), vec![2]);
        ctx.set_timer(9, TimeMs(10));
        assert!(!ctx.is_quiet());
        let out = ctx.take_outgoing();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, PartyId::new("a"));
        assert_eq!(ctx.take_timers(), vec![(9, TimeMs(10))]);
        assert!(ctx.is_quiet());
    }
}
