//! A live Prometheus scrape endpoint for the metrics registry.
//!
//! [`ScrapeServer`] is a thin wrapper over the reusable HTTP plumbing in
//! [`crate::httpd`]: it binds an ephemeral loopback listener, answers
//! `GET /metrics` (or `GET /`) with the registry snapshot rendered in the
//! Prometheus text exposition format (version 0.0.4), and anything else
//! with `404`. One worker thread is plenty for a scraper; shutdown joins
//! both the accept thread and the worker — no leaked threads, no
//! throwaway unblocking connections.
//!
//! The registry handle is shared, so a scrape taken while a `TcpNet`
//! experiment is running observes the counters live. Determinism is not at
//! stake here: scraping reads a snapshot, it never mutates protocol state.

use crate::httpd::{HttpHandler, HttpResponse, HttpServer};
use b2b_telemetry::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A background HTTP responder serving one metrics registry.
///
/// # Example
///
/// ```
/// use b2b_net::ScrapeServer;
/// use b2b_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::default();
/// registry.add("rounds_committed", 3);
/// let server = ScrapeServer::bind(registry).expect("bind loopback");
/// let body = ScrapeServer::fetch(server.addr()).expect("scrape");
/// assert!(body.contains("b2b_rounds_committed 3"));
/// server.shutdown();
/// ```
pub struct ScrapeServer {
    server: HttpServer,
}

impl ScrapeServer {
    /// Binds an ephemeral loopback listener and starts serving `registry`.
    pub fn bind(registry: MetricsRegistry) -> io::Result<ScrapeServer> {
        let handler: HttpHandler = Arc::new(move |req| {
            if req.method == "GET" && (req.path == "/metrics" || req.path == "/") {
                HttpResponse {
                    status: 200,
                    content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
                    body: registry.snapshot().to_prometheus().into_bytes(),
                }
            } else {
                HttpResponse {
                    status: 404,
                    content_type: "text/plain; charset=utf-8".into(),
                    body: Vec::new(),
                }
            }
        });
        let server = HttpServer::bind("127.0.0.1:0", 1, handler)?;
        Ok(ScrapeServer { server })
    }

    /// The address scrapers should `GET /metrics` against.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Stops the responder and joins its accept + worker threads.
    pub fn shutdown(self) {
        self.server.shutdown();
    }

    /// Issues one `GET /metrics` against `addr` and returns the body.
    ///
    /// A convenience for tests and the `exp` binary; any real Prometheus
    /// (or `curl`) speaks the same bytes.
    pub fn fetch(addr: SocketAddr) -> io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: b2b\r\nConnection: close\r\n\r\n")?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        match response.split_once("\r\n\r\n") {
            Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "scrape did not answer 200",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_telemetry::names;

    #[test]
    fn scrape_returns_the_registry_in_prometheus_text() {
        let registry = MetricsRegistry::default();
        registry.add(names::ROUNDS_COMMITTED, 7);
        registry.observe(names::ROUND_LATENCY_MS, 42);
        let server = ScrapeServer::bind(registry.clone()).expect("bind");

        // Speak raw HTTP ourselves — the contract is bytes, not our helper.
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("text/plain; version=0.0.4"));
        let body = response.split_once("\r\n\r\n").expect("has body").1;
        assert_eq!(body, registry.snapshot().to_prometheus());
        assert!(body.contains("b2b_rounds_committed 7"));
        assert!(body.contains("b2b_round_latency_ms_count 1"));

        // A scrape taken later sees counters that moved in between.
        registry.add(names::ROUNDS_COMMITTED, 1);
        let again = ScrapeServer::fetch(server.addr()).expect("fetch");
        assert!(again.contains("b2b_rounds_committed 8"));
        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_a_404() {
        let server = ScrapeServer::bind(MetricsRegistry::default()).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"GET /health HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 404"));
        server.shutdown();
    }
}
