//! A live Prometheus scrape endpoint for the metrics registry.
//!
//! [`ScrapeServer`] is a deliberately tiny HTTP/1.1 responder: it binds an
//! ephemeral loopback listener, answers `GET /metrics` with the registry
//! snapshot rendered in the Prometheus text exposition format (version
//! 0.0.4), and anything else with `404`. One background thread, blocking
//! accepts, no HTTP library — the request line is all it reads.
//!
//! The registry handle is shared, so a scrape taken while a `TcpNet`
//! experiment is running observes the counters live. Determinism is not at
//! stake here: scraping reads a snapshot, it never mutates protocol state.

use b2b_telemetry::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A background HTTP responder serving one metrics registry.
///
/// # Example
///
/// ```
/// use b2b_net::ScrapeServer;
/// use b2b_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::default();
/// registry.add("rounds_committed", 3);
/// let server = ScrapeServer::bind(registry).expect("bind loopback");
/// let body = ScrapeServer::fetch(server.addr()).expect("scrape");
/// assert!(body.contains("b2b_rounds_committed 3"));
/// server.shutdown();
/// ```
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds an ephemeral loopback listener and starts serving `registry`.
    pub fn bind(registry: MetricsRegistry) -> io::Result<ScrapeServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = stop.clone();
        let handle = std::thread::Builder::new()
            .name("b2b-scrape".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_thread.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // A failed scrape is the scraper's problem, never ours.
                        let _ = serve_one(stream, &registry);
                    }
                }
            })?;
        Ok(ScrapeServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address scrapers should `GET /metrics` against.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the responder thread and closes the listener.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Issues one `GET /metrics` against `addr` and returns the body.
    ///
    /// A convenience for tests and the `exp` binary; any real Prometheus
    /// (or `curl`) speaks the same bytes.
    pub fn fetch(addr: SocketAddr) -> io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: b2b\r\nConnection: close\r\n\r\n")?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        match response.split_once("\r\n\r\n") {
            Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "scrape did not answer 200",
            )),
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Answers a single connection: `GET /metrics` → 200 with the exposition
/// text, everything else → 404.
fn serve_one(mut stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let line = request.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method == "GET" && (path == "/metrics" || path == "/") {
        let body = registry.snapshot().to_prometheus();
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        write!(
            stream,
            "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        )?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_telemetry::names;

    #[test]
    fn scrape_returns_the_registry_in_prometheus_text() {
        let registry = MetricsRegistry::default();
        registry.add(names::ROUNDS_COMMITTED, 7);
        registry.observe(names::ROUND_LATENCY_MS, 42);
        let server = ScrapeServer::bind(registry.clone()).expect("bind");

        // Speak raw HTTP ourselves — the contract is bytes, not our helper.
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("text/plain; version=0.0.4"));
        let body = response.split_once("\r\n\r\n").expect("has body").1;
        assert_eq!(body, registry.snapshot().to_prometheus());
        assert!(body.contains("b2b_rounds_committed 7"));
        assert!(body.contains("b2b_round_latency_ms_count 1"));

        // A scrape taken later sees counters that moved in between.
        registry.add(names::ROUNDS_COMMITTED, 1);
        let again = ScrapeServer::fetch(server.addr()).expect("fetch");
        assert!(again.contains("b2b_rounds_committed 8"));
        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_a_404() {
        let server = ScrapeServer::bind(MetricsRegistry::default()).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"GET /health HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 404"));
        server.shutdown();
    }
}
