//! Bounded condition polling for tests against real-clock transports.
//!
//! Sleep-and-assert tests encode a guess about scheduler latency and flake
//! the moment a loaded machine misses the guess. These helpers replace the
//! guess with a *bound*: poll the condition frequently, pass as soon as it
//! holds, and only fail after a generous deadline a healthy run never
//! approaches.

use std::time::{Duration, Instant};

/// How often conditions are re-evaluated.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// Polls `cond` every couple of milliseconds until it returns `true` or
/// `timeout` elapses; returns whether the condition held. The condition is
/// evaluated one final time at the deadline, so a condition that becomes
/// true exactly at timeout still passes.
pub fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return cond();
        }
        std::thread::sleep(POLL_INTERVAL);
    }
}

/// Polls `probe` until it returns `Some`, or fails after `timeout` with
/// `what` in the panic message. For tests that need the produced value.
pub fn wait_for_value<T>(timeout: Duration, what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = probe() {
            return v;
        }
        if Instant::now() >= deadline {
            match probe() {
                Some(v) => return v,
                None => panic!("condition '{what}' not reached within {timeout:?}"),
            }
        }
        std::thread::sleep(POLL_INTERVAL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn passes_as_soon_as_condition_holds() {
        let calls = AtomicU32::new(0);
        assert!(wait_for(Duration::from_secs(5), || {
            calls.fetch_add(1, Ordering::Relaxed) >= 3
        }));
        assert!(calls.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn times_out_on_never_true() {
        let start = Instant::now();
        assert!(!wait_for(Duration::from_millis(20), || false));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn value_probe_returns_value() {
        let calls = AtomicU32::new(0);
        let v = wait_for_value(Duration::from_secs(5), "five calls", || {
            let n = calls.fetch_add(1, Ordering::Relaxed);
            (n >= 5).then_some(n)
        });
        assert!(v >= 5);
    }

    #[test]
    #[should_panic(expected = "condition 'never' not reached")]
    fn value_probe_panics_on_timeout() {
        let _: u32 = wait_for_value(Duration::from_millis(10), "never", || None);
    }
}
