//! Multiplexed TCP transport for the sharded multi-group runtime: **one
//! socket pair per organisation endpoint carries every group**.
//!
//! The thread-per-connection transport ([`crate::tcp`]) spends one OS
//! thread per peer per direction and one syscall per frame. This module
//! replaces that socket model for the sharded runtime
//! ([`crate::shard`]) with a *readiness-driven* design — nonblocking
//! sockets driven by a single reactor thread per endpoint:
//!
//! * **Multiplexing** — frames already carry the [`crate::shard::GroupId`]
//!   envelope ([`crate::reliable::encode_group_frame`]), so one
//!   connection per peer endpoint carries the traffic of every group;
//!   the receiving reactor demuxes by group id straight into the shard
//!   map.
//! * **Write coalescing** — per poll round, every queued frame for a
//!   link is appended (`[u32 LE len][frame]`, the [`crate::tcp`]
//!   framing) to one write buffer and handed to the socket in as few
//!   `write(2)` calls as it will take; the
//!   [`names::MUX_FRAMES_SENT`]`/`[`names::MUX_WRITE_SYSCALLS`] ratio is
//!   the observed batching factor.
//! * **End-to-end FIFO backpressure** — the per-slot FIFO outboxes of
//!   the sharded runtime park (never shed, never reorder) when a link's
//!   bounded frame queue fills; inbound, a frame that finds its shard
//!   inbox full halts reads on that connection until it fits, so the
//!   TCP receive window pushes back on the sender. Pipelined rounds
//!   need per-link FIFO, and the reactor preserves it at every stage.
//! * **The reactor** — a hand-rolled `poll(2)` loop (raw syscall on
//!   Linux, a report-all-ready sleep elsewhere — the build is offline,
//!   no mio/tokio), one wake socket pair for cross-thread nudges, lazy
//!   connections with the same proven-healthy exponential backoff as
//!   the threaded transport: backoff resets only once a data frame
//!   crosses the new connection.
//!
//! Loss model: while a link is connected (or still on its first connect
//! attempt) frames queue losslessly; once a connect attempt *fails* the
//! queued frames are dropped — exactly the threaded transport's "a
//! connection reset is a temporary failure retransmission masks", so a
//! dead peer never wedges a healthy group's rounds.

use crate::node::{NetNode, Payload};
use crate::reliable::decode_group_frame;
use crate::shard::{
    ExternalInjector, ExternalRoute, GroupHandle, GroupId, RouteOffer, ShardedNet,
    DEFAULT_SHARD_INBOX_CAPACITY,
};
use crate::stats::NetStats;
use crate::tcp::MAX_FRAME_LEN;
use b2b_crypto::PartyId;
use b2b_telemetry::{names, Telemetry};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// poll(2) without libc
// ---------------------------------------------------------------------------

/// `struct pollfd`, as the kernel ABI defines it. Shared with the HTTP
/// plumbing in [`crate::httpd`], which waits on listener readiness with
/// the same primitive.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

pub(crate) const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

impl PollFd {
    pub(crate) fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    pub(crate) fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

/// Raw `poll(2)` on x86-64 Linux (syscall 7). The build is offline —
/// no libc crate — so the reactor makes the syscall itself.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> isize {
    let ret: isize;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 7isize => ret,
            in("rdi") fds.as_mut_ptr(),
            in("rsi") fds.len(),
            in("rdx") timeout_ms as isize,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Raw `ppoll` on aarch64 Linux (syscall 73; aarch64 has no plain
/// `poll`).
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
pub(crate) fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> isize {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    let ts = Timespec {
        tv_sec: i64::from(timeout_ms.max(0)) / 1000,
        tv_nsec: (i64::from(timeout_ms.max(0)) % 1000) * 1_000_000,
    };
    let ret: isize;
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") 73isize,
            inlateout("x0") fds.as_mut_ptr() as isize => ret,
            in("x1") fds.len(),
            in("x2") &ts as *const Timespec,
            in("x3") 0isize,
            in("x4") 0isize,
            options(nostack),
        );
    }
    ret
}

/// Portable fallback: a short sleep, then report every registered
/// interest as ready. Every socket the reactor owns is nonblocking, so
/// spurious readiness costs a `WouldBlock` syscall, never a stall.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub(crate) fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> isize {
    std::thread::sleep(Duration::from_millis(timeout_ms.clamp(0, 1) as u64));
    for f in fds.iter_mut() {
        f.revents = f.events;
    }
    fds.len() as isize
}

// ---------------------------------------------------------------------------
// Incremental frame decoding
// ---------------------------------------------------------------------------

/// Incremental decoder of the `[u32 LE length][payload]` stream,
/// resilient to arbitrary read-chunk boundaries: bytes accumulate until
/// a whole frame is available. A length prefix above [`MAX_FRAME_LEN`]
/// is unrecoverable (the stream cannot be resynchronised) and surfaces
/// as an error; a *parseable* frame with garbage inside is the caller's
/// problem — the stream itself stays in sync.
pub(crate) struct StreamDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl StreamDecoder {
    pub(crate) fn new() -> StreamDecoder {
        StreamDecoder {
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Appends freshly read bytes, compacting the consumed prefix.
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are
    /// needed, `Err` if the length prefix is malformed (oversized).
    pub(crate) fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME_LEN",
            ));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        let frame = self.buf[start..start + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(frame))
    }
}

/// Appends one `[u32 LE len][payload]` record to a write buffer.
fn push_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tunables of a [`ShardedTcpEndpoint`].
#[derive(Clone)]
pub struct ShardedTcpConfig {
    /// Worker shards per endpoint (0 = one per available CPU).
    pub shards: usize,
    /// Per-shard inbox bound (see
    /// [`crate::shard::DEFAULT_SHARD_INBOX_CAPACITY`]).
    pub inbox_capacity: usize,
    /// Frames queued per peer link before senders see backpressure
    /// (their outboxes park, FIFO intact).
    pub link_capacity: usize,
    /// Write-coalescing budget: queued frames are appended to a link's
    /// write buffer until it holds at least this many bytes, then
    /// written in as few syscalls as possible.
    pub coalesce_bytes: usize,
    /// Delay before the second connect attempt to a peer; doubles on
    /// every further consecutive failure.
    pub reconnect_base: Duration,
    /// Ceiling of the reconnect backoff.
    pub reconnect_max: Duration,
    /// Per-attempt connect timeout (the reactor connects inline, so
    /// this bounds how long one dead peer can stall the loop).
    pub connect_timeout: Duration,
    /// Sets `TCP_NODELAY` on every connection.
    pub nodelay: bool,
    /// Telemetry handle for the `mux_*` counters.
    pub telemetry: Telemetry,
}

impl ShardedTcpConfig {
    /// Defaults: auto shards, 16Ki shard inboxes, 4096-frame links,
    /// 256 KiB coalescing, 10 ms backoff base / 1 s cap, 250 ms connect
    /// timeout, `TCP_NODELAY` on, no telemetry sink.
    pub fn new() -> ShardedTcpConfig {
        ShardedTcpConfig {
            shards: 0,
            inbox_capacity: DEFAULT_SHARD_INBOX_CAPACITY,
            link_capacity: 4096,
            coalesce_bytes: 256 * 1024,
            reconnect_base: Duration::from_millis(10),
            reconnect_max: Duration::from_secs(1),
            connect_timeout: Duration::from_millis(250),
            nodelay: true,
            telemetry: Telemetry::default(),
        }
    }

    /// Overrides the worker-pool size.
    pub fn shards(mut self, shards: usize) -> ShardedTcpConfig {
        self.shards = shards;
        self
    }

    /// Overrides the per-shard inbox bound.
    pub fn inbox_capacity(mut self, capacity: usize) -> ShardedTcpConfig {
        self.inbox_capacity = capacity;
        self
    }

    /// Overrides the per-link frame-queue bound.
    pub fn link_capacity(mut self, capacity: usize) -> ShardedTcpConfig {
        assert!(capacity > 0, "link capacity must be positive");
        self.link_capacity = capacity;
        self
    }

    /// Attaches a telemetry handle.
    pub fn telemetry(mut self, telemetry: Telemetry) -> ShardedTcpConfig {
        self.telemetry = telemetry;
        self
    }
}

impl Default for ShardedTcpConfig {
    fn default() -> Self {
        ShardedTcpConfig::new()
    }
}

// ---------------------------------------------------------------------------
// Shared state between senders (shard workers) and the reactor
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MuxCounters {
    connects: AtomicU64,
    reconnects: AtomicU64,
    bytes_sent: AtomicU64,
    dropped: AtomicU64,
    io_errors: AtomicU64,
}

struct MuxShared {
    /// Peer → link index; frozen at spawn.
    peers: HashMap<PartyId, usize>,
    /// Per-link FIFO of group-enveloped frames awaiting the reactor.
    queues: Vec<Mutex<VecDeque<Payload>>>,
    /// Per-link kill requests (test hook).
    kills: Vec<AtomicBool>,
    link_capacity: usize,
    /// Writer half of the wake socket pair; one byte nudges the
    /// reactor out of `poll`.
    wake_tx: TcpStream,
    stop: AtomicBool,
    counters: MuxCounters,
}

impl MuxShared {
    fn wake(&self) {
        // Nonblocking: a full wake pipe means the reactor is already
        // behind on wakeups, which is wake enough.
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// The [`ExternalRoute`] a [`ShardedNet`] sends through: bounded
/// per-link FIFO queues drained by the reactor.
struct MuxRoute {
    shared: Arc<MuxShared>,
}

impl ExternalRoute for MuxRoute {
    fn try_send(&self, _gid: GroupId, to: &PartyId, frame: &Payload) -> RouteOffer {
        let Some(&idx) = self.shared.peers.get(to) else {
            return RouteOffer::Unroutable;
        };
        let mut q = self.shared.queues[idx].lock();
        if q.len() >= self.shared.link_capacity {
            return RouteOffer::Full;
        }
        let was_empty = q.is_empty();
        q.push_back(frame.clone());
        drop(q);
        if was_empty {
            self.shared.wake();
        }
        RouteOffer::Sent
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

/// One outbound link: this endpoint's connection *to* a peer (reads of
/// the peer's traffic arrive on the connection the peer opened to us).
struct OutLink {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Coalesced `[len][frame]` records not yet written.
    wbuf: Vec<u8>,
    /// Consumed prefix of `wbuf`.
    wpos: usize,
    /// Frames currently represented in `wbuf` (for loss accounting when
    /// a connection dies with the buffer non-empty).
    wbuf_frames: u64,
    /// Whether a data write has succeeded on the current connection —
    /// only then does the backoff reset (proven-healthy, as in
    /// [`crate::tcp`]).
    proven: bool,
    failures: u32,
    next_attempt_at: Option<Instant>,
    ever_connected: bool,
}

/// One accepted inbound connection.
struct InConn {
    stream: TcpStream,
    decoder: StreamDecoder,
    /// Learned from the hello frame.
    peer: Option<PartyId>,
    /// A decoded frame whose shard inbox was full; retried before any
    /// further read from this connection (per-link FIFO).
    pending: Option<(u64, Payload)>,
    dead: bool,
}

/// Locally accumulated telemetry, flushed to the registry every
/// [`FLUSH_EVERY_ROUNDS`] poll rounds.
#[derive(Default)]
struct LocalTel {
    poll_rounds: u64,
    frames_sent: u64,
    bytes_sent: u64,
    write_syscalls: u64,
    read_stalls: u64,
    bad_frames: u64,
}

const FLUSH_EVERY_ROUNDS: u64 = 64;
/// Read chunk size per `read(2)`.
const READ_CHUNK: usize = 64 * 1024;
/// Max read chunks per connection per poll round (fairness).
const READ_BURST: usize = 16;

struct Reactor {
    me: PartyId,
    cfg: ShardedTcpConfig,
    shared: Arc<MuxShared>,
    listener: TcpListener,
    wake_rx: TcpStream,
    inject: ExternalInjector,
    out: Vec<OutLink>,
    inbound: Vec<InConn>,
    tel: LocalTel,
}

impl Reactor {
    fn run(mut self) {
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            self.tel.poll_rounds += 1;
            self.apply_kills();
            self.retry_pending();
            self.connect_phase();
            self.write_phase();
            self.poll_phase();
            if self.tel.poll_rounds.is_multiple_of(FLUSH_EVERY_ROUNDS) {
                self.flush_tel();
            }
        }
        self.flush_tel();
        for link in &mut self.out {
            if let Some(s) = link.stream.take() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        for conn in &self.inbound {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    fn flush_tel(&mut self) {
        let t = &self.cfg.telemetry;
        let l = std::mem::take(&mut self.tel);
        if l.poll_rounds > 0 {
            t.add(names::MUX_POLL_ROUNDS, l.poll_rounds);
        }
        if l.frames_sent > 0 {
            t.add(names::MUX_FRAMES_SENT, l.frames_sent);
        }
        if l.bytes_sent > 0 {
            t.add(names::MUX_BYTES_SENT, l.bytes_sent);
        }
        if l.write_syscalls > 0 {
            t.add(names::MUX_WRITE_SYSCALLS, l.write_syscalls);
        }
        if l.read_stalls > 0 {
            t.add(names::MUX_READ_STALLS, l.read_stalls);
        }
        if l.bad_frames > 0 {
            t.add(names::MUX_BAD_FRAMES, l.bad_frames);
        }
    }

    /// Test hook: drop the current connection to a peer; queued frames
    /// stay queued and ride the reconnect.
    fn apply_kills(&mut self) {
        for i in 0..self.out.len() {
            if self.shared.kills[i].swap(false, Ordering::SeqCst) {
                self.drop_conn(i, false);
            }
        }
    }

    /// Drops link `i`'s connection; `failed` arms the backoff (I/O
    /// error) vs. a silent local drop (kill hook). Frames already
    /// coalesced into the write buffer are lost either way (the peer
    /// would see a torn tail) and counted dropped.
    fn drop_conn(&mut self, i: usize, failed: bool) {
        let link = &mut self.out[i];
        if let Some(s) = link.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        if link.wbuf_frames > 0 {
            self.shared
                .counters
                .dropped
                .fetch_add(link.wbuf_frames, Ordering::Relaxed);
        }
        link.wbuf.clear();
        link.wpos = 0;
        link.wbuf_frames = 0;
        link.proven = false;
        if failed {
            self.shared
                .counters
                .io_errors
                .fetch_add(1, Ordering::Relaxed);
            link.failures = link.failures.saturating_add(1);
            let delay = backoff_delay(
                self.cfg.reconnect_base,
                self.cfg.reconnect_max,
                link.failures,
            );
            link.next_attempt_at = Some(Instant::now() + delay);
            // A failed link sheds its queue: retransmission recovers,
            // and a dead peer must not wedge the sender's outboxes.
            let shed = {
                let mut q = self.shared.queues[i].lock();
                let n = q.len() as u64;
                q.clear();
                n
            };
            if shed > 0 {
                self.shared
                    .counters
                    .dropped
                    .fetch_add(shed, Ordering::Relaxed);
            }
        }
    }

    /// Re-offers frames whose shard inbox was full when they arrived.
    fn retry_pending(&mut self) {
        for conn in &mut self.inbound {
            if let Some((gid, frame)) = conn.pending.take() {
                let from = conn.peer.clone().expect("pending implies hello");
                if !(self.inject)(gid, from, frame.clone()) {
                    conn.pending = Some((gid, frame));
                }
            }
        }
    }

    /// Opens connections for links with queued traffic whose backoff
    /// window allows an attempt.
    fn connect_phase(&mut self) {
        for i in 0..self.out.len() {
            let needs = {
                let link = &self.out[i];
                link.stream.is_none() && !self.shared.queues[i].lock().is_empty()
            };
            if !needs {
                continue;
            }
            let now = Instant::now();
            if let Some(at) = self.out[i].next_attempt_at {
                if now < at {
                    continue;
                }
            }
            let link = &mut self.out[i];
            match TcpStream::connect_timeout(&link.addr, self.cfg.connect_timeout).and_then(|s| {
                s.set_nodelay(self.cfg.nodelay)?;
                s.set_nonblocking(true)?;
                Ok(s)
            }) {
                Ok(s) => {
                    link.stream = Some(s);
                    link.proven = false;
                    self.shared
                        .counters
                        .connects
                        .fetch_add(1, Ordering::Relaxed);
                    self.cfg.telemetry.inc(names::MUX_CONNECTS);
                    if link.ever_connected {
                        self.shared
                            .counters
                            .reconnects
                            .fetch_add(1, Ordering::Relaxed);
                        self.cfg.telemetry.inc(names::MUX_RECONNECTS);
                    }
                    link.ever_connected = true;
                    // The hello leads every connection; it does not
                    // count as a data frame for loss accounting.
                    push_frame(&mut link.wbuf, self.me.as_str().as_bytes());
                }
                Err(_) => {
                    self.drop_conn(i, true);
                }
            }
        }
    }

    /// Coalesces queued frames into each connected link's write buffer
    /// and writes until the socket would block.
    fn write_phase(&mut self) {
        for i in 0..self.out.len() {
            if self.out[i].stream.is_none() {
                continue;
            }
            loop {
                // Fill: append queued frames up to the coalescing budget.
                {
                    let link = &mut self.out[i];
                    if link.wbuf.len() - link.wpos < self.cfg.coalesce_bytes {
                        let mut q = self.shared.queues[i].lock();
                        while link.wbuf.len() - link.wpos < self.cfg.coalesce_bytes {
                            let Some(frame) = q.pop_front() else { break };
                            push_frame(&mut link.wbuf, &frame);
                            link.wbuf_frames += 1;
                            self.tel.frames_sent += 1;
                            self.tel.bytes_sent += frame.len() as u64;
                            self.shared
                                .counters
                                .bytes_sent
                                .fetch_add(frame.len() as u64, Ordering::Relaxed);
                        }
                    }
                    if link.wpos == link.wbuf.len() {
                        link.wbuf.clear();
                        link.wpos = 0;
                        link.wbuf_frames = 0;
                        break;
                    }
                }
                // Write: one syscall per iteration, stop on WouldBlock.
                let link = &mut self.out[i];
                let stream = link.stream.as_mut().expect("checked above");
                match stream.write(&link.wbuf[link.wpos..]) {
                    Ok(0) => {
                        self.drop_conn(i, true);
                        break;
                    }
                    Ok(n) => {
                        self.tel.write_syscalls += 1;
                        link.wpos += n;
                        if !link.proven {
                            // Proven healthy: data crossed the new
                            // connection, so backoff returns to base.
                            link.proven = true;
                            link.failures = 0;
                            link.next_attempt_at = None;
                        }
                        if link.wpos == link.wbuf.len() {
                            link.wbuf.clear();
                            link.wpos = 0;
                            link.wbuf_frames = 0;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.drop_conn(i, true);
                        break;
                    }
                }
            }
        }
    }

    /// Builds the pollfd set, waits for readiness, then services the
    /// wake pipe, the listener and every readable connection.
    fn poll_phase(&mut self) {
        let mut fds = Vec::with_capacity(2 + self.out.len() + self.inbound.len());
        fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
        fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
        let in_base = fds.len();
        for conn in &self.inbound {
            // A connection holding a pending frame stops reading: the
            // socket buffer, then the peer's send window, backs up.
            let events = if conn.pending.is_some() { 0 } else { POLLIN };
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
        }
        let out_base = fds.len();
        for link in &self.out {
            if let Some(s) = &link.stream {
                let mut events = POLLIN; // EOF/RST detection
                if link.wpos < link.wbuf.len() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(s.as_raw_fd(), events));
            } else {
                fds.push(PollFd::new(-1, 0)); // ignored by poll(2)
            }
        }
        let timeout = self.poll_timeout();
        let rc = sys_poll(&mut fds, timeout);
        if rc <= 0 {
            return; // timeout, EINTR or error: just run another round
        }
        if fds[0].readable() {
            let mut sink = [0u8; 256];
            while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        // Accept may grow `inbound`; only the pre-accept prefix has a
        // pollfd this round — newcomers are polled next round.
        let polled_inbound = self.inbound.len();
        if fds[1].readable() {
            self.accept_new();
        }
        for idx in 0..polled_inbound {
            if fds[in_base + idx].readable() {
                self.read_inbound(idx);
            }
        }
        self.inbound.retain(|c| !c.dead);
        for i in 0..self.out.len() {
            let pfd = fds[out_base + i];
            if self.out[i].stream.is_some() && (pfd.readable() || pfd.revents & POLLHUP != 0) {
                self.check_outbound(i);
            }
            let _ = pfd.writable(); // write retried at the top of the loop
        }
    }

    /// Next poll timeout: short when a reconnect or a pending inbound
    /// retry is due, long when idle.
    fn poll_timeout(&self) -> i32 {
        let mut timeout: i32 = 50;
        if self.inbound.iter().any(|c| c.pending.is_some()) {
            timeout = timeout.min(1);
        }
        let now = Instant::now();
        for (i, link) in self.out.iter().enumerate() {
            if link.stream.is_none() && !self.shared.queues[i].lock().is_empty() {
                let due = link
                    .next_attempt_at
                    .map(|at| at.saturating_duration_since(now).as_millis() as i32)
                    .unwrap_or(0);
                timeout = timeout.min(due.max(0));
            }
        }
        timeout
    }

    fn accept_new(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(self.cfg.nodelay);
                    self.inbound.push(InConn {
                        stream,
                        decoder: StreamDecoder::new(),
                        peer: None,
                        pending: None,
                        dead: false,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Reads from one inbound connection and delivers decoded frames
    /// into the shard map, stopping (without losing anything) when a
    /// shard inbox pushes back.
    fn read_inbound(&mut self, idx: usize) {
        let mut chunk = vec![0u8; READ_CHUNK];
        for _ in 0..READ_BURST {
            let conn = &mut self.inbound[idx];
            if conn.pending.is_some() || conn.dead {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.decoder.extend(&chunk[..n]);
                    self.deliver_decoded(idx);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    /// Drains complete frames out of a connection's decoder: the first
    /// is the hello, the rest are group-enveloped protocol frames.
    fn deliver_decoded(&mut self, idx: usize) {
        loop {
            let conn = &mut self.inbound[idx];
            let frame = match conn.decoder.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    // Malformed length prefix: the stream cannot be
                    // resynchronised; drop the connection (the peer
                    // reconnects; retransmission recovers).
                    self.shared
                        .counters
                        .io_errors
                        .fetch_add(1, Ordering::Relaxed);
                    conn.dead = true;
                    break;
                }
            };
            let Some(peer) = conn.peer.clone() else {
                match String::from_utf8(frame) {
                    Ok(name) => conn.peer = Some(PartyId::new(name)),
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
                continue;
            };
            // Torn/garbage inner frame: count it, drop it, carry on —
            // the length prefix kept the stream in sync.
            let Some((gid, _)) = decode_group_frame(&frame) else {
                self.tel.bad_frames += 1;
                continue;
            };
            let payload: Payload = frame.into();
            if !(self.inject)(gid, peer, payload.clone()) {
                self.tel.read_stalls += 1;
                conn.pending = Some((gid, payload));
                break;
            }
        }
    }

    /// Detects a closed/reset outbound connection early (the peer's
    /// acceptor never writes, so any read result other than
    /// `WouldBlock` means the connection is gone).
    fn check_outbound(&mut self, i: usize) {
        let Some(stream) = self.out[i].stream.as_mut() else {
            return;
        };
        let mut sink = [0u8; 64];
        match stream.read(&mut sink) {
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Ok(n) if n > 0 => {} // unexpected data; ignore
            _ => self.drop_conn(i, true),
        }
    }
}

/// Deterministic backoff (same law as [`crate::tcp`]): `0` for the
/// first attempt, then `base · 2^(failures-1)` capped at `max`.
fn backoff_delay(base: Duration, max: Duration, failures: u32) -> Duration {
    if failures == 0 {
        return Duration::ZERO;
    }
    let shift = failures - 1;
    let delay = if shift >= 32 {
        max
    } else {
        base.saturating_mul(1u32 << shift)
    };
    delay.min(max)
}

/// Loopback socket pair for waking the reactor (no `socketpair(2)`
/// without libc, so a localhost TCP pair stands in).
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let tx = TcpStream::connect(addr)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

// ---------------------------------------------------------------------------
// Endpoint
// ---------------------------------------------------------------------------

/// One organisation's multiplexed TCP presence: a [`ShardedNet`] holding
/// this party's slot in every group it participates in, bridged to the
/// other organisations through one reactor, one listener and one
/// outbound connection per peer — however many groups they share.
pub struct ShardedTcpEndpoint<N: NetNode> {
    net: ShardedNet<N>,
    shared: Arc<MuxShared>,
    reactor_thread: Option<JoinHandle<()>>,
    started_list: Vec<(GroupId, PartyId)>,
    started: bool,
    local_addr: SocketAddr,
}

impl<N: NetNode> ShardedTcpEndpoint<N> {
    /// Builds the endpoint for the party owning `nodes` (one engine per
    /// group, all with the same [`NetNode::id`]), listening on
    /// `listener` and connecting out to `peers`. Engines do **not**
    /// run `on_start` until [`ShardedTcpEndpoint::start`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, mixes party ids, or repeats a group.
    pub fn spawn_with_listener(
        nodes: Vec<(GroupId, N)>,
        listener: TcpListener,
        peers: Vec<(PartyId, SocketAddr)>,
        config: ShardedTcpConfig,
    ) -> io::Result<ShardedTcpEndpoint<N>> {
        assert!(!nodes.is_empty(), "an endpoint needs at least one slot");
        let me = nodes[0].1.id();
        for (_, node) in &nodes {
            assert_eq!(node.id(), me, "one endpoint carries one party");
        }
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let mut builder = ShardedNet::builder()
            .inbox_capacity(config.inbox_capacity)
            .telemetry(config.telemetry.clone());
        if config.shards > 0 {
            builder = builder.shards(config.shards);
        }
        for (gid, node) in nodes {
            builder = builder.add_group(gid, vec![node]);
        }
        let (net, started_list) = builder.spawn_without_start()?;

        let mut peer_index = HashMap::new();
        let mut out = Vec::new();
        for (peer, addr) in peers {
            if peer == me || peer_index.contains_key(&peer) {
                continue;
            }
            peer_index.insert(peer.clone(), out.len());
            out.push(OutLink {
                addr,
                stream: None,
                wbuf: Vec::new(),
                wpos: 0,
                wbuf_frames: 0,
                proven: false,
                failures: 0,
                next_attempt_at: None,
                ever_connected: false,
            });
        }
        let (wake_tx, wake_rx) = wake_pair()?;
        let shared = Arc::new(MuxShared {
            queues: (0..out.len())
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            kills: (0..out.len()).map(|_| AtomicBool::new(false)).collect(),
            peers: peer_index,
            link_capacity: config.link_capacity,
            wake_tx,
            stop: AtomicBool::new(false),
            counters: MuxCounters::default(),
        });
        net.set_external_route(Arc::new(MuxRoute {
            shared: Arc::clone(&shared),
        }));
        let reactor = Reactor {
            me: me.clone(),
            cfg: config,
            shared: Arc::clone(&shared),
            listener,
            wake_rx,
            inject: net.injector(me.clone()),
            out,
            inbound: Vec::new(),
            tel: LocalTel::default(),
        };
        let reactor_thread = std::thread::Builder::new()
            .name(format!("b2b-mux-{me}"))
            .spawn(move || reactor.run())?;
        Ok(ShardedTcpEndpoint {
            net,
            shared,
            reactor_thread: Some(reactor_thread),
            started_list,
            started: false,
            local_addr,
        })
    }

    /// Runs every engine's `on_start` (registration order). Idempotent;
    /// call once every peer endpoint is listening.
    pub fn start(&mut self) {
        if !self.started {
            self.started = true;
            self.net.start_all(&self.started_list);
        }
    }

    /// The handle for `party` in `gid` on this endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the pair is unknown here.
    pub fn handle(&self, gid: GroupId, party: &PartyId) -> GroupHandle<N> {
        self.net.handle(gid, party)
    }

    /// The address the endpoint accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Crashes this endpoint's slot of `party` in `gid` (see
    /// [`ShardedNet::crash`]).
    pub fn crash(&self, gid: GroupId, party: &PartyId) {
        self.net.crash(gid, party);
    }

    /// Recovers this endpoint's slot of `party` in `gid` (see
    /// [`ShardedNet::recover`]).
    pub fn recover(&self, gid: GroupId, party: &PartyId) {
        self.net.recover(gid, party);
    }

    /// Drops the outbound connection to `peer` (test hook). Queued
    /// frames survive and ride the reconnect; whatever was already
    /// coalesced for the socket is lost and re-covered by
    /// retransmission.
    pub fn kill_connection(&self, peer: &PartyId) {
        if let Some(&idx) = self.shared.peers.get(peer) {
            self.shared.kills[idx].store(true, Ordering::SeqCst);
            self.shared.wake();
        }
    }

    /// Traffic statistics so far: the sharded core's counters plus the
    /// socket-level ones.
    pub fn stats(&self) -> NetStats {
        let mut s = self.net.stats();
        let c = &self.shared.counters;
        s.dropped += c.dropped.load(Ordering::Relaxed);
        s.bytes_sent = c.bytes_sent.load(Ordering::Relaxed);
        s.connects = c.connects.load(Ordering::Relaxed);
        s.reconnects = c.reconnects.load(Ordering::Relaxed);
        s.io_errors = c.io_errors.load(Ordering::Relaxed);
        s
    }

    /// Stops the engines, then the reactor, and joins both.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake();
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }
}

impl<N: NetNode> Drop for ShardedTcpEndpoint<N> {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Loopback cluster
// ---------------------------------------------------------------------------

/// A single-process cluster of [`ShardedTcpEndpoint`]s on `127.0.0.1`:
/// one endpoint per distinct party, each carrying that party's slot of
/// every group, all traffic over real multiplexed sockets. The
/// multi-group counterpart of [`crate::tcp::TcpNet`].
pub struct ShardedTcpNet<N: NetNode> {
    endpoints: HashMap<PartyId, ShardedTcpEndpoint<N>>,
}

impl<N: NetNode> ShardedTcpNet<N> {
    /// Splits `groups` by party, binds one ephemeral loopback listener
    /// per party, wires every endpoint to every other and runs each
    /// engine's `on_start`.
    ///
    /// # Panics
    ///
    /// Panics if a group repeats a party id.
    pub fn spawn_loopback(groups: Vec<(GroupId, Vec<N>)>) -> io::Result<ShardedTcpNet<N>> {
        ShardedTcpNet::spawn_loopback_with(groups, ShardedTcpConfig::default())
    }

    /// [`ShardedTcpNet::spawn_loopback`] with explicit configuration.
    pub fn spawn_loopback_with(
        groups: Vec<(GroupId, Vec<N>)>,
        config: ShardedTcpConfig,
    ) -> io::Result<ShardedTcpNet<N>> {
        // Partition slots by party, preserving group registration order.
        let mut order: Vec<PartyId> = Vec::new();
        let mut per_party: HashMap<PartyId, Vec<(GroupId, N)>> = HashMap::new();
        for (gid, nodes) in groups {
            let mut seen: Vec<PartyId> = Vec::new();
            for node in nodes {
                let id = node.id();
                assert!(!seen.contains(&id), "duplicate node id {id} in {gid}");
                seen.push(id.clone());
                if !per_party.contains_key(&id) {
                    order.push(id.clone());
                }
                per_party.entry(id).or_default().push((gid, node));
            }
        }
        // Bind all listeners first so every endpoint knows every address.
        let mut listeners = HashMap::new();
        let mut peers = Vec::new();
        for party in &order {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            peers.push((party.clone(), listener.local_addr()?));
            listeners.insert(party.clone(), listener);
        }
        let mut endpoints = HashMap::new();
        for party in order {
            let listener = listeners.remove(&party).expect("bound above");
            let nodes = per_party.remove(&party).expect("partitioned above");
            let ep = ShardedTcpEndpoint::spawn_with_listener(
                nodes,
                listener,
                peers.clone(),
                config.clone(),
            )?;
            endpoints.insert(party, ep);
        }
        for ep in endpoints.values_mut() {
            ep.start();
        }
        Ok(ShardedTcpNet { endpoints })
    }

    /// Returns the endpoint of `party`.
    ///
    /// # Panics
    ///
    /// Panics if `party` is unknown.
    pub fn endpoint(&self, party: &PartyId) -> &ShardedTcpEndpoint<N> {
        self.endpoints
            .get(party)
            .unwrap_or_else(|| panic!("unknown party {party}"))
    }

    /// Returns the handle for `party` in `gid`.
    ///
    /// # Panics
    ///
    /// Panics if the pair is unknown.
    pub fn handle(&self, gid: GroupId, party: &PartyId) -> GroupHandle<N> {
        self.endpoint(party).handle(gid, party)
    }

    /// Crashes `party`'s slot in `gid` (mirrors [`ShardedNet::crash`]).
    pub fn crash(&self, gid: GroupId, party: &PartyId) {
        self.endpoint(party).crash(gid, party);
    }

    /// Recovers `party`'s slot in `gid` (mirrors
    /// [`ShardedNet::recover`]).
    pub fn recover(&self, gid: GroupId, party: &PartyId) {
        self.endpoint(party).recover(gid, party);
    }

    /// Drops both directions of the `a`↔`b` socket pair (test hook) —
    /// and with it, mid-flight frames of *every* group they share.
    pub fn kill_connection(&self, a: &PartyId, b: &PartyId) {
        self.endpoint(a).kill_connection(b);
        self.endpoint(b).kill_connection(a);
    }

    /// Traffic statistics summed over every endpoint.
    pub fn stats(&self) -> NetStats {
        let mut total = NetStats::default();
        for ep in self.endpoints.values() {
            let s = ep.stats();
            total.sent += s.sent;
            total.delivered += s.delivered;
            total.dropped += s.dropped;
            total.bytes_sent += s.bytes_sent;
            total.connects += s.connects;
            total.reconnects += s.reconnects;
            total.io_errors += s.io_errors;
        }
        total
    }

    /// Stops every endpoint.
    pub fn shutdown(mut self) {
        for (_, ep) in self.endpoints.drain() {
            ep.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeCtx;
    use crate::poll::wait_for;
    use crate::reliable::{encode_group_frame, GROUP_ENVELOPE_LEN};
    use b2b_crypto::TimeMs;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct PingPong {
        id: PartyId,
        pings_received: u32,
        pongs_received: u32,
        timer_fired: bool,
    }

    impl PingPong {
        fn new(id: &str) -> PingPong {
            PingPong {
                id: PartyId::new(id),
                pings_received: 0,
                pongs_received: 0,
                timer_fired: false,
            }
        }
    }

    impl NetNode for PingPong {
        fn id(&self) -> PartyId {
            self.id.clone()
        }
        fn on_message(&mut self, from: &PartyId, payload: &[u8], ctx: &mut NodeCtx) {
            match payload {
                b"ping" => {
                    self.pings_received += 1;
                    ctx.send(from.clone(), b"pong".to_vec());
                }
                b"pong" => self.pongs_received += 1,
                _ => {}
            }
        }
        fn on_timer(&mut self, _timer: u64, _ctx: &mut NodeCtx) {
            self.timer_fired = true;
        }
    }

    fn pair() -> Vec<PingPong> {
        vec![PingPong::new("a"), PingPong::new("b")]
    }

    #[test]
    fn groups_share_one_socket_pair_and_stay_isolated() {
        let net = ShardedTcpNet::spawn_loopback(vec![
            (GroupId(0), pair()),
            (GroupId(1), pair()),
            (GroupId(2), pair()),
        ])
        .unwrap();
        for g in 0..3 {
            net.handle(GroupId(g), &PartyId::new("a"))
                .invoke(|_n, ctx| ctx.send(PartyId::new("b"), b"ping".to_vec()));
        }
        for g in 0..3 {
            let a = net.handle(GroupId(g), &PartyId::new("a"));
            assert!(
                a.wait_until(Duration::from_secs(10), |n| n.pongs_received == 1),
                "group {g} roundtrip"
            );
            assert_eq!(
                net.handle(GroupId(g), &PartyId::new("b"))
                    .read(|n| n.pings_received),
                1,
                "group {g} got exactly its own ping"
            );
        }
        let stats = net.stats();
        // One socket pair carried all three groups: exactly one outbound
        // connection per endpoint, not one per group.
        assert_eq!(stats.connects, 2, "one connection per direction, total");
        assert!(stats.bytes_sent > 0);
        assert_eq!(stats.dropped, 0, "healthy links are lossless");
        net.shutdown();
    }

    #[test]
    fn timers_fire_on_the_sharded_tcp_runtime() {
        let net = ShardedTcpNet::spawn_loopback(vec![(GroupId(0), pair())]).unwrap();
        let a = net.handle(GroupId(0), &PartyId::new("a"));
        a.invoke(|_n, ctx| ctx.set_timer(1, TimeMs(20)));
        assert!(a.wait_until(Duration::from_secs(5), |n| n.timer_fired));
        net.shutdown();
    }

    struct Recorder {
        id: PartyId,
        received: Vec<u32>,
    }

    impl NetNode for Recorder {
        fn id(&self) -> PartyId {
            self.id.clone()
        }
        fn on_message(&mut self, _from: &PartyId, payload: &[u8], _ctx: &mut NodeCtx) {
            self.received
                .push(u32::from_le_bytes(payload[..4].try_into().unwrap()));
        }
    }

    fn recorder_pair() -> Vec<Recorder> {
        vec![
            Recorder {
                id: PartyId::new("a"),
                received: Vec::new(),
            },
            Recorder {
                id: PartyId::new("b"),
                received: Vec::new(),
            },
        ]
    }

    #[test]
    fn backpressure_across_the_socket_preserves_fifo_losslessly() {
        // Tiny link queue and shard inboxes: every stage of the path
        // (outbox → link queue → socket → shard inbox) must park rather
        // than shed or reorder.
        let cfg = ShardedTcpConfig::new()
            .shards(1)
            .link_capacity(4)
            .inbox_capacity(4);
        let net =
            ShardedTcpNet::spawn_loopback_with(vec![(GroupId(0), recorder_pair())], cfg).unwrap();
        let a = net.handle(GroupId(0), &PartyId::new("a"));
        a.invoke(|_n, ctx| {
            for i in 0..500u32 {
                ctx.send(PartyId::new("b"), i.to_le_bytes().to_vec());
            }
        });
        let b = net.handle(GroupId(0), &PartyId::new("b"));
        assert!(
            b.wait_until(Duration::from_secs(30), |n| n.received.len() == 500),
            "all 500 frames arrive"
        );
        assert!(
            b.read(|n| n.received.iter().enumerate().all(|(i, &v)| v == i as u32)),
            "frames were reordered under backpressure"
        );
        assert_eq!(
            net.stats().dropped,
            0,
            "frames were shed under backpressure"
        );
        net.shutdown();
    }

    #[test]
    fn killed_connection_recovers_and_later_frames_flow() {
        let net = ShardedTcpNet::spawn_loopback(vec![(GroupId(0), pair())]).unwrap();
        let a_id = PartyId::new("a");
        let b_id = PartyId::new("b");
        let a = net.handle(GroupId(0), &a_id);
        a.invoke(|_n, ctx| ctx.send(b_id.clone(), b"ping".to_vec()));
        assert!(a.wait_until(Duration::from_secs(10), |n| n.pongs_received == 1));
        net.kill_connection(&a_id, &b_id);
        let b = net.handle(GroupId(0), &b_id);
        assert!(wait_for(Duration::from_secs(10), || {
            let b_id = b_id.clone();
            a.invoke(move |_n, ctx| ctx.send(b_id, b"ping".to_vec()));
            b.read(|n| n.pings_received >= 2)
        }));
        assert!(net.stats().reconnects >= 1);
        net.shutdown();
    }

    // -- decoder & torn-frame handling -------------------------------------

    #[test]
    fn decoder_reassembles_frames_across_arbitrary_chunk_boundaries() {
        let frames: Vec<Vec<u8>> = vec![vec![1], vec![2; 300], Vec::new(), vec![3; 7]];
        let mut wire = Vec::new();
        for f in &frames {
            push_frame(&mut wire, f);
        }
        // Every split point of the byte stream must yield the same frames.
        for cut in 0..=wire.len() {
            let mut dec = StreamDecoder::new();
            dec.extend(&wire[..cut]);
            let mut got = Vec::new();
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
            dec.extend(&wire[cut..]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
            assert_eq!(got, frames, "split at {cut}");
        }
    }

    #[test]
    fn decoder_rejects_oversized_length_prefix() {
        let mut dec = StreamDecoder::new();
        dec.extend(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        dec.extend(&[0u8; 32]);
        assert!(dec.next_frame().is_err());
    }

    /// The satellite property test: a stream interleaving valid
    /// group-enveloped frames with torn (shorter than the envelope) and
    /// garbage frames, fed to the decoder in random chunks, must yield
    /// every frame intact and in order — the bad ones identifiable
    /// (envelope fails to parse) without ever desyncing the stream.
    #[test]
    fn torn_and_garbage_frames_never_desync_the_stream() {
        let mut rng = StdRng::seed_from_u64(0xB2B);
        for case in 0..50 {
            // Build a stream of mixed frames.
            let mut expected: Vec<(bool, Vec<u8>)> = Vec::new(); // (parses, bytes)
            let mut wire = Vec::new();
            for i in 0..40u32 {
                let frame: Vec<u8> = match rng.gen_range(0..4u32) {
                    // A valid enveloped frame.
                    0 | 1 => {
                        let body: Vec<u8> = (0..rng.gen_range(0..200u32))
                            .map(|_| rng.gen_range(0..=255u32) as u8)
                            .collect();
                        encode_group_frame(u64::from(i), &body)
                    }
                    // Torn: shorter than the 8-byte envelope.
                    2 => (0..rng.gen_range(0..GROUP_ENVELOPE_LEN as u32))
                        .map(|_| rng.gen_range(0..=255u32) as u8)
                        .collect(),
                    // Garbage that happens to be long enough: it parses
                    // as *some* group id — the shard map rejects unknown
                    // groups downstream; the stream layer stays in sync.
                    _ => (0..rng.gen_range(GROUP_ENVELOPE_LEN as u32..64))
                        .map(|_| rng.gen_range(0..=255u32) as u8)
                        .collect(),
                };
                let parses = decode_group_frame(&frame).is_some();
                push_frame(&mut wire, &frame);
                expected.push((parses, frame));
            }
            // Feed it in random chunks.
            let mut dec = StreamDecoder::new();
            let mut got = Vec::new();
            let mut torn_count = 0usize;
            let mut pos = 0;
            while pos < wire.len() {
                let n = rng.gen_range(1..=64.min(wire.len() - pos));
                dec.extend(&wire[pos..pos + n]);
                pos += n;
                while let Some(f) = dec.next_frame().unwrap() {
                    if decode_group_frame(&f).is_none() {
                        torn_count += 1; // dropped + counted, stream continues
                    }
                    got.push(f);
                }
            }
            let want_torn = expected.iter().filter(|(p, _)| !p).count();
            assert_eq!(torn_count, want_torn, "case {case}: torn frames counted");
            assert_eq!(
                got,
                expected.into_iter().map(|(_, f)| f).collect::<Vec<_>>(),
                "case {case}: every frame survives in order"
            );
        }
    }

    #[test]
    fn torn_frames_on_a_live_socket_are_counted_and_skipped() {
        // Drive a raw client against a live endpoint: hello, then a torn
        // frame (shorter than the group envelope), then a valid ping.
        // The ping must still arrive — the torn frame cost nothing but a
        // counter.
        let telemetry = Telemetry::new();
        let cfg = ShardedTcpConfig::new().telemetry(telemetry.clone());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let ep = ShardedTcpEndpoint::spawn_with_listener(
            vec![(GroupId(0), PingPong::new("b"))],
            listener,
            Vec::new(),
            cfg,
        )
        .unwrap();
        let mut client = TcpStream::connect(ep.local_addr()).unwrap();
        let mut wire = Vec::new();
        push_frame(&mut wire, b"a"); // hello
        push_frame(&mut wire, &[0xFF; 3]); // torn: < GROUP_ENVELOPE_LEN
        push_frame(&mut wire, &encode_group_frame(0, b"ping"));
        client.write_all(&wire).unwrap();
        let b = ep.handle(GroupId(0), &PartyId::new("b"));
        assert!(
            b.wait_until(Duration::from_secs(10), |n| n.pings_received == 1),
            "the valid frame after the torn one still arrives"
        );
        assert!(wait_for(Duration::from_secs(5), || {
            telemetry
                .metrics()
                .snapshot()
                .counter(names::MUX_BAD_FRAMES)
                == 1
        }));
        ep.shutdown();
    }

    #[test]
    fn write_coalescing_batches_frames_per_syscall() {
        let telemetry = Telemetry::new();
        let cfg = ShardedTcpConfig::new()
            .shards(1)
            .telemetry(telemetry.clone());
        let net =
            ShardedTcpNet::spawn_loopback_with(vec![(GroupId(0), recorder_pair())], cfg).unwrap();
        let a = net.handle(GroupId(0), &PartyId::new("a"));
        // One invoke queues a burst; the reactor should move it in far
        // fewer syscalls than frames.
        a.invoke(|_n, ctx| {
            for i in 0..400u32 {
                ctx.send(PartyId::new("b"), i.to_le_bytes().to_vec());
            }
        });
        let b = net.handle(GroupId(0), &PartyId::new("b"));
        assert!(b.wait_until(Duration::from_secs(10), |n| n.received.len() == 400));
        net.shutdown(); // flushes reactor-local telemetry
        let snap = telemetry.metrics().snapshot();
        let frames = snap.counter(names::MUX_FRAMES_SENT);
        let syscalls = snap.counter(names::MUX_WRITE_SYSCALLS);
        assert!(frames >= 400);
        assert!(
            syscalls * 2 <= frames,
            "coalescing must average >=2 frames/write, got {frames} frames in {syscalls} writes"
        );
    }
}
