//! Per-link fault plans for the network simulator.
//!
//! The paper's liveness guarantee holds "despite a bounded number of
//! temporary network and computer related failures" (§1). Fault plans make
//! those failures injectable and reproducible: message loss, duplication,
//! and delay jitter (which also produces reordering).

use b2b_crypto::TimeMs;
use serde::{Deserialize, Serialize};

/// The failure behaviour of a directed link (or of the whole network).
///
/// Construct with the builder-style setters; the default plan is a perfect
/// link with a fixed 1 ms delay.
///
/// Plans serialize to JSON so that a schedule explorer (`b2b-check`) can
/// emit the exact fault environment of a counterexample as a replayable
/// artifact and commit it as a regression fixture.
///
/// # Example
///
/// ```
/// use b2b_crypto::TimeMs;
/// use b2b_net::FaultPlan;
///
/// let lossy = FaultPlan::new()
///     .drop_rate(0.2)
///     .dup_rate(0.05)
///     .delay(TimeMs(5), TimeMs(50));
/// assert_eq!(lossy.drop_rate, 0.2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a datagram is silently dropped.
    pub drop_rate: f64,
    /// Probability in `[0, 1]` that a datagram is delivered twice.
    pub dup_rate: f64,
    /// Minimum one-way delay.
    pub min_delay: TimeMs,
    /// Maximum one-way delay (inclusive). Jitter between `min_delay` and
    /// `max_delay` reorders messages.
    pub max_delay: TimeMs,
}

impl FaultPlan {
    /// A perfect link: no loss, no duplication, fixed 1 ms delay.
    pub fn new() -> FaultPlan {
        FaultPlan {
            drop_rate: 0.0,
            dup_rate: 0.0,
            min_delay: TimeMs(1),
            max_delay: TimeMs(1),
        }
    }

    /// Sets the drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn drop_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "drop rate must be in [0,1]");
        self.drop_rate = rate;
        self
    }

    /// Sets the duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn dup_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "dup rate must be in [0,1]");
        self.dup_rate = rate;
        self
    }

    /// Sets the one-way delay window.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn delay(mut self, min: TimeMs, max: TimeMs) -> FaultPlan {
        assert!(min <= max, "min delay must not exceed max delay");
        self.min_delay = min;
        self.max_delay = max;
        self
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_perfect_link() {
        let p = FaultPlan::default();
        assert_eq!(p.drop_rate, 0.0);
        assert_eq!(p.dup_rate, 0.0);
        assert_eq!(p.min_delay, TimeMs(1));
        assert_eq!(p.max_delay, TimeMs(1));
    }

    #[test]
    fn builder_sets_fields() {
        let p = FaultPlan::new()
            .drop_rate(0.5)
            .dup_rate(0.25)
            .delay(TimeMs(2), TimeMs(9));
        assert_eq!(p.drop_rate, 0.5);
        assert_eq!(p.dup_rate, 0.25);
        assert_eq!(p.min_delay, TimeMs(2));
        assert_eq!(p.max_delay, TimeMs(9));
    }

    #[test]
    #[should_panic(expected = "drop rate")]
    fn rejects_out_of_range_drop() {
        let _ = FaultPlan::new().drop_rate(1.5);
    }

    #[test]
    #[should_panic(expected = "min delay")]
    fn rejects_inverted_delay_window() {
        let _ = FaultPlan::new().delay(TimeMs(5), TimeMs(1));
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let p = FaultPlan::new()
            .drop_rate(0.125)
            .dup_rate(0.25)
            .delay(TimeMs(3), TimeMs(40));
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        // The emitter is deterministic, so the serialized form is stable —
        // a committed counterexample fixture replays byte-identically.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}
