//! Dolev-Yao network intruder.
//!
//! §4.4 of the paper analyses the protocol against "the well-known
//! Dolev-Yao intruder (who has full control over the network but cannot
//! perform cryptanalysis)": the intruder can observe every message, remove,
//! delay or replay messages, and — on insecure channels — modify the
//! *unsigned* parts of messages. This module makes that adversary a
//! pluggable component of the simulator so the paper's informal analysis
//! becomes executable tests.

use b2b_crypto::{PartyId, TimeMs};

/// What the intruder decides to do with one intercepted datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterceptAction {
    /// Deliver the datagram unchanged (subject to the link's fault plan).
    Deliver,
    /// Silently remove the datagram from the network.
    Drop,
    /// Deliver a modified payload in place of the original.
    ///
    /// Signed parts are protected by signatures, so meaningful tampering
    /// targets the unsigned parts; the protocol must detect the mismatch.
    Replace(Vec<u8>),
    /// Delay delivery by the given amount.
    Delay(TimeMs),
    /// Deliver the original and additionally inject extra datagrams
    /// (replays of recorded traffic, fabrications) at relative times.
    Inject(Vec<Injection>),
}

/// A datagram the intruder fabricates or replays into the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Claimed source of the injected datagram.
    pub from: PartyId,
    /// Destination.
    pub to: PartyId,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Delivery delay relative to now.
    pub after: TimeMs,
}

/// A network adversary with full control over traffic.
///
/// Installed on a [`crate::sim::SimNet`]; invoked for every datagram before
/// the link fault plan is applied.
pub trait Intruder: Send {
    /// Decides the fate of one datagram.
    fn intercept(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        payload: &[u8],
        now: TimeMs,
    ) -> InterceptAction;
}

/// The honest network: every datagram passes through untouched.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassThrough;

impl Intruder for PassThrough {
    fn intercept(
        &mut self,
        _from: &PartyId,
        _to: &PartyId,
        _payload: &[u8],
        _now: TimeMs,
    ) -> InterceptAction {
        InterceptAction::Deliver
    }
}

/// An intruder driven by a closure, for concise test scenarios.
///
/// # Example
///
/// ```
/// use b2b_net::intruder::{FnIntruder, InterceptAction, Intruder};
/// use b2b_crypto::{PartyId, TimeMs};
///
/// // Drop everything addressed to "victim".
/// let mut intruder = FnIntruder::new(|_from, to: &PartyId, _payload: &[u8], _now| {
///     if to.as_str() == "victim" { InterceptAction::Drop } else { InterceptAction::Deliver }
/// });
/// let act = intruder.intercept(&PartyId::new("a"), &PartyId::new("victim"), b"x", TimeMs(0));
/// assert_eq!(act, InterceptAction::Drop);
/// ```
pub struct FnIntruder<F> {
    f: F,
}

impl<F> FnIntruder<F>
where
    F: FnMut(&PartyId, &PartyId, &[u8], TimeMs) -> InterceptAction + Send,
{
    /// Wraps a closure as an intruder.
    pub fn new(f: F) -> FnIntruder<F> {
        FnIntruder { f }
    }
}

impl<F> Intruder for FnIntruder<F>
where
    F: FnMut(&PartyId, &PartyId, &[u8], TimeMs) -> InterceptAction + Send,
{
    fn intercept(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        payload: &[u8],
        now: TimeMs,
    ) -> InterceptAction {
        (self.f)(from, to, payload, now)
    }
}

/// An intruder that records every datagram it sees, for later replay.
///
/// Useful for replay-attack tests: record a run, then inject the recorded
/// messages into a later run and assert the protocol detects them.
#[derive(Debug, Default)]
pub struct Recorder {
    seen: Vec<(PartyId, PartyId, Vec<u8>, TimeMs)>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// All recorded datagrams, in observation order.
    pub fn seen(&self) -> &[(PartyId, PartyId, Vec<u8>, TimeMs)] {
        &self.seen
    }

    /// Takes the recorded datagrams, leaving the recorder empty.
    pub fn take(&mut self) -> Vec<(PartyId, PartyId, Vec<u8>, TimeMs)> {
        std::mem::take(&mut self.seen)
    }
}

impl Intruder for Recorder {
    fn intercept(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        payload: &[u8],
        now: TimeMs,
    ) -> InterceptAction {
        self.seen
            .push((from.clone(), to.clone(), payload.to_vec(), now));
        InterceptAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_delivers() {
        let mut p = PassThrough;
        assert_eq!(
            p.intercept(&PartyId::new("a"), &PartyId::new("b"), b"x", TimeMs(0)),
            InterceptAction::Deliver
        );
    }

    #[test]
    fn recorder_captures_traffic() {
        let mut r = Recorder::new();
        r.intercept(&PartyId::new("a"), &PartyId::new("b"), b"m1", TimeMs(1));
        r.intercept(&PartyId::new("b"), &PartyId::new("a"), b"m2", TimeMs(2));
        assert_eq!(r.seen().len(), 2);
        assert_eq!(r.seen()[0].2, b"m1".to_vec());
        let taken = r.take();
        assert_eq!(taken.len(), 2);
        assert!(r.seen().is_empty());
    }

    #[test]
    fn fn_intruder_applies_closure() {
        let mut i = FnIntruder::new(|_f: &PartyId, _t: &PartyId, p: &[u8], _n| {
            let mut flipped = p.to_vec();
            if let Some(b) = flipped.first_mut() {
                *b ^= 0xff;
            }
            InterceptAction::Replace(flipped)
        });
        let act = i.intercept(&PartyId::new("a"), &PartyId::new("b"), &[0x00], TimeMs(0));
        assert_eq!(act, InterceptAction::Replace(vec![0xff]));
    }
}
