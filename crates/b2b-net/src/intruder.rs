//! Dolev-Yao network intruder.
//!
//! §4.4 of the paper analyses the protocol against "the well-known
//! Dolev-Yao intruder (who has full control over the network but cannot
//! perform cryptanalysis)": the intruder can observe every message, remove,
//! delay or replay messages, and — on insecure channels — modify the
//! *unsigned* parts of messages. This module makes that adversary a
//! pluggable component of the simulator so the paper's informal analysis
//! becomes executable tests.

use b2b_crypto::{PartyId, TimeMs};
use serde::{Deserialize, Serialize};

/// What the intruder decides to do with one intercepted datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterceptAction {
    /// Deliver the datagram unchanged (subject to the link's fault plan).
    Deliver,
    /// Silently remove the datagram from the network.
    Drop,
    /// Deliver a modified payload in place of the original.
    ///
    /// Signed parts are protected by signatures, so meaningful tampering
    /// targets the unsigned parts; the protocol must detect the mismatch.
    Replace(Vec<u8>),
    /// Delay delivery by the given amount.
    Delay(TimeMs),
    /// Deliver the original and additionally inject extra datagrams
    /// (replays of recorded traffic, fabrications) at relative times.
    Inject(Vec<Injection>),
}

/// A datagram the intruder fabricates or replays into the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Claimed source of the injected datagram.
    pub from: PartyId,
    /// Destination.
    pub to: PartyId,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Delivery delay relative to now.
    pub after: TimeMs,
}

/// A network adversary with full control over traffic.
///
/// Installed on a [`crate::sim::SimNet`]; invoked for every datagram before
/// the link fault plan is applied.
pub trait Intruder: Send {
    /// Decides the fate of one datagram.
    fn intercept(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        payload: &[u8],
        now: TimeMs,
    ) -> InterceptAction;
}

/// The honest network: every datagram passes through untouched.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassThrough;

impl Intruder for PassThrough {
    fn intercept(
        &mut self,
        _from: &PartyId,
        _to: &PartyId,
        _payload: &[u8],
        _now: TimeMs,
    ) -> InterceptAction {
        InterceptAction::Deliver
    }
}

/// An intruder driven by a closure, for concise test scenarios.
///
/// # Example
///
/// ```
/// use b2b_net::intruder::{FnIntruder, InterceptAction, Intruder};
/// use b2b_crypto::{PartyId, TimeMs};
///
/// // Drop everything addressed to "victim".
/// let mut intruder = FnIntruder::new(|_from, to: &PartyId, _payload: &[u8], _now| {
///     if to.as_str() == "victim" { InterceptAction::Drop } else { InterceptAction::Deliver }
/// });
/// let act = intruder.intercept(&PartyId::new("a"), &PartyId::new("victim"), b"x", TimeMs(0));
/// assert_eq!(act, InterceptAction::Drop);
/// ```
pub struct FnIntruder<F> {
    f: F,
}

impl<F> FnIntruder<F>
where
    F: FnMut(&PartyId, &PartyId, &[u8], TimeMs) -> InterceptAction + Send,
{
    /// Wraps a closure as an intruder.
    pub fn new(f: F) -> FnIntruder<F> {
        FnIntruder { f }
    }
}

impl<F> Intruder for FnIntruder<F>
where
    F: FnMut(&PartyId, &PartyId, &[u8], TimeMs) -> InterceptAction + Send,
{
    fn intercept(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        payload: &[u8],
        now: TimeMs,
    ) -> InterceptAction {
        (self.f)(from, to, payload, now)
    }
}

/// An intruder that records every datagram it sees, for later replay.
///
/// Useful for replay-attack tests: record a run, then inject the recorded
/// messages into a later run and assert the protocol detects them.
#[derive(Debug, Default)]
pub struct Recorder {
    seen: Vec<(PartyId, PartyId, Vec<u8>, TimeMs)>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// All recorded datagrams, in observation order.
    pub fn seen(&self) -> &[(PartyId, PartyId, Vec<u8>, TimeMs)] {
        &self.seen
    }

    /// Takes the recorded datagrams, leaving the recorder empty.
    pub fn take(&mut self) -> Vec<(PartyId, PartyId, Vec<u8>, TimeMs)> {
        std::mem::take(&mut self.seen)
    }
}

impl Intruder for Recorder {
    fn intercept(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        payload: &[u8],
        now: TimeMs,
    ) -> InterceptAction {
        self.seen
            .push((from.clone(), to.clone(), payload.to_vec(), now));
        InterceptAction::Deliver
    }
}

// ---------------------------------------------------------------------------
// Serializable intruder scripts
// ---------------------------------------------------------------------------

/// What a [`ScriptRule`] does to its matched datagram.
///
/// This is the *serializable* enumeration of intruder capabilities: a
/// schedule explorer generates values of this type, and a shrunk
/// counterexample commits them to JSON so the exact adversarial schedule
/// replays byte-identically.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScriptAction {
    /// Remove the datagram from the network.
    Drop,
    /// Hold the datagram back for the given extra delay.
    Delay {
        /// Extra delivery delay on top of the link's fault plan.
        by: TimeMs,
    },
    /// Deliver the original and replay a copy later under a fresh
    /// reliable-layer identity (so the receiver's duplicate filter does
    /// not suppress it — see [`crate::reliable::reframe`]).
    Replay {
        /// Delay of the replayed copy relative to the original.
        after: TimeMs,
    },
}

/// One serializable rule of a [`ScriptedIntruder`]: act on the `nth`
/// reliable-layer DATA frame observed on a matching link. Each rule fires
/// at most once; acks and malformed traffic are never matched or counted.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptRule {
    /// Source filter (`None` matches any sender).
    pub from: Option<PartyId>,
    /// Destination filter (`None` matches any receiver).
    pub to: Option<PartyId>,
    /// 0-based index among the DATA frames this rule's `from`/`to` filter
    /// matched so far (each rule keeps its own match counter, so two rules
    /// with different filters count independently).
    pub nth: u64,
    /// What to do with the matched frame.
    pub action: ScriptAction,
}

/// Base epoch stamped on frames replayed by a [`ScriptedIntruder`];
/// recognisable in traces and guaranteed disjoint from the random epochs
/// honest muxes pick (they are drawn from the full `u64` space, so a clash
/// is possible in principle but has never been observed under test seeds —
/// and a clash only suppresses the replay, never corrupts state).
const REPLAY_EPOCH_BASE: u64 = 0xb2bc_0000_0000_0000;

/// A deterministic, serializable Dolev-Yao adversary.
///
/// Unlike [`FnIntruder`] (arbitrary code), a `ScriptedIntruder` is pure
/// data: a list of [`ScriptRule`]s interpreted against the traffic the
/// simulator routes. Because [`crate::SimNet`] is deterministic, the same
/// script against the same seed matches the same frames every run — which
/// is what lets `b2b-check` shrink a failing schedule and commit it as a
/// replayable JSON fixture.
#[derive(Debug, Clone, Default)]
pub struct ScriptedIntruder {
    rules: Vec<ScriptRule>,
    fired: Vec<bool>,
    /// Per-rule count of DATA frames that matched the rule's link filter.
    matched: Vec<u64>,
    replays: u64,
}

impl ScriptedIntruder {
    /// Builds an interpreter for `rules`.
    pub fn new(rules: Vec<ScriptRule>) -> ScriptedIntruder {
        let n = rules.len();
        ScriptedIntruder {
            rules,
            fired: vec![false; n],
            matched: vec![0; n],
            replays: 0,
        }
    }

    /// The script being interpreted.
    pub fn rules(&self) -> &[ScriptRule] {
        &self.rules
    }

    /// How many rules have fired so far.
    pub fn rules_fired(&self) -> usize {
        self.fired.iter().filter(|f| **f).count()
    }
}

impl Intruder for ScriptedIntruder {
    fn intercept(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        payload: &[u8],
        _now: TimeMs,
    ) -> InterceptAction {
        if !crate::reliable::is_data_frame(payload) {
            return InterceptAction::Deliver;
        }
        let mut decided: Option<ScriptAction> = None;
        for (i, rule) in self.rules.iter().enumerate() {
            let link_matches = rule.from.as_ref().is_none_or(|f| f == from)
                && rule.to.as_ref().is_none_or(|t| t == to);
            if !link_matches {
                continue;
            }
            let idx = self.matched[i];
            self.matched[i] += 1;
            if decided.is_none() && !self.fired[i] && idx == rule.nth {
                self.fired[i] = true;
                decided = Some(rule.action.clone());
            }
        }
        match decided {
            None => InterceptAction::Deliver,
            Some(ScriptAction::Drop) => InterceptAction::Drop,
            Some(ScriptAction::Delay { by }) => InterceptAction::Delay(by),
            Some(ScriptAction::Replay { after }) => {
                let epoch = REPLAY_EPOCH_BASE + self.replays;
                self.replays += 1;
                match crate::reliable::reframe(payload, epoch, 0) {
                    Some(copy) => InterceptAction::Inject(vec![Injection {
                        from: from.clone(),
                        to: to.clone(),
                        payload: copy,
                        after,
                    }]),
                    None => InterceptAction::Deliver,
                }
            }
        }
    }
}

/// Composes two intruders: `first` decides; when it delivers unchanged,
/// `second` decides. Used by checkers to stack a passive [`Recorder`] (or
/// an attack driver) in front of a [`ScriptedIntruder`].
pub struct Chain<A, B> {
    first: A,
    second: B,
}

impl<A: Intruder, B: Intruder> Chain<A, B> {
    /// Chains `first` before `second`.
    pub fn new(first: A, second: B) -> Chain<A, B> {
        Chain { first, second }
    }
}

impl<A: Intruder, B: Intruder> Intruder for Chain<A, B> {
    fn intercept(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        payload: &[u8],
        now: TimeMs,
    ) -> InterceptAction {
        match self.first.intercept(from, to, payload, now) {
            InterceptAction::Deliver => self.second.intercept(from, to, payload, now),
            other => other,
        }
    }
}

/// Shared observation tap: a [`Recorder`]-like intruder whose captured
/// traffic is readable from outside the simulator while it runs (the
/// simulator owns the intruder box, so a plain [`Recorder`] cannot be
/// inspected mid-run).
#[derive(Debug, Clone, Default)]
pub struct SharedTap {
    seen: std::sync::Arc<std::sync::Mutex<Vec<TappedFrame>>>,
}

/// One observed data frame: `(from, to, raw bytes, observation time)`.
pub type TappedFrame = (PartyId, PartyId, Vec<u8>, TimeMs);

impl SharedTap {
    /// Creates an empty tap.
    pub fn new() -> SharedTap {
        SharedTap::default()
    }

    /// A snapshot of everything observed so far, in observation order.
    pub fn seen(&self) -> Vec<TappedFrame> {
        self.seen.lock().expect("tap poisoned").clone()
    }
}

impl Intruder for SharedTap {
    fn intercept(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        payload: &[u8],
        now: TimeMs,
    ) -> InterceptAction {
        self.seen.lock().expect("tap poisoned").push((
            from.clone(),
            to.clone(),
            payload.to_vec(),
            now,
        ));
        InterceptAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_delivers() {
        let mut p = PassThrough;
        assert_eq!(
            p.intercept(&PartyId::new("a"), &PartyId::new("b"), b"x", TimeMs(0)),
            InterceptAction::Deliver
        );
    }

    #[test]
    fn recorder_captures_traffic() {
        let mut r = Recorder::new();
        r.intercept(&PartyId::new("a"), &PartyId::new("b"), b"m1", TimeMs(1));
        r.intercept(&PartyId::new("b"), &PartyId::new("a"), b"m2", TimeMs(2));
        assert_eq!(r.seen().len(), 2);
        assert_eq!(r.seen()[0].2, b"m1".to_vec());
        let taken = r.take();
        assert_eq!(taken.len(), 2);
        assert!(r.seen().is_empty());
    }

    fn data_frame(body: &[u8]) -> Vec<u8> {
        let mut f = vec![0u8]; // KIND_DATA
        f.extend_from_slice(&1u64.to_be_bytes()); // epoch
        f.extend_from_slice(&0u64.to_be_bytes()); // seq
        f.extend_from_slice(&[0u8; 17]); // trace context (untraced)
        f.extend_from_slice(body);
        f
    }

    #[test]
    fn script_rules_fire_once_on_the_nth_matching_frame() {
        let (a, b) = (PartyId::new("a"), PartyId::new("b"));
        let mut s = ScriptedIntruder::new(vec![ScriptRule {
            from: None,
            to: Some(b.clone()),
            nth: 1,
            action: ScriptAction::Drop,
        }]);
        let f = data_frame(b"m");
        // Frame 0 on the link: passes. Frame 1: dropped. Frame 2: passes
        // again (the rule is one-shot).
        assert_eq!(s.intercept(&a, &b, &f, TimeMs(0)), InterceptAction::Deliver);
        assert_eq!(s.intercept(&a, &b, &f, TimeMs(1)), InterceptAction::Drop);
        assert_eq!(s.intercept(&a, &b, &f, TimeMs(2)), InterceptAction::Deliver);
        assert_eq!(s.rules_fired(), 1);
        // Acks are invisible to scripts: not counted, not matched.
        let ack = {
            let mut f = vec![1u8];
            f.extend_from_slice(&[0u8; 33]);
            f
        };
        assert_eq!(
            s.intercept(&a, &b, &ack, TimeMs(3)),
            InterceptAction::Deliver
        );
    }

    #[test]
    fn script_replay_reframes_under_fresh_identity() {
        let (a, b) = (PartyId::new("a"), PartyId::new("b"));
        let mut s = ScriptedIntruder::new(vec![ScriptRule {
            from: Some(a.clone()),
            to: Some(b.clone()),
            nth: 0,
            action: ScriptAction::Replay { after: TimeMs(50) },
        }]);
        let f = data_frame(b"payload");
        match s.intercept(&a, &b, &f, TimeMs(0)) {
            InterceptAction::Inject(injs) => {
                assert_eq!(injs.len(), 1);
                assert_eq!(injs[0].after, TimeMs(50));
                assert_ne!(injs[0].payload, f, "replay must carry a fresh identity");
                assert_eq!(&injs[0].payload[34..], b"payload");
            }
            other => panic!("expected injection, got {other:?}"),
        }
    }

    #[test]
    fn script_json_roundtrip() {
        let rules = vec![
            ScriptRule {
                from: Some(PartyId::new("org0")),
                to: None,
                nth: 3,
                action: ScriptAction::Delay { by: TimeMs(120) },
            },
            ScriptRule {
                from: None,
                to: Some(PartyId::new("org2")),
                nth: 0,
                action: ScriptAction::Replay { after: TimeMs(7) },
            },
        ];
        let json = serde_json::to_string(&rules).unwrap();
        let back: Vec<ScriptRule> = serde_json::from_str(&json).unwrap();
        assert_eq!(rules, back);
    }

    #[test]
    fn chain_falls_through_on_deliver_only() {
        let (a, b) = (PartyId::new("a"), PartyId::new("b"));
        let tap = SharedTap::new();
        let drop_all =
            FnIntruder::new(|_f: &PartyId, _t: &PartyId, _p: &[u8], _n| InterceptAction::Drop);
        let mut chained = Chain::new(tap.clone(), drop_all);
        assert_eq!(
            chained.intercept(&a, &b, b"x", TimeMs(0)),
            InterceptAction::Drop
        );
        // The tap observed the frame even though the second stage dropped it.
        assert_eq!(tap.seen().len(), 1);
    }

    #[test]
    fn fn_intruder_applies_closure() {
        let mut i = FnIntruder::new(|_f: &PartyId, _t: &PartyId, p: &[u8], _n| {
            let mut flipped = p.to_vec();
            if let Some(b) = flipped.first_mut() {
                *b ^= 0xff;
            }
            InterceptAction::Replace(flipped)
        });
        let act = i.intercept(&PartyId::new("a"), &PartyId::new("b"), &[0x00], TimeMs(0));
        assert_eq!(act, InterceptAction::Replace(vec![0xff]));
    }
}
