//! TCP transport over OS sockets.
//!
//! The third [`NetNode`] driver, and the first that crosses process and
//! host boundaries: each [`TcpEndpoint`] runs one engine on its own event
//! loop (shared with the in-process transport via [`Fabric`]) and carries
//! its traffic over `std::net` sockets with length-prefixed frames.
//!
//! The design leans on the layering the paper assumes (§4.2): the
//! transport promises nothing beyond best-effort delivery, and the
//! [`crate::ReliableMux`] above it supplies eventual once-only delivery.
//! Concretely:
//!
//! * **Framing** — every message is `[u32 LE length][payload]`, capped at
//!   [`MAX_FRAME_LEN`]; the first frame on every connection is a *hello*
//!   carrying the sender's [`PartyId`], so connections are identified
//!   without trusting socket addresses (all integrity lives in the signed
//!   protocol layer anyway).
//! * **Connections** — one outbound connection per direction, opened
//!   lazily by the first send and re-opened on demand after a failure
//!   with deterministic exponential backoff (`base · 2^(n-1)`, capped).
//!   The backoff resets only once the new connection *carries a frame*:
//!   a peer that accepts and immediately resets keeps counting as a
//!   failure, so it cannot drive a tight connect/write loop. A frame
//!   that arrives while the link is down or still backing off is
//!   *dropped*: a connection reset is just another temporary failure that
//!   retransmission masks.
//! * **Zero copy** — payloads stay `Arc<[u8]>` ([`Payload`]) from the
//!   engine to the socket write, preserving the multicast fan-out path
//!   (one serialisation, n sends).
//! * **Shutdown** — `Stop` envelopes end the event loop, a self-connect
//!   wakes the accept loop, and reader/writer threads are joined, so a
//!   dropped endpoint leaves no runaway threads.

use crate::inproc::{
    send_bounded, spawn_node_thread, Envelope, Fabric, NodeHandle, DEFAULT_INBOX_CAPACITY,
};
use crate::node::{NetNode, Payload};
use crate::stats::NetStats;
use b2b_crypto::{PartyId, TimeMs};
use b2b_telemetry::{names, Telemetry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on a frame's payload length (16 MiB). A peer announcing a
/// larger frame is treated as malformed traffic and the connection is
/// dropped.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l as usize <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, "frame exceeds MAX_FRAME_LEN"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(Some(buf))
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tunables of a [`TcpEndpoint`].
#[derive(Clone)]
pub struct TcpConfig {
    /// Delay before the second connect attempt to a peer; doubles on every
    /// further consecutive failure (the first attempt is immediate).
    pub reconnect_base: Duration,
    /// Ceiling of the reconnect backoff.
    pub reconnect_max: Duration,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Sets `TCP_NODELAY` on every connection (latency over batching —
    /// protocol rounds are short request/response exchanges).
    pub nodelay: bool,
    /// Telemetry handle for transport counters
    /// ([`names::TCP_CONNECTS`] and friends).
    pub telemetry: Telemetry,
    /// Bound on the engine's inbox channel; a reader that finds it full
    /// stalls briefly and then sheds the frame (counted as
    /// [`names::INBOX_FULL_STALLS`]) — socket buffers then push back on
    /// the peer naturally.
    pub inbox_capacity: usize,
}

impl TcpConfig {
    /// Defaults: 10 ms backoff base, 1 s cap, 1 s connect timeout,
    /// `TCP_NODELAY` on, no telemetry sink, inbox bounded at
    /// [`DEFAULT_INBOX_CAPACITY`].
    pub fn new() -> TcpConfig {
        TcpConfig {
            reconnect_base: Duration::from_millis(10),
            reconnect_max: Duration::from_secs(1),
            connect_timeout: Duration::from_secs(1),
            nodelay: true,
            telemetry: Telemetry::default(),
            inbox_capacity: DEFAULT_INBOX_CAPACITY,
        }
    }

    /// Sets the reconnect backoff base.
    pub fn reconnect_base(mut self, base: Duration) -> TcpConfig {
        self.reconnect_base = base;
        self
    }

    /// Sets the reconnect backoff ceiling.
    pub fn reconnect_max(mut self, max: Duration) -> TcpConfig {
        self.reconnect_max = max;
        self
    }

    /// Attaches a telemetry handle.
    pub fn telemetry(mut self, telemetry: Telemetry) -> TcpConfig {
        self.telemetry = telemetry;
        self
    }

    /// Sets the engine inbox bound.
    pub fn inbox_capacity(mut self, capacity: usize) -> TcpConfig {
        self.inbox_capacity = capacity;
        self
    }
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig::new()
    }
}

/// Deterministic backoff after `failures` consecutive failed connect
/// attempts: `0` for the first attempt, then `base · 2^(failures-1)`
/// capped at `max`.
fn backoff_delay(base: Duration, max: Duration, failures: u32) -> Duration {
    if failures == 0 {
        return Duration::ZERO;
    }
    let shift = failures - 1;
    let delay = if shift >= 32 {
        max
    } else {
        base.saturating_mul(1u32 << shift)
    };
    delay.min(max)
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    bytes_sent: AtomicU64,
    connects: AtomicU64,
    reconnects: AtomicU64,
    io_errors: AtomicU64,
}

// ---------------------------------------------------------------------------
// Outbound links
// ---------------------------------------------------------------------------

enum LinkCmd {
    Frame(Payload),
    /// Drop the current connection (test hook; the next frame reconnects).
    Kill,
    Stop,
}

struct PeerLink {
    tx: Sender<LinkCmd>,
}

/// State owned by one outbound writer thread.
struct Writer {
    me: PartyId,
    peer_addr: SocketAddr,
    cfg: TcpConfig,
    counters: Arc<Counters>,
    stream: Option<TcpStream>,
    /// Consecutive failed connect attempts since the last success.
    failures: u32,
    /// Earliest instant the next connect attempt is allowed.
    next_attempt_at: Option<Instant>,
    ever_connected: bool,
}

impl Writer {
    fn run(mut self, rx: Receiver<LinkCmd>) {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                LinkCmd::Frame(payload) => self.send_frame(&payload),
                LinkCmd::Kill => self.drop_stream(),
                LinkCmd::Stop => break,
            }
        }
        self.drop_stream();
    }

    fn drop_stream(&mut self) {
        if let Some(s) = self.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    fn send_frame(&mut self, payload: &[u8]) {
        if self.stream.is_none() && !self.try_connect() {
            // Down and (still) backing off: the frame is lost, and that is
            // fine — the reliable layer retransmits, which is also what
            // drives the next connect attempt.
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let Some(stream) = self.stream.as_mut() else {
            // Defensive: no panic on the connect path — count and drop.
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        match write_frame(stream, payload) {
            Ok(()) => {
                // First data frame through the new connection proves the
                // link healthy: only now does backoff return to base.
                self.failures = 0;
                self.next_attempt_at = None;
            }
            Err(_e) => {
                // A reset mid-write loses this frame; the next one
                // reconnects. An established stream dying is a connect
                // failure too — arm the backoff, so an accept-then-reset
                // peer cannot drive a tight connect/write loop.
                self.drop_stream();
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                self.note_failure();
            }
        }
    }

    /// Counts one connect-path failure and arms the backoff window.
    fn note_failure(&mut self) {
        self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
        self.failures = self.failures.saturating_add(1);
        let delay = backoff_delay(
            self.cfg.reconnect_base,
            self.cfg.reconnect_max,
            self.failures,
        );
        self.next_attempt_at = Some(Instant::now() + delay);
    }

    /// Attempts to connect if the backoff window allows; returns whether a
    /// connection is now up. Deliberately does **not** reset the failure
    /// count: a successful connect proves nothing until a frame makes it
    /// through (see [`Writer::send_frame`]).
    fn try_connect(&mut self) -> bool {
        if let Some(at) = self.next_attempt_at {
            if Instant::now() < at {
                return false;
            }
        }
        match TcpStream::connect_timeout(&self.peer_addr, self.cfg.connect_timeout)
            .and_then(|s| {
                s.set_nodelay(self.cfg.nodelay)?;
                Ok(s)
            })
            .and_then(|mut s| {
                // Hello frame: identify ourselves to the acceptor.
                write_frame(&mut s, self.me.as_str().as_bytes())?;
                Ok(s)
            }) {
            Ok(s) => {
                self.stream = Some(s);
                self.counters.connects.fetch_add(1, Ordering::Relaxed);
                self.cfg.telemetry.inc(names::TCP_CONNECTS);
                if self.ever_connected {
                    self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                    self.cfg.telemetry.inc(names::TCP_RECONNECTS);
                }
                self.ever_connected = true;
                true
            }
            Err(_) => {
                self.note_failure();
                false
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The fabric: engine sends → writer threads
// ---------------------------------------------------------------------------

struct TcpFabric {
    start: Instant,
    links: HashMap<PartyId, PeerLink>,
    counters: Arc<Counters>,
    telemetry: Telemetry,
}

impl Fabric for TcpFabric {
    fn now(&self) -> TimeMs {
        TimeMs(self.start.elapsed().as_millis() as u64)
    }

    fn send(&self, _from: &PartyId, to: &PartyId, payload: Payload) {
        let Some(link) = self.links.get(to) else {
            // Unknown destination: undeliverable, silently lost.
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.telemetry.inc(names::TCP_FRAMES_SENT);
        self.telemetry
            .add(names::TCP_BYTES_SENT, payload.len() as u64);
        // The Arc moves to the writer thread: no payload copy until the
        // socket write itself.
        let _ = link.tx.send(LinkCmd::Frame(payload));
    }

    fn note_delivered(&self) {
        self.counters.delivered.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Inbound: accept loop + per-connection readers
// ---------------------------------------------------------------------------

/// Live inbound connections, so shutdown can unblock their readers.
#[derive(Default)]
struct ReaderRegistry {
    streams: Mutex<Vec<TcpStream>>,
}

impl ReaderRegistry {
    fn register(&self, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            self.streams.lock().push(clone);
        }
    }

    fn shutdown_all(&self) {
        for s in self.streams.lock().iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

fn reader_loop(mut stream: TcpStream, node_tx: Sender<Envelope>, telemetry: Telemetry) {
    // First frame is the hello naming the peer; a connection that fails to
    // say hello carries nothing we would trust anyway.
    let from = match read_frame(&mut stream) {
        Ok(Some(hello)) => match String::from_utf8(hello) {
            Ok(name) => PartyId::new(name),
            Err(_) => return,
        },
        _ => return,
    };
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let payload: Payload = frame.into();
        send_bounded(
            &node_tx,
            Envelope::Msg {
                from: from.clone(),
                payload,
            },
            &telemetry,
        );
    }
}

fn accept_loop(
    listener: TcpListener,
    running: Arc<AtomicBool>,
    node_tx: Sender<Envelope>,
    readers: Arc<ReaderRegistry>,
    reader_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    telemetry: Telemetry,
    counters: Arc<Counters>,
) {
    for conn in listener.incoming() {
        if !running.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        readers.register(&stream);
        let tx = node_tx.clone();
        let tel = telemetry.clone();
        match std::thread::Builder::new()
            .name("b2b-tcp-reader".into())
            .spawn(move || reader_loop(stream, tx, tel))
        {
            Ok(t) => reader_threads.lock().push(t),
            Err(_) => {
                // Out of threads is a recoverable condition: drop this
                // connection (the peer reconnects with backoff) and keep
                // accepting.
                counters.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Endpoint
// ---------------------------------------------------------------------------

/// One party's TCP presence: its engine, event loop, listener and
/// connection manager.
///
/// Single-process loopback clusters are easier to build with
/// [`TcpNet::spawn_loopback`]; use `TcpEndpoint` directly to place each
/// party in its own OS process (see `examples/tcp_tictactoe.rs`).
pub struct TcpEndpoint<N: NetNode> {
    handle: NodeHandle<N>,
    node_tx: Sender<Envelope>,
    node_thread: Option<JoinHandle<()>>,
    accept_thread: Option<JoinHandle<()>>,
    reader_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    writer_threads: Vec<JoinHandle<()>>,
    links: HashMap<PartyId, PeerLink>,
    readers: Arc<ReaderRegistry>,
    running: Arc<AtomicBool>,
    local_addr: SocketAddr,
    counters: Arc<Counters>,
    started: bool,
}

impl<N: NetNode> TcpEndpoint<N> {
    /// Binds `listen` and wires `node` to `peers`. Does **not** run the
    /// engine's `on_start` — call [`TcpEndpoint::start`] once every peer
    /// process is up (or immediately, if the engine's first sends may be
    /// lost and retried).
    pub fn spawn(
        node: N,
        listen: impl ToSocketAddrs,
        peers: Vec<(PartyId, SocketAddr)>,
        config: TcpConfig,
    ) -> io::Result<TcpEndpoint<N>> {
        let listener = TcpListener::bind(listen)?;
        TcpEndpoint::spawn_with_listener(node, listener, peers, config)
    }

    /// Like [`TcpEndpoint::spawn`] with a pre-bound listener (how loopback
    /// clusters learn every port before building any endpoint).
    pub fn spawn_with_listener(
        node: N,
        listener: TcpListener,
        peers: Vec<(PartyId, SocketAddr)>,
        config: TcpConfig,
    ) -> io::Result<TcpEndpoint<N>> {
        let local_addr = listener.local_addr()?;
        let me = node.id();
        let counters = Arc::new(Counters::default());
        let start = Instant::now();

        // Outbound: one writer thread per peer.
        let mut links = HashMap::new();
        let mut fabric_links = HashMap::new();
        let mut writer_threads = Vec::new();
        for (peer, addr) in peers {
            if peer == me {
                continue;
            }
            let (tx, rx) = unbounded();
            let writer = Writer {
                me: me.clone(),
                peer_addr: addr,
                cfg: config.clone(),
                counters: Arc::clone(&counters),
                stream: None,
                failures: 0,
                next_attempt_at: None,
                ever_connected: false,
            };
            // A spawn failure aborts endpoint construction as an
            // `io::Result` (dropping the link senders unwinds the writers
            // already started) — never a panic.
            let t = std::thread::Builder::new()
                .name(format!("b2b-tcp-writer-{me}-{peer}"))
                .spawn(move || writer.run(rx))?;
            writer_threads.push(t);
            links.insert(peer.clone(), PeerLink { tx: tx.clone() });
            fabric_links.insert(peer, PeerLink { tx });
        }

        let fabric = Arc::new(TcpFabric {
            start,
            links: fabric_links,
            counters: Arc::clone(&counters),
            telemetry: config.telemetry.clone(),
        });
        let (handle, node_tx, node_thread) =
            spawn_node_thread(node, fabric as Arc<dyn Fabric>, config.inbox_capacity);

        // Inbound: accept loop + readers.
        let running = Arc::new(AtomicBool::new(true));
        let readers = Arc::new(ReaderRegistry::default());
        let reader_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let running = Arc::clone(&running);
            let node_tx = node_tx.clone();
            let readers = Arc::clone(&readers);
            let reader_threads = Arc::clone(&reader_threads);
            let telemetry = config.telemetry.clone();
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name(format!("b2b-tcp-accept-{me}"))
                .spawn(move || {
                    accept_loop(
                        listener,
                        running,
                        node_tx,
                        readers,
                        reader_threads,
                        telemetry,
                        counters,
                    )
                })?
        };

        Ok(TcpEndpoint {
            handle,
            node_tx,
            node_thread: Some(node_thread),
            accept_thread: Some(accept_thread),
            reader_threads,
            writer_threads,
            links,
            readers,
            running,
            local_addr,
            counters,
            started: false,
        })
    }

    /// Runs the engine's `on_start`. Idempotent.
    pub fn start(&mut self) {
        if !self.started {
            self.started = true;
            self.handle.invoke(|n, ctx| n.on_start(ctx));
        }
    }

    /// The handle for local calls, reads and waits against the engine.
    pub fn handle(&self) -> &NodeHandle<N> {
        &self.handle
    }

    /// The address the endpoint accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Drops the outbound connection to `peer` (if up). The next frame to
    /// it triggers a reconnect; retransmission recovers whatever the reset
    /// swallowed. Test hook for connection-failure scenarios.
    pub fn kill_connection(&self, peer: &PartyId) {
        if let Some(link) = self.links.get(peer) {
            let _ = link.tx.send(LinkCmd::Kill);
        }
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        NetStats {
            sent: self.counters.sent.load(Ordering::Relaxed),
            delivered: self.counters.delivered.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            connects: self.counters.connects.load(Ordering::Relaxed),
            reconnects: self.counters.reconnects.load(Ordering::Relaxed),
            io_errors: self.counters.io_errors.load(Ordering::Relaxed),
            ..NetStats::default()
        }
    }

    /// Stops the event loop, closes every connection and joins all
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if !self.running.swap(false, Ordering::SeqCst) {
            return;
        }
        // Engine first: no new sends after this.
        let _ = self.node_tx.send(Envelope::Stop);
        if let Some(t) = self.node_thread.take() {
            let _ = t.join();
        }
        // Writers flush their queues and close.
        for link in self.links.values() {
            let _ = link.tx.send(LinkCmd::Stop);
        }
        for t in self.writer_threads.drain(..) {
            let _ = t.join();
        }
        // Wake the accept loop with a throwaway connection, then unblock
        // and join the readers.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.readers.shutdown_all();
        for t in self.reader_threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl<N: NetNode> Drop for TcpEndpoint<N> {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Loopback cluster
// ---------------------------------------------------------------------------

/// A single-process cluster of [`TcpEndpoint`]s on `127.0.0.1`, for tests
/// and experiments: same engines, same protocol traffic, real sockets.
pub struct TcpNet<N: NetNode> {
    endpoints: HashMap<PartyId, TcpEndpoint<N>>,
}

impl<N: NetNode> TcpNet<N> {
    /// Binds one ephemeral loopback listener per node, wires every node to
    /// every other, and runs each engine's `on_start`.
    ///
    /// # Panics
    ///
    /// Panics if two nodes share an id.
    pub fn spawn_loopback(nodes: Vec<N>) -> io::Result<TcpNet<N>> {
        TcpNet::spawn_loopback_with(nodes, TcpConfig::default())
    }

    /// [`TcpNet::spawn_loopback`] with explicit configuration.
    pub fn spawn_loopback_with(nodes: Vec<N>, config: TcpConfig) -> io::Result<TcpNet<N>> {
        // Bind all listeners first so every endpoint knows every address.
        let mut bound = Vec::new();
        let mut peers = Vec::new();
        for node in nodes {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let id = node.id();
            let addr = listener.local_addr()?;
            assert!(
                !peers.iter().any(|(p, _)| *p == id),
                "duplicate node id {id} in TcpNet"
            );
            peers.push((id, addr));
            bound.push((node, listener));
        }
        let mut endpoints = HashMap::new();
        for (node, listener) in bound {
            let id = node.id();
            let ep =
                TcpEndpoint::spawn_with_listener(node, listener, peers.clone(), config.clone())?;
            endpoints.insert(id, ep);
        }
        for ep in endpoints.values_mut() {
            ep.start();
        }
        Ok(TcpNet { endpoints })
    }

    /// Returns the handle for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn handle(&self, id: &PartyId) -> &NodeHandle<N> {
        self.endpoint(id).handle()
    }

    /// Returns the endpoint for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn endpoint(&self, id: &PartyId) -> &TcpEndpoint<N> {
        self.endpoints
            .get(id)
            .unwrap_or_else(|| panic!("unknown node {id}"))
    }

    /// Drops both directions of the `a`↔`b` connection pair (test hook).
    pub fn kill_connection(&self, a: &PartyId, b: &PartyId) {
        self.endpoint(a).kill_connection(b);
        self.endpoint(b).kill_connection(a);
    }

    /// Traffic statistics summed over every endpoint.
    pub fn stats(&self) -> NetStats {
        let mut total = NetStats::default();
        for ep in self.endpoints.values() {
            let s = ep.stats();
            total.sent += s.sent;
            total.delivered += s.delivered;
            total.dropped += s.dropped;
            total.bytes_sent += s.bytes_sent;
            total.connects += s.connects;
            total.reconnects += s.reconnects;
            total.io_errors += s.io_errors;
        }
        total
    }

    /// Stops every endpoint.
    pub fn shutdown(mut self) {
        for (_, ep) in self.endpoints.drain() {
            ep.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeCtx;
    use crate::poll::wait_for;
    use b2b_crypto::TimeMs;

    struct PingPong {
        id: PartyId,
        pings_received: u32,
        pongs_received: u32,
        timer_fired: bool,
    }

    impl PingPong {
        fn new(id: &str) -> PingPong {
            PingPong {
                id: PartyId::new(id),
                pings_received: 0,
                pongs_received: 0,
                timer_fired: false,
            }
        }
    }

    impl NetNode for PingPong {
        fn id(&self) -> PartyId {
            self.id.clone()
        }
        fn on_message(&mut self, from: &PartyId, payload: &[u8], ctx: &mut NodeCtx) {
            match payload {
                b"ping" => {
                    self.pings_received += 1;
                    ctx.send(from.clone(), b"pong".to_vec());
                }
                b"pong" => self.pongs_received += 1,
                _ => {}
            }
        }
        fn on_timer(&mut self, _timer: u64, _ctx: &mut NodeCtx) {
            self.timer_fired = true;
        }
    }

    #[test]
    fn roundtrip_over_loopback_sockets() {
        let net = TcpNet::spawn_loopback(vec![PingPong::new("a"), PingPong::new("b")]).unwrap();
        let a = net.handle(&PartyId::new("a"));
        a.invoke(|_n, ctx| ctx.send(PartyId::new("b"), b"ping".to_vec()));
        assert!(a.wait_until(Duration::from_secs(5), |n| n.pongs_received == 1));
        assert!(net
            .handle(&PartyId::new("b"))
            .wait_until(Duration::from_secs(1), |n| n.pings_received == 1));
        let stats = net.stats();
        assert!(stats.sent >= 2);
        assert!(stats.delivered >= 2);
        assert!(stats.connects >= 2); // one per direction
        assert!(stats.bytes_sent >= 8);
        net.shutdown();
    }

    #[test]
    fn timers_fire_over_tcp() {
        let net = TcpNet::spawn_loopback(vec![PingPong::new("a"), PingPong::new("b")]).unwrap();
        let a = net.handle(&PartyId::new("a"));
        a.invoke(|_n, ctx| ctx.set_timer(1, TimeMs(20)));
        assert!(a.wait_until(Duration::from_secs(5), |n| n.timer_fired));
        net.shutdown();
    }

    #[test]
    fn killed_connection_reconnects_on_next_send() {
        let net = TcpNet::spawn_loopback(vec![PingPong::new("a"), PingPong::new("b")]).unwrap();
        let a_id = PartyId::new("a");
        let b_id = PartyId::new("b");
        let a = net.handle(&a_id);
        a.invoke(|_n, ctx| ctx.send(b_id.clone(), b"ping".to_vec()));
        assert!(a.wait_until(Duration::from_secs(5), |n| n.pongs_received == 1));
        net.kill_connection(&a_id, &b_id);
        // Keep sending until a ping lands post-kill: the first send(s) may
        // be swallowed by the dead link, the reconnect picks up after the
        // backoff window.
        let b = net.handle(&b_id).clone();
        assert!(wait_for(Duration::from_secs(10), || {
            let b_id = b_id.clone();
            a.invoke(move |_n, ctx| ctx.send(b_id, b"ping".to_vec()));
            b.read(|n| n.pings_received >= 2)
        }));
        assert!(net.endpoint(&a_id).stats().reconnects >= 1);
        net.shutdown();
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_frame(&mut s).map(|o| o.map(|v| v.len()))
        });
        let mut s = TcpStream::connect(addr).unwrap();
        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        s.write_all(&huge).unwrap();
        s.write_all(&[0u8; 16]).unwrap();
        let got = reader.join().unwrap();
        assert!(got.is_err(), "oversized frame must be an error");
        let err = write_frame(&mut s, &vec![0u8; MAX_FRAME_LEN + 1]);
        assert!(err.is_err(), "oversized send must be refused locally");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(160);
        assert_eq!(backoff_delay(base, max, 0), Duration::ZERO);
        assert_eq!(backoff_delay(base, max, 1), Duration::from_millis(10));
        assert_eq!(backoff_delay(base, max, 2), Duration::from_millis(20));
        assert_eq!(backoff_delay(base, max, 5), Duration::from_millis(160));
        assert_eq!(backoff_delay(base, max, 40), Duration::from_millis(160));
    }

    /// A bare [`Writer`] for driving the reconnect state machine directly.
    fn test_writer(addr: SocketAddr, counters: &Arc<Counters>) -> Writer {
        Writer {
            me: PartyId::new("a"),
            peer_addr: addr,
            cfg: TcpConfig::new()
                .reconnect_base(Duration::from_millis(10))
                .reconnect_max(Duration::from_secs(10)),
            counters: Arc::clone(counters),
            stream: None,
            failures: 0,
            next_attempt_at: None,
            ever_connected: false,
        }
    }

    /// Two outages with a healthy interlude: the backoff must build during
    /// the first outage, reset to base once a frame actually crosses the
    /// reconnected link, and start again from base in the second outage —
    /// not resume from where the first left off.
    #[test]
    fn backoff_resets_after_a_healthy_reconnect_two_outages() {
        // Outage 1: reserve a port, then free it so connects are refused.
        let parked = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = parked.local_addr().unwrap();
        drop(parked);

        let counters = Arc::new(Counters::default());
        let mut w = test_writer(addr, &counters);
        for expected in 1..=3 {
            w.next_attempt_at = None; // collapse the wait, keep the count
            w.send_frame(b"x");
            assert_eq!(w.failures, expected, "each refused connect counts");
        }
        assert!(w.next_attempt_at.is_some(), "outage arms the backoff");
        assert_eq!(counters.io_errors.load(Ordering::Relaxed), 3);

        // The peer comes back on the same port and drains what we send.
        let listener = TcpListener::bind(addr).expect("rebind freed port");
        let acceptor = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let hello = read_frame(&mut s).unwrap().unwrap();
            let data = read_frame(&mut s).unwrap().unwrap();
            (hello, data, s)
        });
        w.next_attempt_at = None;
        w.send_frame(b"data");
        assert_eq!(
            w.failures, 0,
            "a frame through the new connection returns the link to base backoff"
        );
        assert!(w.next_attempt_at.is_none());
        let (hello, data, accepted) = acceptor.join().unwrap();
        assert_eq!(hello, b"a");
        assert_eq!(data, b"data");

        // Outage 2: the peer goes away again. The first failure must back
        // off from base (failures == 1), not continue at 3+.
        drop(accepted);
        w.drop_stream();
        w.send_frame(b"y");
        assert_eq!(w.failures, 1, "second outage starts from base backoff");
        assert_eq!(
            backoff_delay(w.cfg.reconnect_base, w.cfg.reconnect_max, w.failures),
            w.cfg.reconnect_base
        );
    }

    /// An established stream dying mid-write is a failure like any other:
    /// it must arm the backoff (and count an I/O error), so a peer that
    /// accepts connections and immediately resets them cannot pull the
    /// writer into a tight connect/write loop.
    #[test]
    fn mid_write_stream_death_arms_backoff() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = read_frame(&mut s); // hello
            let _ = read_frame(&mut s); // first data frame
                                        // Stream and listener drop here: the peer is gone.
        });

        let counters = Arc::new(Counters::default());
        let mut w = test_writer(addr, &counters);
        w.send_frame(b"first");
        assert_eq!(w.failures, 0, "healthy write");
        acceptor.join().unwrap();

        // The RST needs a moment to surface; the first write after it may
        // still land in the local socket buffer.
        let deadline = Instant::now() + Duration::from_secs(10);
        while w.failures == 0 && Instant::now() < deadline {
            w.send_frame(b"x");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            w.failures > 0,
            "a dying stream must count as a failure and arm the backoff"
        );
        assert!(w.next_attempt_at.is_some());
        assert!(w.stream.is_none(), "the dead stream is dropped");
        assert!(counters.io_errors.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn send_to_unknown_peer_is_dropped_not_fatal() {
        let net = TcpNet::spawn_loopback(vec![PingPong::new("a"), PingPong::new("b")]).unwrap();
        let a = net.handle(&PartyId::new("a"));
        a.invoke(|_n, ctx| ctx.send(PartyId::new("nobody"), b"ping".to_vec()));
        assert!(wait_for(Duration::from_secs(2), || {
            net.endpoint(&PartyId::new("a")).stats().dropped >= 1
        }));
        net.shutdown();
    }
}
