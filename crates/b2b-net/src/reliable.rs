//! Reliable delivery: masking lossy links to present *eventual, once-only*
//! message delivery.
//!
//! Paper §4.2: "It is assumed that the communications infrastructure
//! provides eventual, once-only message delivery. If the underlying
//! communications system does not support these semantics then the
//! coordination middleware masks this and presents the assumed semantics.
//! There is no requirement for the communications system to order
//! messages."
//!
//! [`ReliableMux`] is that masking layer: per-peer sequence numbers, acks,
//! timer-driven retransmission and duplicate suppression. It deliberately
//! does **not** order messages — the coordination protocols above tolerate
//! reordering, exactly as the paper states.

use crate::node::{NodeCtx, Payload};
use b2b_crypto::{PartyId, TimeMs};
use b2b_telemetry::{names, Telemetry, TraceContext};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Timer ids at or above this value belong to the reliable layer; protocol
/// engines must allocate their own timer ids strictly below it.
pub const RELIABLE_TIMER_BASE: u64 = 1 << 62;

const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;

/// Frame layout: `kind (1) | epoch (8) | seq (8) | trace context (17)`,
/// then the body. The trace context rides in every frame (zeroed on acks
/// and untraced sends) so all three fabrics — which transmit mux frames
/// opaquely — propagate causality without knowing about it.
const FRAME_HEADER_LEN: usize = 17 + b2b_telemetry::ctx::WIRE_LEN;

/// What [`ReliableMux::on_message`] concluded about an incoming frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inbound {
    /// A payload delivered for the first time, with the causal trace
    /// context the sender stamped on it: hand it to the protocol.
    Deliver(Vec<u8>, TraceContext),
    /// A duplicate of an already-delivered payload: suppressed.
    Duplicate,
    /// An ack for one of our outstanding sends: bookkeeping only.
    Ack,
    /// A frame that failed to parse (corrupt or foreign traffic).
    Malformed,
}

/// An unacknowledged outbound frame plus its retransmission history.
#[derive(Debug)]
struct OutFrame {
    /// The exact frame on the wire; retransmits clone the reference count,
    /// not the bytes.
    frame: Payload,
    /// How many times this frame has been retransmitted; drives the
    /// exponential backoff of the next retransmission delay.
    attempts: u32,
}

#[derive(Debug, Default)]
struct PeerState {
    next_send_seq: u64,
    /// Unacknowledged outbound *frames* by sequence number. The stored
    /// allocation is the same one handed to the transport, so a retransmit
    /// clones a reference count, not the bytes.
    outstanding: BTreeMap<u64, OutFrame>,
    /// Inbound `(epoch, seq)` pairs already delivered upward. The epoch
    /// distinguishes a peer's pre-crash sends from its post-recovery sends,
    /// which restart sequence numbering.
    delivered: BTreeSet<(u64, u64)>,
}

/// Reliable, once-only (but unordered) delivery over unreliable links, for
/// one node talking to many peers.
///
/// # Integration contract
///
/// * Send with [`ReliableMux::send`] instead of [`NodeCtx::send`].
/// * Feed every raw payload to [`ReliableMux::on_message`] and act only on
///   [`Inbound::Deliver`].
/// * Forward timer ids `>= RELIABLE_TIMER_BASE` to
///   [`ReliableMux::on_timer`].
///
/// # Example
///
/// ```
/// use b2b_crypto::{PartyId, TimeMs};
/// use b2b_net::{NodeCtx, ReliableMux};
/// use b2b_net::reliable::Inbound;
///
/// let mut alice = ReliableMux::new(TimeMs(100), 1);
/// let mut bob = ReliableMux::new(TimeMs(100), 2);
/// let (a, b) = (PartyId::new("alice"), PartyId::new("bob"));
///
/// // Alice sends; the frame is what actually crosses the wire.
/// let mut ctx = NodeCtx::new(TimeMs(0));
/// alice.send(b.clone(), b"hi".to_vec(), &mut ctx);
/// let (_to, frame) = ctx.take_outgoing().pop().unwrap();
///
/// // Bob receives the frame once: delivered. Twice: suppressed.
/// use b2b_telemetry::TraceContext;
/// let mut bob_ctx = NodeCtx::new(TimeMs(1));
/// assert_eq!(
///     bob.on_message(&a, &frame, &mut bob_ctx),
///     Inbound::Deliver(b"hi".to_vec(), TraceContext::NONE)
/// );
/// assert_eq!(bob.on_message(&a, &frame, &mut bob_ctx), Inbound::Duplicate);
/// ```
#[derive(Debug)]
pub struct ReliableMux {
    peers: HashMap<PartyId, PeerState>,
    retransmit_after: TimeMs,
    /// Ceiling of the exponential retransmission backoff: the delay doubles
    /// from `retransmit_after` on every unacknowledged retransmission of a
    /// frame, capped here, so a long partition costs a bounded trickle of
    /// probes instead of an unbounded constant-rate storm.
    retransmit_max: TimeMs,
    /// Identifies this mux incarnation; a node picks a fresh random epoch
    /// after crash-recovery so receivers do not mistake its restarted
    /// sequence numbers for duplicates of pre-crash traffic.
    epoch: u64,
    next_timer: u64,
    timer_targets: HashMap<u64, (PartyId, u64)>,
    /// Count of protocol-level payloads sent (excluding retransmits/acks).
    sent_payloads: u64,
    /// Count of retransmitted frames.
    retransmits: u64,
    /// Count of duplicate data frames suppressed before delivery.
    dedup_drops: u64,
    /// Observability handle; the default handle records counters into a
    /// private registry and traces nothing.
    telemetry: Telemetry,
    /// Party label stamped on trace events (the node owning this mux).
    owner: Option<PartyId>,
}

impl ReliableMux {
    /// Creates a mux with the given base retransmission interval and
    /// incarnation epoch (pick a fresh random epoch after every crash
    /// recovery).
    ///
    /// The first retransmission of a frame fires `retransmit_after` after
    /// the send; each subsequent one doubles the delay up to a cap of
    /// 32 × `retransmit_after` (configurable via
    /// [`ReliableMux::with_retransmit_max`]).
    pub fn new(retransmit_after: TimeMs, epoch: u64) -> ReliableMux {
        ReliableMux {
            peers: HashMap::new(),
            retransmit_after,
            retransmit_max: TimeMs(retransmit_after.0.saturating_mul(32)),
            epoch,
            next_timer: RELIABLE_TIMER_BASE,
            timer_targets: HashMap::new(),
            sent_payloads: 0,
            retransmits: 0,
            dedup_drops: 0,
            telemetry: Telemetry::default(),
            owner: None,
        }
    }

    /// Sets the backoff ceiling: no retransmission delay ever exceeds
    /// `max` (values below the base interval are clamped up to it, which
    /// degenerates to the old fixed-interval behaviour).
    pub fn with_retransmit_max(mut self, max: TimeMs) -> ReliableMux {
        self.retransmit_max = TimeMs(max.0.max(self.retransmit_after.0));
        self
    }

    /// The delay before retransmission attempt `attempts + 1` of a frame:
    /// `base << attempts`, saturating, capped at the configured maximum.
    fn backoff_delay(&self, attempts: u32) -> TimeMs {
        let shifted = if attempts >= 63 {
            u64::MAX
        } else {
            self.retransmit_after.0.saturating_mul(1u64 << attempts)
        };
        TimeMs(shifted.min(self.retransmit_max.0))
    }

    /// Attaches an observability handle; `owner` labels trace events with
    /// the party this mux belongs to. Retransmissions and duplicate drops
    /// are counted into the handle's registry and, when a sink is attached,
    /// emitted as `net/retransmit` and `net/dedup_drop` trace events.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, owner: PartyId) {
        self.telemetry = telemetry;
        self.owner = Some(owner);
    }

    /// This mux incarnation's epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn owner_label(&self) -> &str {
        self.owner.as_ref().map(PartyId::as_str).unwrap_or("?")
    }

    /// Sends `payload` to `to` with at-least-once retransmission; the
    /// receiver's mux suppresses duplicates, yielding once-only delivery.
    ///
    /// Accepts any byte source, so a multicast caller can serialize a
    /// message once and pass the same shared buffer for every peer; the
    /// per-peer frame (which carries the peer's sequence number) is built
    /// once and shared between the wire and the retransmit buffer.
    pub fn send(&mut self, to: PartyId, payload: impl AsRef<[u8]>, ctx: &mut NodeCtx) {
        self.send_traced(to, payload, TraceContext::NONE, ctx);
    }

    /// Like [`ReliableMux::send`], stamping `trace` into the frame header
    /// so the receiver can continue the causal trace. Retransmissions
    /// reuse the original frame, trace bytes included — a retransmitted
    /// frame is the *same* causal step, not a new one.
    pub fn send_traced(
        &mut self,
        to: PartyId,
        payload: impl AsRef<[u8]>,
        trace: TraceContext,
        ctx: &mut NodeCtx,
    ) {
        let peer = self.peers.entry(to.clone()).or_default();
        let seq = peer.next_send_seq;
        peer.next_send_seq += 1;
        let frame: Payload =
            encode_frame(KIND_DATA, self.epoch, seq, &trace, payload.as_ref()).into();
        peer.outstanding.insert(
            seq,
            OutFrame {
                frame: frame.clone(),
                attempts: 0,
            },
        );
        self.sent_payloads += 1;
        ctx.send(to.clone(), frame);
        self.arm_retransmit(to, seq, 0, ctx);
    }

    /// Processes a raw inbound payload; acks data frames and classifies the
    /// result for the caller.
    pub fn on_message(&mut self, from: &PartyId, raw: &[u8], ctx: &mut NodeCtx) -> Inbound {
        let Some((kind, epoch, seq, trace, body)) = decode_frame(raw) else {
            return Inbound::Malformed;
        };
        match kind {
            KIND_DATA => {
                // Always re-ack: the previous ack may have been lost. Acks
                // carry no causal context of their own.
                ctx.send(
                    from.clone(),
                    encode_frame(KIND_ACK, epoch, seq, &TraceContext::NONE, &[]),
                );
                let peer = self.peers.entry(from.clone()).or_default();
                if peer.delivered.insert((epoch, seq)) {
                    Inbound::Deliver(body.to_vec(), trace)
                } else {
                    self.dedup_drops += 1;
                    self.telemetry.inc(names::DEDUP_DROPS);
                    self.telemetry.trace(
                        ctx.now().as_millis(),
                        self.owner_label(),
                        "net",
                        "dedup_drop",
                        || format!("from={from} epoch={epoch} seq={seq}"),
                    );
                    Inbound::Duplicate
                }
            }
            KIND_ACK => {
                if epoch == self.epoch {
                    if let Some(peer) = self.peers.get_mut(from) {
                        peer.outstanding.remove(&seq);
                    }
                }
                Inbound::Ack
            }
            _ => Inbound::Malformed,
        }
    }

    /// Handles a reliable-layer timer; returns `true` if the id belonged to
    /// this mux (otherwise the caller should treat it as a protocol timer).
    pub fn on_timer(&mut self, timer: u64, ctx: &mut NodeCtx) -> bool {
        if timer < RELIABLE_TIMER_BASE {
            return false;
        }
        if let Some((peer_id, seq)) = self.timer_targets.remove(&timer) {
            let resend = self.peers.get_mut(&peer_id).and_then(|p| {
                p.outstanding.get_mut(&seq).map(|out| {
                    out.attempts += 1;
                    // The frame was built at send time; re-sending is a
                    // reference-count bump on the same allocation.
                    (out.frame.clone(), out.attempts)
                })
            });
            if let Some((frame, attempts)) = resend {
                self.retransmits += 1;
                self.telemetry.inc(names::RETRANSMITS);
                self.telemetry.trace(
                    ctx.now().as_millis(),
                    self.owner_label(),
                    "net",
                    "retransmit",
                    || {
                        format!(
                            "to={peer_id} seq={seq} epoch={} attempt={attempts}",
                            self.epoch
                        )
                    },
                );
                ctx.send(peer_id.clone(), frame);
                self.arm_retransmit(peer_id, seq, attempts, ctx);
            }
        }
        true
    }

    /// Number of distinct payloads submitted for sending.
    pub fn sent_payloads(&self) -> u64 {
        self.sent_payloads
    }

    /// Number of retransmitted frames so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Number of duplicate data frames suppressed so far.
    pub fn dedup_drops(&self) -> u64 {
        self.dedup_drops
    }

    /// Returns `true` if every sent payload has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.peers.values().all(|p| p.outstanding.is_empty())
    }

    fn arm_retransmit(&mut self, peer: PartyId, seq: u64, attempts: u32, ctx: &mut NodeCtx) {
        let id = self.next_timer;
        self.next_timer += 1;
        self.timer_targets.insert(id, (peer, seq));
        ctx.set_timer(id, self.backoff_delay(attempts));
    }
}

/// Returns `true` if `raw` parses as a reliable-layer DATA frame (as
/// opposed to an ack or foreign traffic). Intruder scripts use this to
/// target protocol-bearing datagrams only.
pub fn is_data_frame(raw: &[u8]) -> bool {
    matches!(decode_frame(raw), Some((KIND_DATA, _, _, _, body)) if !body.is_empty())
}

/// Re-wraps a captured DATA frame's body under a fresh `(epoch, seq)`
/// identity, so a replayed copy is not suppressed by the receiver's
/// duplicate filter (which keys on the pair). The captured trace context
/// is preserved — the intruder replays the frame bytes it recorded.
/// Returns `None` for acks and malformed frames. This is the Dolev-Yao
/// "replay at will" primitive: the intruder controls the network and can
/// re-frame recorded traffic.
pub fn reframe(raw: &[u8], epoch: u64, seq: u64) -> Option<Vec<u8>> {
    match decode_frame(raw) {
        Some((KIND_DATA, _, _, trace, body)) => {
            Some(encode_frame(KIND_DATA, epoch, seq, &trace, body))
        }
        _ => None,
    }
}

/// Length of the group envelope prefixed to every frame that crosses a
/// multi-group fabric: the destination group's id, big-endian.
pub const GROUP_ENVELOPE_LEN: usize = 8;

/// Wraps a reliable-layer frame in a group envelope: `group id (8, BE)`
/// followed by the frame bytes unchanged.
///
/// Group routing is a *transport* concern, so the envelope sits **outside**
/// the reliable frame — exactly like TCP's length prefix. The inner
/// `kind | epoch | seq | trace` layout (and therefore every recorded
/// counterexample, forged-frame fixture and wire-tap parser) is untouched,
/// and a single-group fabric that never wraps its frames stays
/// byte-identical on the wire.
pub fn encode_group_frame(group: u64, frame: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(GROUP_ENVELOPE_LEN + frame.len());
    out.extend_from_slice(&group.to_be_bytes());
    out.extend_from_slice(frame);
    out
}

/// Splits a group envelope off a received frame; `None` if `raw` is too
/// short to carry one.
pub fn decode_group_frame(raw: &[u8]) -> Option<(u64, &[u8])> {
    if raw.len() < GROUP_ENVELOPE_LEN {
        return None;
    }
    let group = u64::from_be_bytes(raw[..GROUP_ENVELOPE_LEN].try_into().ok()?);
    Some((group, &raw[GROUP_ENVELOPE_LEN..]))
}

fn encode_frame(kind: u8, epoch: u64, seq: u64, trace: &TraceContext, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.push(kind);
    out.extend_from_slice(&epoch.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&trace.encode());
    out.extend_from_slice(body);
    out
}

fn decode_frame(raw: &[u8]) -> Option<(u8, u64, u64, TraceContext, &[u8])> {
    if raw.len() < FRAME_HEADER_LEN {
        return None;
    }
    let kind = raw[0];
    let epoch = u64::from_be_bytes(raw[1..9].try_into().ok()?);
    let seq = u64::from_be_bytes(raw[9..17].try_into().ok()?);
    let trace = TraceContext::decode(&raw[17..FRAME_HEADER_LEN])?;
    Some((kind, epoch, seq, trace, &raw[FRAME_HEADER_LEN..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::node::NetNode;
    use crate::sim::SimNet;

    /// The trace context used by frame-level tests.
    fn tctx() -> TraceContext {
        TraceContext {
            trace_id: 0xaaaa_bbbb_cccc_dddd,
            parent_span: 0x1111_2222_3333_4444,
            hop: 3,
        }
    }

    #[test]
    fn reframe_changes_identity_but_not_body() {
        let f = encode_frame(KIND_DATA, 7, 42, &tctx(), b"payload");
        assert!(is_data_frame(&f));
        let r = reframe(&f, 99, 3).unwrap();
        let (k, e, s, t, b) = decode_frame(&r).unwrap();
        assert_eq!((k, e, s, b), (KIND_DATA, 99, 3, &b"payload"[..]));
        // The replayed frame carries the recorded trace bytes verbatim.
        assert_eq!(t, tctx());
        // A receiver treats the reframed copy as fresh traffic.
        let mut rx = ReliableMux::new(TimeMs(10), 0);
        let mut ctx = NodeCtx::new(TimeMs(0));
        let from = PartyId::new("tx");
        assert_eq!(
            rx.on_message(&from, &f, &mut ctx),
            Inbound::Deliver(b"payload".to_vec(), tctx())
        );
        assert_eq!(
            rx.on_message(&from, &r, &mut ctx),
            Inbound::Deliver(b"payload".to_vec(), tctx())
        );
        // Acks cannot be reframed into data.
        let ack = encode_frame(KIND_ACK, 7, 42, &TraceContext::NONE, &[]);
        assert!(!is_data_frame(&ack));
        assert!(reframe(&ack, 1, 1).is_none());
    }

    #[test]
    fn group_envelope_roundtrips_and_preserves_the_inner_frame() {
        let inner = encode_frame(KIND_DATA, 7, 42, &tctx(), b"payload");
        let wrapped = encode_group_frame(0xDEAD_BEEF_0000_0001, &inner);
        assert_eq!(wrapped.len(), GROUP_ENVELOPE_LEN + inner.len());
        let (gid, frame) = decode_group_frame(&wrapped).unwrap();
        assert_eq!(gid, 0xDEAD_BEEF_0000_0001);
        // The inner frame is byte-identical: the envelope is pure prefix.
        assert_eq!(frame, &inner[..]);
        let (k, e, s, t, b) = decode_frame(frame).unwrap();
        assert_eq!((k, e, s, t, b), (KIND_DATA, 7, 42, tctx(), &b"payload"[..]));
        // Too-short inputs are rejected, not sliced.
        assert!(decode_group_frame(&[1, 2, 3]).is_none());
    }

    /// Property sweep over [`decode_group_frame`]: every input shorter
    /// than the envelope is rejected; every input at least as long is
    /// split exactly at the 8-byte boundary with the group id read
    /// big-endian, whatever the bytes are — garbage in the body never
    /// confuses the envelope layer, and the decode never panics.
    #[test]
    fn group_envelope_decode_is_total_and_exact_on_arbitrary_bytes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xE57A6E);
        // Truncated: every length below the envelope, random contents.
        for len in 0..GROUP_ENVELOPE_LEN {
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
            assert!(decode_group_frame(&bytes).is_none(), "len {len} accepted");
        }
        // At or above the envelope: decode must agree with a manual
        // split, including the empty-body boundary and oversized bodies.
        for case in 0..200 {
            let body_len = match case % 4 {
                0 => 0,
                1 => 1,
                2 => rng.gen_range(2..64usize),
                _ => rng.gen_range(64..4096usize),
            };
            let gid: u64 = rng.gen_range(0..=u64::MAX);
            let body: Vec<u8> = (0..body_len)
                .map(|_| rng.gen_range(0..=255u32) as u8)
                .collect();
            let wrapped = encode_group_frame(gid, &body);
            assert_eq!(wrapped.len(), GROUP_ENVELOPE_LEN + body_len);
            let (got_gid, got_body) = decode_group_frame(&wrapped).unwrap();
            assert_eq!(got_gid, gid, "case {case}");
            assert_eq!(got_body, &body[..], "case {case}");
            // Raw random bytes of the same length also decode: the
            // envelope is position-defined, so the split point cannot
            // drift no matter the contents.
            let raw: Vec<u8> = (0..GROUP_ENVELOPE_LEN + body_len)
                .map(|_| rng.gen_range(0..=255u32) as u8)
                .collect();
            let (raw_gid, raw_body) = decode_group_frame(&raw).unwrap();
            assert_eq!(raw_gid, u64::from_be_bytes(raw[..8].try_into().unwrap()));
            assert_eq!(raw_body, &raw[8..]);
        }
    }

    #[test]
    fn frame_roundtrip() {
        let f = encode_frame(KIND_DATA, 7, 42, &tctx(), b"payload");
        assert_eq!(f.len(), FRAME_HEADER_LEN + b"payload".len());
        let (k, e, s, t, b) = decode_frame(&f).unwrap();
        assert_eq!(k, KIND_DATA);
        assert_eq!(e, 7);
        assert_eq!(s, 42);
        assert_eq!(t, tctx());
        assert_eq!(b, b"payload");
    }

    #[test]
    fn traced_send_reaches_the_receiver_with_its_context() {
        let mut tx = ReliableMux::new(TimeMs(10), 1);
        let mut rx = ReliableMux::new(TimeMs(10), 2);
        let (pa, pb) = (PartyId::new("a"), PartyId::new("b"));
        let mut ctx = NodeCtx::new(TimeMs(0));
        tx.send_traced(pb, b"m", tctx(), &mut ctx);
        let (_, frame) = ctx.take_outgoing().remove(0);
        let mut rctx = NodeCtx::new(TimeMs(1));
        assert_eq!(
            rx.on_message(&pa, &frame, &mut rctx),
            Inbound::Deliver(b"m".to_vec(), tctx())
        );
        // Untraced sends carry the all-zero sentinel.
        let mut ctx2 = NodeCtx::new(TimeMs(2));
        tx.send(PartyId::new("b"), b"n", &mut ctx2);
        let (_, frame2) = ctx2.take_outgoing().remove(0);
        let (_, _, _, t, _) = decode_frame(&frame2).unwrap();
        assert_eq!(t, TraceContext::NONE);
    }

    #[test]
    fn new_epoch_is_not_a_duplicate() {
        // A recovered sender restarts seq numbering under a new epoch; the
        // receiver must deliver, not suppress.
        let mut rx = ReliableMux::new(TimeMs(10), 0);
        let from = PartyId::new("tx");
        let mut ctx = NodeCtx::new(TimeMs(0));
        let before = encode_frame(KIND_DATA, 1, 0, &TraceContext::NONE, b"pre-crash");
        let after = encode_frame(KIND_DATA, 2, 0, &TraceContext::NONE, b"post-crash");
        assert_eq!(
            rx.on_message(&from, &before, &mut ctx),
            Inbound::Deliver(b"pre-crash".to_vec(), TraceContext::NONE)
        );
        assert_eq!(
            rx.on_message(&from, &after, &mut ctx),
            Inbound::Deliver(b"post-crash".to_vec(), TraceContext::NONE)
        );
        assert_eq!(rx.on_message(&from, &after, &mut ctx), Inbound::Duplicate);
        assert_eq!(rx.dedup_drops(), 1);
    }

    #[test]
    fn telemetry_counts_retransmits_and_dedup_drops() {
        use b2b_telemetry::names;
        let tel = Telemetry::new();
        let mut a = ReliableMux::new(TimeMs(10), 1);
        a.set_telemetry(tel.clone(), PartyId::new("a"));
        let pb = PartyId::new("b");
        let mut ctx = NodeCtx::new(TimeMs(0));
        a.send(pb.clone(), &b"m"[..], &mut ctx);
        let (tid, _) = ctx.take_timers()[0];
        let mut ctx2 = NodeCtx::new(TimeMs(10));
        a.on_timer(tid, &mut ctx2);
        assert_eq!(tel.metrics().snapshot().counter(names::RETRANSMITS), 1);

        let mut rx = ReliableMux::new(TimeMs(10), 0);
        rx.set_telemetry(tel.clone(), PartyId::new("rx"));
        let frame = encode_frame(KIND_DATA, 1, 0, &TraceContext::NONE, b"x");
        let mut rctx = NodeCtx::new(TimeMs(1));
        rx.on_message(&PartyId::new("tx"), &frame, &mut rctx);
        rx.on_message(&PartyId::new("tx"), &frame, &mut rctx);
        assert_eq!(tel.metrics().snapshot().counter(names::DEDUP_DROPS), 1);
        assert_eq!(rx.dedup_drops(), 1);
    }

    #[test]
    fn stale_epoch_ack_is_ignored() {
        let mut tx = ReliableMux::new(TimeMs(10), 5);
        let to = PartyId::new("rx");
        let mut ctx = NodeCtx::new(TimeMs(0));
        tx.send(to.clone(), &b"m"[..], &mut ctx);
        // An ack for another epoch must not clear our outstanding send.
        let stale = encode_frame(KIND_ACK, 4, 0, &TraceContext::NONE, &[]);
        tx.on_message(&to, &stale, &mut ctx);
        assert!(!tx.all_acked());
        let good = encode_frame(KIND_ACK, 5, 0, &TraceContext::NONE, &[]);
        tx.on_message(&to, &good, &mut ctx);
        assert!(tx.all_acked());
    }

    #[test]
    fn short_frames_are_malformed() {
        assert!(decode_frame(&[1, 2, 3]).is_none());
        let mut mux = ReliableMux::new(TimeMs(10), 1);
        let mut ctx = NodeCtx::new(TimeMs(0));
        assert_eq!(
            mux.on_message(&PartyId::new("x"), &[1, 2, 3], &mut ctx),
            Inbound::Malformed
        );
    }

    #[test]
    fn ack_clears_outstanding() {
        let mut a = ReliableMux::new(TimeMs(10), 1);
        let mut b = ReliableMux::new(TimeMs(10), 2);
        let (pa, pb) = (PartyId::new("a"), PartyId::new("b"));
        let mut ctx = NodeCtx::new(TimeMs(0));
        a.send(pb.clone(), &b"m"[..], &mut ctx);
        let (_, frame) = ctx.take_outgoing().remove(0);
        assert!(!a.all_acked());

        let mut bctx = NodeCtx::new(TimeMs(1));
        b.on_message(&pa, &frame, &mut bctx);
        let (_, ack) = bctx.take_outgoing().remove(0);

        let mut actx = NodeCtx::new(TimeMs(2));
        assert_eq!(a.on_message(&pb, &ack, &mut actx), Inbound::Ack);
        assert!(a.all_acked());
    }

    #[test]
    fn retransmit_fires_only_while_outstanding() {
        let mut a = ReliableMux::new(TimeMs(10), 1);
        let pb = PartyId::new("b");
        let mut ctx = NodeCtx::new(TimeMs(0));
        a.send(pb.clone(), &b"m"[..], &mut ctx);
        let timers = ctx.take_timers();
        assert_eq!(timers.len(), 1);
        let (tid, after) = timers[0];
        assert!(tid >= RELIABLE_TIMER_BASE);
        assert_eq!(after, TimeMs(10));

        // Fire the timer while unacked: retransmits and re-arms.
        let mut ctx2 = NodeCtx::new(TimeMs(10));
        assert!(a.on_timer(tid, &mut ctx2));
        assert_eq!(ctx2.take_outgoing().len(), 1);
        assert_eq!(a.retransmits(), 1);
        let (tid2, _) = ctx2.take_timers()[0];

        // Ack arrives; the pending timer becomes a no-op.
        let frame_ack = encode_frame(KIND_ACK, 1, 0, &TraceContext::NONE, &[]);
        let mut ctx3 = NodeCtx::new(TimeMs(15));
        a.on_message(&pb, &frame_ack, &mut ctx3);
        let mut ctx4 = NodeCtx::new(TimeMs(20));
        assert!(a.on_timer(tid2, &mut ctx4));
        assert!(ctx4.take_outgoing().is_empty());
        assert!(ctx4.take_timers().is_empty());
    }

    #[test]
    fn retransmit_backoff_doubles_to_cap() {
        // First retry after the base interval (behaviour-compatible), then
        // doubling, then pinned at the configured ceiling.
        let mut a = ReliableMux::new(TimeMs(10), 1).with_retransmit_max(TimeMs(80));
        let pb = PartyId::new("b");
        let mut ctx = NodeCtx::new(TimeMs(0));
        a.send(pb.clone(), &b"m"[..], &mut ctx);
        let (mut tid, first) = ctx.take_timers()[0];
        assert_eq!(first, TimeMs(10));

        let mut delays = Vec::new();
        let mut now = 0u64;
        for _ in 0..6 {
            now += 1_000;
            let mut tctx = NodeCtx::new(TimeMs(now));
            assert!(a.on_timer(tid, &mut tctx));
            assert_eq!(tctx.take_outgoing().len(), 1, "still unacked: resend");
            let (next_tid, delay) = tctx.take_timers()[0];
            delays.push(delay.0);
            tid = next_tid;
        }
        assert_eq!(delays, vec![20, 40, 80, 80, 80, 80]);
        assert_eq!(a.retransmits(), 6);
    }

    #[test]
    fn retransmit_max_defaults_to_32x_base_and_clamps_up() {
        let a = ReliableMux::new(TimeMs(200), 1);
        assert_eq!(a.retransmit_max, TimeMs(6_400));
        // A cap below the base degenerates to the fixed interval.
        let b = ReliableMux::new(TimeMs(50), 1).with_retransmit_max(TimeMs(5));
        assert_eq!(b.retransmit_max, TimeMs(50));
        assert_eq!(b.backoff_delay(0), TimeMs(50));
        assert_eq!(b.backoff_delay(7), TimeMs(50));
        // Huge attempt counts saturate instead of overflowing the shift.
        let c = ReliableMux::new(TimeMs(10), 1).with_retransmit_max(TimeMs(640));
        assert_eq!(c.backoff_delay(200), TimeMs(640));
    }

    #[test]
    fn backoff_bounds_retransmits_across_a_partition() {
        // Deterministic simulator pin: tx's peer is unreachable for 4000 ms
        // of virtual time. Under the old fixed 10 ms timer that costs ~400
        // retransmits; capped exponential backoff (10·2^k, cap 160) probes
        // at t = 10, 30, 70, 150, 310, 470, 630, … — the exact schedule
        // (and so the exact count) is pinned here, and delivery still
        // completes once the partition heals.
        let (tx, rx) = (PartyId::new("tx"), PartyId::new("rx"));
        let mut net: SimNet<ReliProbe> = SimNet::new(42);
        net.add_node(ReliProbe {
            id: rx.clone(),
            mux: ReliableMux::new(TimeMs(10), 10).with_retransmit_max(TimeMs(160)),
            peer: tx.clone(),
            to_send: vec![],
            delivered: vec![],
        });
        net.add_node(ReliProbe {
            id: tx.clone(),
            mux: ReliableMux::new(TimeMs(10), 11).with_retransmit_max(TimeMs(160)),
            peer: rx.clone(),
            to_send: vec![b"probe".to_vec()],
            delivered: vec![],
        });
        net.partition([tx.clone()], [rx.clone()], TimeMs(4_000));
        net.run_until(TimeMs(3_999));
        // Retransmit times: 10, 30, 70, 150, then every 160 ms from 310.
        // Within (0, 4000): 4 doubling probes + floor((3999-150)/160) = 24
        // capped probes = 28 — versus ~399 with the fixed interval.
        assert_eq!(net.node(&tx).mux.retransmits(), 28);
        net.run_until_quiet(TimeMs(60_000));
        assert_eq!(net.node(&rx).delivered, vec![b"probe".to_vec()]);
        assert!(net.node(&tx).mux.all_acked());
    }

    #[test]
    fn protocol_timer_ids_are_not_consumed() {
        let mut a = ReliableMux::new(TimeMs(10), 1);
        let mut ctx = NodeCtx::new(TimeMs(0));
        assert!(!a.on_timer(5, &mut ctx));
    }

    /// End-to-end: a flooding sender and a counting receiver over a lossy,
    /// duplicating, reordering network still achieve exactly-once delivery
    /// of every payload.
    struct ReliProbe {
        id: PartyId,
        mux: ReliableMux,
        peer: PartyId,
        to_send: Vec<Vec<u8>>,
        delivered: Vec<Vec<u8>>,
    }

    impl NetNode for ReliProbe {
        fn id(&self) -> PartyId {
            self.id.clone()
        }
        fn on_start(&mut self, ctx: &mut NodeCtx) {
            for m in std::mem::take(&mut self.to_send) {
                let peer = self.peer.clone();
                self.mux.send(peer, m, ctx);
            }
        }
        fn on_message(&mut self, from: &PartyId, payload: &[u8], ctx: &mut NodeCtx) {
            if let Inbound::Deliver(m, _) = self.mux.on_message(from, payload, ctx) {
                self.delivered.push(m);
            }
        }
        fn on_timer(&mut self, timer: u64, ctx: &mut NodeCtx) {
            self.mux.on_timer(timer, ctx);
        }
    }

    #[test]
    fn once_only_delivery_over_lossy_network() {
        for seed in [1u64, 2, 3, 4, 5] {
            let mut net: SimNet<ReliProbe> = SimNet::new(seed);
            net.set_default_plan(
                FaultPlan::new()
                    .drop_rate(0.4)
                    .dup_rate(0.3)
                    .delay(TimeMs(1), TimeMs(30)),
            );
            let msgs: Vec<Vec<u8>> = (0..25u8).map(|i| vec![i]).collect();
            net.add_node(ReliProbe {
                id: PartyId::new("rx"),
                mux: ReliableMux::new(TimeMs(40), 10),
                peer: PartyId::new("tx"),
                to_send: vec![],
                delivered: vec![],
            });
            net.add_node(ReliProbe {
                id: PartyId::new("tx"),
                mux: ReliableMux::new(TimeMs(40), 11),
                peer: PartyId::new("rx"),
                to_send: msgs.clone(),
                delivered: vec![],
            });
            net.run_until_quiet(TimeMs(60_000));
            let rx = net.node(&PartyId::new("rx"));
            let mut got = rx.delivered.clone();
            got.sort();
            let mut want = msgs;
            want.sort();
            assert_eq!(got, want, "seed {seed}: every payload exactly once");
            assert!(net.node(&PartyId::new("tx")).mux.all_acked());
        }
    }
}
