//! Threaded in-process transport.
//!
//! Runs each [`NetNode`] engine on its own OS thread with a real clock and
//! crossbeam channels between nodes — the deployment-shaped counterpart of
//! the deterministic simulator, playing the role Java RMI played for the
//! paper's prototype. The same engines run unmodified on both drivers.
//!
//! Client threads interact with a node through its [`NodeHandle`]:
//! [`NodeHandle::invoke`] performs a local call (e.g. a controller
//! operation) and [`NodeHandle::wait_until`] blocks until the engine
//! reaches a state of interest, which is how the synchronous communication
//! mode is realised.

use crate::node::{NetNode, NodeCtx, Payload};
use crate::stats::NetStats;
use b2b_crypto::{PartyId, TimeMs};
use b2b_telemetry::{names, Telemetry};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::{Condvar, Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) enum Envelope {
    Msg { from: PartyId, payload: Payload },
    Wake,
    Stop,
}

/// Default bound on a node's inbox channel.
///
/// Inboxes used to be unbounded, which lets one slow node buffer an
/// arbitrary backlog — at thousands of groups per process that is a memory
/// blowup. 1024 frames is far above any steady-state depth the protocols
/// produce (a round is a handful of frames per peer) while capping the
/// worst case; senders that hit the bound stall briefly and then shed the
/// frame, which the reliable layer recovers like any other loss.
pub const DEFAULT_INBOX_CAPACITY: usize = 1024;

/// Pushes an envelope into a bounded inbox, applying the backpressure
/// policy shared by the in-process transports: try without blocking; on a
/// full inbox count an [`names::INBOX_FULL_STALLS`] and retry briefly; if
/// the inbox is still full, shed the frame. Shedding (rather than blocking
/// forever) keeps two mutually-flooding node threads from deadlocking —
/// the fabric is best-effort and the reliable layer retransmits.
pub(crate) fn send_bounded(tx: &Sender<Envelope>, envelope: Envelope, telemetry: &Telemetry) {
    match tx.try_send(envelope) {
        Ok(()) => {}
        // A send to a stopped node fails harmlessly: the paper's model
        // treats it as a lost message that retransmission recovers.
        Err(TrySendError::Disconnected(_)) => {}
        Err(TrySendError::Full(envelope)) => {
            telemetry.inc(names::INBOX_FULL_STALLS);
            let _ = tx.send_timeout(envelope, Duration::from_millis(2));
        }
    }
}

/// What a node's event loop needs from the medium underneath it: a clock
/// and a way to hand off outgoing payloads.
///
/// Implemented by the in-process router and by the TCP connection manager
/// ([`crate::tcp`]), so [`NodeHandle`] and the per-node event loop are
/// shared verbatim between both real-clock transports. Delivery of
/// *incoming* traffic is the transport's business (it pushes into the
/// node's event channel); the fabric only carries traffic away.
pub trait Fabric: Send + Sync {
    /// Milliseconds since the transport started.
    fn now(&self) -> TimeMs;
    /// Hands an outgoing payload to the medium. Best-effort: a send to an
    /// unknown, stopped or disconnected destination is silently dropped —
    /// the paper's model treats it as a lost message that the reliable
    /// layer recovers.
    fn send(&self, from: &PartyId, to: &PartyId, payload: Payload);
    /// Accounting hook: a payload was handed to a node's `on_message`.
    fn note_delivered(&self) {}
}

struct Router {
    channels: RwLock<HashMap<PartyId, Sender<Envelope>>>,
    start: Instant,
    sent: AtomicU64,
    delivered: AtomicU64,
    telemetry: Telemetry,
}

impl Fabric for Router {
    fn now(&self) -> TimeMs {
        TimeMs(self.start.elapsed().as_millis() as u64)
    }

    fn send(&self, from: &PartyId, to: &PartyId, payload: Payload) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        let tx = match self.channels.read().get(to) {
            Some(tx) => tx.clone(),
            None => return,
        };
        send_bounded(
            &tx,
            Envelope::Msg {
                from: from.clone(),
                payload,
            },
            &self.telemetry,
        );
    }

    fn note_delivered(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }
}

struct Inner<N> {
    node: N,
    timers: BinaryHeap<Reverse<(TimeMs, u64)>>,
}

struct Shared<N> {
    inner: Mutex<Inner<N>>,
    cv: Condvar,
}

/// A handle for interacting with one node of a [`ThreadedNet`] or a
/// [`crate::tcp::TcpEndpoint`].
pub struct NodeHandle<N> {
    id: PartyId,
    shared: Arc<Shared<N>>,
    tx: Sender<Envelope>,
    fabric: Arc<dyn Fabric>,
}

impl<N> Clone for NodeHandle<N> {
    fn clone(&self) -> Self {
        NodeHandle {
            id: self.id.clone(),
            shared: Arc::clone(&self.shared),
            tx: self.tx.clone(),
            fabric: Arc::clone(&self.fabric),
        }
    }
}

impl<N: NetNode> NodeHandle<N> {
    /// This node's identity.
    pub fn id(&self) -> &PartyId {
        &self.id
    }

    /// Runs a local call against the engine, applies its effects (sends and
    /// timers), and returns the call's result.
    ///
    /// This is how application clients reach the middleware: controller
    /// operations queue protocol messages, which this method dispatches.
    pub fn invoke<R>(&self, f: impl FnOnce(&mut N, &mut NodeCtx) -> R) -> R {
        let mut ctx = NodeCtx::new(self.fabric.now());
        let result = {
            let mut inner = self.shared.inner.lock();
            let result = f(&mut inner.node, &mut ctx);
            flush(&self.id, &mut inner, &mut ctx, &*self.fabric);
            self.shared.cv.notify_all();
            result
        };
        // Recompute the event-loop deadline in case a timer was armed.
        let _ = self.tx.send(Envelope::Wake);
        result
    }

    /// Reads from the engine without applying effects.
    pub fn read<R>(&self, f: impl FnOnce(&N) -> R) -> R {
        f(&self.shared.inner.lock().node)
    }

    /// Blocks until `pred` holds or `timeout` elapses; returns whether the
    /// predicate was satisfied.
    ///
    /// The predicate is re-evaluated after every event the node processes.
    pub fn wait_until(&self, timeout: Duration, mut pred: impl FnMut(&N) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock();
        loop {
            if pred(&inner.node) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            if self.shared.cv.wait_until(&mut inner, deadline).timed_out() {
                return pred(&inner.node);
            }
        }
    }
}

fn flush<N: NetNode>(id: &PartyId, inner: &mut Inner<N>, ctx: &mut NodeCtx, fabric: &dyn Fabric) {
    for (to, payload) in ctx.take_outgoing() {
        fabric.send(id, &to, payload);
    }
    let now = fabric.now();
    for (timer_id, after) in ctx.take_timers() {
        inner.timers.push(Reverse((now + after, timer_id)));
    }
}

/// A running network of engine threads.
///
/// Dropping the net stops all node threads.
///
/// # Example
///
/// ```
/// use b2b_crypto::PartyId;
/// use b2b_net::{NetNode, NodeCtx, ThreadedNet};
/// use std::time::Duration;
///
/// struct Counter { id: PartyId, seen: u32 }
/// impl NetNode for Counter {
///     fn id(&self) -> PartyId { self.id.clone() }
///     fn on_message(&mut self, _f: &PartyId, _p: &[u8], _c: &mut NodeCtx) { self.seen += 1; }
/// }
///
/// let net = ThreadedNet::spawn(vec![
///     Counter { id: PartyId::new("a"), seen: 0 },
///     Counter { id: PartyId::new("b"), seen: 0 },
/// ]);
/// net.handle(&PartyId::new("a")).invoke(|_n, ctx| {
///     ctx.send(PartyId::new("b"), vec![1]);
/// });
/// let got = net.handle(&PartyId::new("b")).wait_until(Duration::from_secs(2), |n| n.seen == 1);
/// assert!(got);
/// ```
pub struct ThreadedNet<N: NetNode> {
    handles: HashMap<PartyId, NodeHandle<N>>,
    threads: Vec<(Sender<Envelope>, JoinHandle<()>)>,
    router: Arc<Router>,
}

impl<N: NetNode> ThreadedNet<N> {
    /// Registers all nodes, spawns one thread per node, and runs each
    /// node's `on_start`. Inboxes are bounded at
    /// [`DEFAULT_INBOX_CAPACITY`]; use [`ThreadedNet::spawn_with`] to tune
    /// the bound or observe backpressure stalls.
    ///
    /// # Panics
    ///
    /// Panics if two nodes share an id.
    pub fn spawn(nodes: Vec<N>) -> ThreadedNet<N> {
        ThreadedNet::spawn_with(nodes, DEFAULT_INBOX_CAPACITY, Telemetry::default())
    }

    /// [`ThreadedNet::spawn`] with an explicit per-node inbox bound and a
    /// telemetry handle that counts [`names::INBOX_FULL_STALLS`] whenever
    /// a sender finds a destination inbox full.
    ///
    /// # Panics
    ///
    /// Panics if two nodes share an id or `inbox_capacity` is zero.
    pub fn spawn_with(
        nodes: Vec<N>,
        inbox_capacity: usize,
        telemetry: Telemetry,
    ) -> ThreadedNet<N> {
        assert!(inbox_capacity > 0, "inbox capacity must be positive");
        let router = Arc::new(Router {
            channels: RwLock::new(HashMap::new()),
            start: Instant::now(),
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            telemetry,
        });
        let mut handles = HashMap::new();
        type Starter<N> = (
            PartyId,
            Arc<Shared<N>>,
            Receiver<Envelope>,
            Sender<Envelope>,
        );
        let mut starters: Vec<Starter<N>> = Vec::new();

        for node in nodes {
            let id = node.id();
            let (tx, rx) = bounded(inbox_capacity);
            assert!(
                router
                    .channels
                    .write()
                    .insert(id.clone(), tx.clone())
                    .is_none(),
                "duplicate node id {id} in ThreadedNet"
            );
            let shared = Arc::new(Shared {
                inner: Mutex::new(Inner {
                    node,
                    timers: BinaryHeap::new(),
                }),
                cv: Condvar::new(),
            });
            handles.insert(
                id.clone(),
                NodeHandle {
                    id: id.clone(),
                    shared: Arc::clone(&shared),
                    tx: tx.clone(),
                    fabric: Arc::clone(&router) as Arc<dyn Fabric>,
                },
            );
            starters.push((id, shared, rx, tx));
        }

        let mut spawned = Vec::new();
        for (id, shared, rx, tx) in starters {
            let router2 = Arc::clone(&router) as Arc<dyn Fabric>;
            let handle = std::thread::Builder::new()
                .name(format!("b2b-node-{id}"))
                .spawn(move || run_node(id, shared, rx, router2))
                .expect("spawn node thread");
            spawned.push((tx, handle));
        }

        // Run on_start for every node now that all channels exist.
        let net = ThreadedNet {
            handles,
            threads: spawned,
            router,
        };
        for handle in net.handles.values() {
            handle.invoke(|n, ctx| n.on_start(ctx));
        }
        net
    }

    /// Returns the handle for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn handle(&self, id: &PartyId) -> &NodeHandle<N> {
        self.handles
            .get(id)
            .unwrap_or_else(|| panic!("unknown node {id}"))
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        NetStats {
            sent: self.router.sent.load(Ordering::Relaxed),
            delivered: self.router.delivered.load(Ordering::Relaxed),
            ..NetStats::default()
        }
    }

    /// Stops all node threads and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        for (tx, _) in &self.threads {
            let _ = tx.send(Envelope::Stop);
        }
        for (_, handle) in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<N: NetNode> Drop for ThreadedNet<N> {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Spawns one node's event loop over an arbitrary [`Fabric`]. The returned
/// sender is how the transport injects incoming traffic (`Envelope::Msg`)
/// and stops the loop (`Envelope::Stop`); joining the handle completes a
/// graceful shutdown. Does **not** run `on_start` — the caller does, once
/// the transport is ready to carry the node's first sends.
pub(crate) fn spawn_node_thread<N: NetNode>(
    node: N,
    fabric: Arc<dyn Fabric>,
    inbox_capacity: usize,
) -> (NodeHandle<N>, Sender<Envelope>, JoinHandle<()>) {
    assert!(inbox_capacity > 0, "inbox capacity must be positive");
    let id = node.id();
    let (tx, rx) = bounded(inbox_capacity);
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            node,
            timers: BinaryHeap::new(),
        }),
        cv: Condvar::new(),
    });
    let handle = NodeHandle {
        id: id.clone(),
        shared: Arc::clone(&shared),
        tx: tx.clone(),
        fabric: Arc::clone(&fabric),
    };
    let thread = std::thread::Builder::new()
        .name(format!("b2b-node-{id}"))
        .spawn(move || run_node(id, shared, rx, fabric))
        .expect("spawn node thread");
    (handle, tx, thread)
}

fn run_node<N: NetNode>(
    id: PartyId,
    shared: Arc<Shared<N>>,
    rx: Receiver<Envelope>,
    fabric: Arc<dyn Fabric>,
) {
    loop {
        // Next timer deadline, if any.
        let next_deadline = {
            let inner = shared.inner.lock();
            inner.timers.peek().map(|Reverse((t, _))| *t)
        };
        let timeout = match next_deadline {
            Some(deadline) => {
                let now = fabric.now();
                Duration::from_millis(deadline.saturating_sub(now).as_millis())
            }
            None => Duration::from_millis(500),
        };
        match rx.recv_timeout(timeout) {
            Ok(Envelope::Msg { from, payload }) => {
                fabric.note_delivered();
                let mut ctx = NodeCtx::new(fabric.now());
                let mut inner = shared.inner.lock();
                inner.node.on_message(&from, &payload, &mut ctx);
                flush(&id, &mut inner, &mut ctx, &*fabric);
                shared.cv.notify_all();
            }
            Ok(Envelope::Wake) => {}
            Ok(Envelope::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // Fire all due timers.
        loop {
            let now = fabric.now();
            let due = {
                let mut inner = shared.inner.lock();
                match inner.timers.peek() {
                    Some(Reverse((t, _))) if *t <= now => {
                        let Reverse((_, timer_id)) = inner.timers.pop().expect("peeked");
                        Some(timer_id)
                    }
                    _ => None,
                }
            };
            match due {
                Some(timer_id) => {
                    let mut ctx = NodeCtx::new(fabric.now());
                    let mut inner = shared.inner.lock();
                    inner.node.on_timer(timer_id, &mut ctx);
                    flush(&id, &mut inner, &mut ctx, &*fabric);
                    shared.cv.notify_all();
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct PingPong {
        id: PartyId,
        peer: PartyId,
        pings_received: u32,
        pongs_received: u32,
        timer_fired: bool,
    }

    impl PingPong {
        fn new(id: &str, peer: &str) -> PingPong {
            PingPong {
                id: PartyId::new(id),
                peer: PartyId::new(peer),
                pings_received: 0,
                pongs_received: 0,
                timer_fired: false,
            }
        }
    }

    impl NetNode for PingPong {
        fn id(&self) -> PartyId {
            self.id.clone()
        }
        fn on_message(&mut self, from: &PartyId, payload: &[u8], ctx: &mut NodeCtx) {
            match payload {
                b"ping" => {
                    self.pings_received += 1;
                    ctx.send(from.clone(), b"pong".to_vec());
                }
                b"pong" => self.pongs_received += 1,
                _ => {}
            }
        }
        fn on_timer(&mut self, _timer: u64, _ctx: &mut NodeCtx) {
            self.timer_fired = true;
        }
    }

    #[test]
    fn request_response_roundtrip() {
        let net = ThreadedNet::spawn(vec![PingPong::new("a", "b"), PingPong::new("b", "a")]);
        let a = net.handle(&PartyId::new("a"));
        let peer = a.read(|n| n.peer.clone());
        a.invoke(|_n, ctx| ctx.send(peer, b"ping".to_vec()));
        assert!(a.wait_until(Duration::from_secs(5), |n| n.pongs_received == 1));
        assert!(net
            .handle(&PartyId::new("b"))
            .wait_until(Duration::from_secs(1), |n| n.pings_received == 1));
        net.shutdown();
    }

    #[test]
    fn timers_fire_in_threaded_mode() {
        let net = ThreadedNet::spawn(vec![PingPong::new("a", "b"), PingPong::new("b", "a")]);
        let a = net.handle(&PartyId::new("a"));
        a.invoke(|_n, ctx| ctx.set_timer(1, TimeMs(20)));
        assert!(a.wait_until(Duration::from_secs(5), |n| n.timer_fired));
        net.shutdown();
    }

    #[test]
    fn stats_count_traffic() {
        let net = ThreadedNet::spawn(vec![PingPong::new("a", "b"), PingPong::new("b", "a")]);
        let a = net.handle(&PartyId::new("a"));
        a.invoke(|_n, ctx| ctx.send(PartyId::new("b"), b"ping".to_vec()));
        assert!(a.wait_until(Duration::from_secs(5), |n| n.pongs_received == 1));
        let stats = net.stats();
        assert!(stats.sent >= 2);
        net.shutdown();
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_ids_rejected() {
        let _ = ThreadedNet::spawn(vec![PingPong::new("a", "b"), PingPong::new("a", "b")]);
    }

    struct Slow {
        id: PartyId,
        seen: u32,
    }

    impl NetNode for Slow {
        fn id(&self) -> PartyId {
            self.id.clone()
        }
        fn on_message(&mut self, _from: &PartyId, _payload: &[u8], _ctx: &mut NodeCtx) {
            self.seen += 1;
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn full_inbox_counts_stalls_and_recovers() {
        let telemetry = Telemetry::new();
        let net = ThreadedNet::spawn_with(
            vec![
                Slow {
                    id: PartyId::new("slow"),
                    seen: 0,
                },
                Slow {
                    id: PartyId::new("fast"),
                    seen: 0,
                },
            ],
            1,
            telemetry.clone(),
        );
        let fast = net.handle(&PartyId::new("fast"));
        // Burst far past the 1-slot inbox while the receiver sleeps 10 ms
        // per frame: the overflow must register as stalls, not as an
        // unbounded backlog, and some frames are shed (best-effort fabric).
        fast.invoke(|_n, ctx| {
            for _ in 0..20 {
                ctx.send(PartyId::new("slow"), b"x".to_vec());
            }
        });
        let slow = net.handle(&PartyId::new("slow"));
        assert!(slow.wait_until(Duration::from_secs(5), |n| n.seen >= 1));
        assert!(
            telemetry
                .metrics()
                .snapshot()
                .counter(b2b_telemetry::names::INBOX_FULL_STALLS)
                > 0,
            "a 20-frame burst into a 1-slot inbox must stall"
        );
        net.shutdown();
    }
}
