//! Verification of individual evidence records.
//!
//! "It is possible to verify that the signed parts of protocol messages are
//! consistent with the unsigned parts" (§4.4). At this layer we check the
//! cryptographic half of that claim — signatures bind the origin to the
//! payload, time-stamps bind the payload to a time. Protocol-level
//! consistency (tuple linkage, run membership) is checked by
//! `b2b-core::dispute` on top.

use crate::record::EvidenceRecord;
use b2b_crypto::{KeyRing, PublicKey};
use serde::{Deserialize, Serialize};
use thiserror::Error;

/// Why a record failed verification.
#[derive(Debug, Error, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordFault {
    /// The record claims an origin with no registered key.
    #[error("origin {0} has no registered key")]
    UnknownOrigin(String),
    /// The origin's signature over the payload does not verify.
    #[error("signature by {0} does not verify over payload")]
    BadSignature(String),
    /// The record carries no signature although its kind requires one.
    #[error("record of kind {0} is unsigned")]
    MissingSignature(String),
    /// The time-stamp token does not verify against the TSA key.
    #[error("time-stamp token invalid: {0}")]
    BadTimeStamp(String),
}

/// Kinds that evidence a remote party's action and therefore must be
/// signed. Local bookkeeping kinds (checkpoints, misbehaviour notes) need
/// no signature, and decide aggregations are authenticated by the revealed
/// authenticator rather than a signature (paper §4.3: "m3 requires no
/// signature since only the proposer can produce the authenticator").
fn requires_signature(record: &EvidenceRecord) -> bool {
    use crate::record::EvidenceKind::*;
    !matches!(
        record.kind,
        Checkpoint | Misbehaviour | StateDecide | ConnectDecide | DisconnectDecide | TtpAbort
    )
}

/// Verifies one record's signature and (if present) time-stamp.
///
/// `tsa_key` is the time-stamping authority's public key; pass `None` to
/// skip time-stamp checking (e.g. for logs produced without a TSA).
///
/// # Errors
///
/// Returns the first [`RecordFault`] found.
///
/// # Example
///
/// ```
/// use b2b_crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs};
/// use b2b_evidence::{verify_record, EvidenceKind, EvidenceRecord};
///
/// let kp = KeyPair::generate_from_seed(1);
/// let mut ring = KeyRing::new();
/// ring.register(PartyId::new("p"), kp.public_key());
///
/// let payload = b"signed content".to_vec();
/// let rec = EvidenceRecord::new(
///     EvidenceKind::StatePropose, "obj", "run", PartyId::new("p"),
///     payload.clone(), Some(kp.sign(&payload)), None, TimeMs(0),
/// );
/// assert!(verify_record(&rec, &ring, None).is_ok());
/// ```
pub fn verify_record(
    record: &EvidenceRecord,
    ring: &KeyRing,
    tsa_key: Option<&PublicKey>,
) -> Result<(), RecordFault> {
    match (&record.signature, requires_signature(record)) {
        (Some(sig), _) => {
            ring.verify_for(&record.origin, &record.payload, sig)
                .map_err(|e| match e {
                    b2b_crypto::CryptoError::UnknownParty(p) => RecordFault::UnknownOrigin(p),
                    _ => RecordFault::BadSignature(record.origin.to_string()),
                })?;
        }
        (None, true) => {
            return Err(RecordFault::MissingSignature(
                record.kind.name().to_string(),
            ));
        }
        (None, false) => {}
    }
    if let (Some(ts), Some(key)) = (&record.timestamp, tsa_key) {
        ts.verify(key, &record.payload)
            .map_err(|e| RecordFault::BadTimeStamp(e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EvidenceKind, EvidenceRecord};
    use b2b_crypto::{KeyPair, PartyId, Signer, TimeMs, TimeStampAuthority};

    fn setup() -> (KeyPair, KeyRing, TimeStampAuthority) {
        let kp = KeyPair::generate_from_seed(1);
        let mut ring = KeyRing::new();
        ring.register(PartyId::new("p"), kp.public_key());
        let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(99));
        (kp, ring, tsa)
    }

    fn signed_record(kp: &KeyPair, payload: &[u8]) -> EvidenceRecord {
        EvidenceRecord::new(
            EvidenceKind::StateRespond,
            "obj",
            "run",
            PartyId::new("p"),
            payload.to_vec(),
            Some(kp.sign(payload)),
            None,
            TimeMs(0),
        )
    }

    #[test]
    fn valid_record_passes() {
        let (kp, ring, _) = setup();
        let rec = signed_record(&kp, b"x");
        assert!(verify_record(&rec, &ring, None).is_ok());
    }

    #[test]
    fn tampered_payload_fails() {
        let (kp, ring, _) = setup();
        let mut rec = signed_record(&kp, b"x");
        rec.payload = b"tampered".to_vec();
        assert_eq!(
            verify_record(&rec, &ring, None),
            Err(RecordFault::BadSignature("p".into()))
        );
    }

    #[test]
    fn unknown_origin_fails() {
        let (kp, _, _) = setup();
        let ring = KeyRing::new();
        let rec = signed_record(&kp, b"x");
        assert_eq!(
            verify_record(&rec, &ring, None),
            Err(RecordFault::UnknownOrigin("p".into()))
        );
    }

    #[test]
    fn unsigned_protocol_record_fails() {
        let (kp, ring, _) = setup();
        let mut rec = signed_record(&kp, b"x");
        rec.signature = None;
        assert_eq!(
            verify_record(&rec, &ring, None),
            Err(RecordFault::MissingSignature("state-respond".into()))
        );
    }

    #[test]
    fn unsigned_checkpoint_is_fine() {
        let (_, ring, _) = setup();
        let rec = EvidenceRecord::new(
            EvidenceKind::Checkpoint,
            "obj",
            "run",
            PartyId::new("p"),
            vec![1],
            None,
            None,
            TimeMs(0),
        );
        assert!(verify_record(&rec, &ring, None).is_ok());
    }

    #[test]
    fn timestamp_checked_when_tsa_key_given() {
        let (kp, ring, tsa) = setup();
        let mut rec = signed_record(&kp, b"x");
        rec.timestamp = Some(tsa.stamp(b"x", TimeMs(5)));
        assert!(verify_record(&rec, &ring, Some(&tsa.public_key())).is_ok());

        // A stamp over different content is rejected.
        rec.timestamp = Some(tsa.stamp(b"other", TimeMs(5)));
        assert!(matches!(
            verify_record(&rec, &ring, Some(&tsa.public_key())),
            Err(RecordFault::BadTimeStamp(_))
        ));
    }
}
