#![warn(missing_docs)]

//! Non-repudiation evidence substrate for the B2BObjects middleware.
//!
//! "Evidence is stored systematically in local non-repudiation logs" (§3),
//! and "for non-repudiation, and recovery, protocol messages are held in
//! local persistent storage at sender and recipient" (§4.2). This crate is
//! that storage and the machinery around it:
//!
//! * [`record`] — [`EvidenceRecord`]: one signed, time-stamped protocol
//!   action held in a party's log;
//! * [`store`] — the [`EvidenceStore`] + [`SnapshotStore`] traits with an
//!   in-memory implementation, used both for evidence and for the state
//!   checkpoints that §3 requires for recovery and rollback;
//! * [`wal`] — a crash-safe append-only file implementation (length- and
//!   CRC-framed records; torn tails are discarded on recovery);
//! * [`verify`] — per-record signature/time-stamp verification and
//!   whole-log audits;
//! * [`audit`] — cross-log queries an arbiter uses during extra-protocol
//!   dispute resolution (protocol-specific claim checking lives in
//!   `b2b-core::dispute`, on top of this layer).

pub mod audit;
pub mod record;
pub mod store;
pub mod verify;
pub mod wal;

pub use audit::{AuditReport, LogAuditor};
pub use record::{EvidenceKind, EvidenceRecord};
pub use store::{EvidenceStore, MemStore, SnapshotStore, StoreError};
pub use verify::{verify_record, RecordFault};
pub use wal::FileStore;
