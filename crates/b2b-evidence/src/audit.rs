//! Whole-log audits and cross-log queries.
//!
//! During extra-protocol dispute resolution (§4.1: "this evidence can be
//! used in extra-protocol arbitration to resolve disputes"), an arbiter is
//! handed parties' non-repudiation logs. [`LogAuditor`] performs the
//! generic half of that job: verifying every record cryptographically and
//! answering "does this log contain a signed record of kind K in run R by
//! party P?" — the queries from which `b2b-core::dispute` composes
//! protocol-specific claim checking.

use crate::record::{EvidenceKind, EvidenceRecord};
use crate::store::EvidenceStore;
use crate::verify::{verify_record, RecordFault};
use b2b_crypto::{KeyRing, PartyId, PublicKey};
use serde::{Deserialize, Serialize};

/// The result of auditing one log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Total records examined.
    pub total: usize,
    /// Records that passed signature/time-stamp verification.
    pub valid: usize,
    /// Failures: `(seq, fault)` for each bad record.
    pub faults: Vec<(u64, RecordFault)>,
}

impl AuditReport {
    /// Returns `true` if every record verified.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Verifies logs and answers evidence queries for an arbiter.
#[derive(Debug, Clone)]
pub struct LogAuditor {
    ring: KeyRing,
    tsa_key: Option<PublicKey>,
}

impl LogAuditor {
    /// Creates an auditor trusting `ring` for party keys and, optionally,
    /// `tsa_key` for time-stamp tokens.
    pub fn new(ring: KeyRing, tsa_key: Option<PublicKey>) -> LogAuditor {
        LogAuditor { ring, tsa_key }
    }

    /// Cryptographically verifies every record in `store`.
    pub fn audit(&self, store: &dyn EvidenceStore) -> AuditReport {
        let records = store.records();
        let mut faults = Vec::new();
        for rec in &records {
            if let Err(fault) = verify_record(rec, &self.ring, self.tsa_key.as_ref()) {
                faults.push((rec.seq, fault));
            }
        }
        AuditReport {
            total: records.len(),
            valid: records.len() - faults.len(),
            faults,
        }
    }

    /// Finds verified records of `kind` in run `run`, optionally restricted
    /// to a specific origin. Unverifiable records are never returned: a
    /// forged entry cannot support a claim.
    pub fn find_evidence(
        &self,
        store: &dyn EvidenceStore,
        run: &str,
        kind: EvidenceKind,
        origin: Option<&PartyId>,
    ) -> Vec<EvidenceRecord> {
        store
            .records_for_run(run)
            .into_iter()
            .filter(|r| r.kind == kind)
            .filter(|r| origin.is_none_or(|o| &r.origin == o))
            .filter(|r| verify_record(r, &self.ring, self.tsa_key.as_ref()).is_ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use b2b_crypto::{KeyPair, Signer, TimeMs};

    fn setup() -> (KeyPair, KeyRing, MemStore) {
        let kp = KeyPair::generate_from_seed(1);
        let mut ring = KeyRing::new();
        ring.register(PartyId::new("p"), kp.public_key());
        (kp, ring, MemStore::new())
    }

    fn push_signed(store: &MemStore, kp: &KeyPair, run: &str, kind: EvidenceKind, body: &[u8]) {
        let rec = EvidenceRecord::new(
            kind,
            "obj",
            run,
            PartyId::new("p"),
            body.to_vec(),
            Some(kp.sign(body)),
            None,
            TimeMs(0),
        );
        store.append(rec).unwrap();
    }

    #[test]
    fn clean_log_audits_clean() {
        let (kp, ring, store) = setup();
        push_signed(&store, &kp, "r1", EvidenceKind::StatePropose, b"a");
        push_signed(&store, &kp, "r1", EvidenceKind::StateRespond, b"b");
        let auditor = LogAuditor::new(ring, None);
        let report = auditor.audit(&store);
        assert!(report.is_clean());
        assert_eq!(report.total, 2);
        assert_eq!(report.valid, 2);
    }

    #[test]
    fn forged_record_is_flagged_and_excluded_from_queries() {
        let (kp, ring, store) = setup();
        push_signed(&store, &kp, "r1", EvidenceKind::StatePropose, b"good");
        // Forgery: payload swapped after signing.
        let mut forged = EvidenceRecord::new(
            EvidenceKind::StateRespond,
            "obj",
            "r1",
            PartyId::new("p"),
            b"claimed".to_vec(),
            Some(kp.sign(b"actually-signed")),
            None,
            TimeMs(0),
        );
        forged.seq = 0;
        store.append(forged).unwrap();

        let auditor = LogAuditor::new(ring, None);
        let report = auditor.audit(&store);
        assert_eq!(report.valid, 1);
        assert_eq!(report.faults.len(), 1);
        assert!(auditor
            .find_evidence(&store, "r1", EvidenceKind::StateRespond, None)
            .is_empty());
        assert_eq!(
            auditor
                .find_evidence(&store, "r1", EvidenceKind::StatePropose, None)
                .len(),
            1
        );
    }

    #[test]
    fn find_evidence_filters_by_origin() {
        let (kp, mut ring, store) = setup();
        let other = KeyPair::generate_from_seed(2);
        ring.register(PartyId::new("q"), other.public_key());
        push_signed(&store, &kp, "r1", EvidenceKind::StateRespond, b"by-p");
        let rec = EvidenceRecord::new(
            EvidenceKind::StateRespond,
            "obj",
            "r1",
            PartyId::new("q"),
            b"by-q".to_vec(),
            Some(other.sign(b"by-q")),
            None,
            TimeMs(0),
        );
        store.append(rec).unwrap();

        let auditor = LogAuditor::new(ring, None);
        let p_only = auditor.find_evidence(
            &store,
            "r1",
            EvidenceKind::StateRespond,
            Some(&PartyId::new("p")),
        );
        assert_eq!(p_only.len(), 1);
        assert_eq!(p_only[0].payload, b"by-p".to_vec());
        let all = auditor.find_evidence(&store, "r1", EvidenceKind::StateRespond, None);
        assert_eq!(all.len(), 2);
    }
}
