//! Storage traits for evidence logs and state checkpoints, plus the
//! in-memory implementation.
//!
//! Two persistence roles from the paper:
//!
//! * the non-repudiation log (§3) — append-only [`EvidenceStore`];
//! * checkpointed object state for recovery/rollback (§3) —
//!   [`SnapshotStore`].
//!
//! [`MemStore`] implements both for simulations that model crash-recovery
//! by swapping in a fresh engine over the surviving store;
//! [`crate::wal::FileStore`] implements both on disk.

use crate::record::EvidenceRecord;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use thiserror::Error;

/// Errors from evidence or snapshot storage.
#[derive(Debug, Error)]
pub enum StoreError {
    /// An I/O failure in a file-backed store.
    #[error("evidence store i/o error: {0}")]
    Io(#[from] std::io::Error),
    /// A record failed to serialise or deserialise.
    #[error("evidence store codec error: {0}")]
    Codec(String),
}

/// An append-only non-repudiation log.
///
/// Appends assign monotonically increasing sequence numbers starting at 0.
/// Implementations must retain records across simulated crashes (that is
/// the point of the log).
pub trait EvidenceStore: Send + Sync {
    /// Appends `record`, assigning and returning its sequence number.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] if the record cannot be durably recorded.
    fn append(&self, record: EvidenceRecord) -> Result<u64, StoreError>;

    /// The number of records in the log.
    fn len(&self) -> usize;

    /// Returns `true` if the log is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the record with sequence number `seq`, if present.
    fn get(&self, seq: u64) -> Option<EvidenceRecord>;

    /// Returns a snapshot of all records in sequence order.
    fn records(&self) -> Vec<EvidenceRecord>;

    /// Returns all records belonging to protocol run `run`.
    fn records_for_run(&self, run: &str) -> Vec<EvidenceRecord> {
        self.records()
            .into_iter()
            .filter(|r| r.run == run)
            .collect()
    }

    /// Makes every record appended so far durable.
    ///
    /// Stores that are durable per-append (the default) need do nothing; a
    /// store in group-commit mode (see [`crate::FileStore::group_commit`])
    /// batches appends in memory and writes them out here. The coordinator
    /// calls this at protocol-step boundaries, so a batch never spans the
    /// externally visible effects of a step.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] if buffered records cannot be written.
    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }
}

/// Keyed storage for the latest checkpoint of each object's state.
pub trait SnapshotStore: Send + Sync {
    /// Stores (replacing) the snapshot under `key`.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] if the snapshot cannot be durably stored.
    fn put_snapshot(&self, key: &str, bytes: Vec<u8>) -> Result<(), StoreError>;

    /// Loads the snapshot under `key`, if present.
    fn get_snapshot(&self, key: &str) -> Option<Vec<u8>>;
}

impl<T: EvidenceStore + ?Sized> EvidenceStore for std::sync::Arc<T> {
    fn append(&self, record: EvidenceRecord) -> Result<u64, StoreError> {
        (**self).append(record)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn get(&self, seq: u64) -> Option<EvidenceRecord> {
        (**self).get(seq)
    }
    fn records(&self) -> Vec<EvidenceRecord> {
        (**self).records()
    }
    fn flush(&self) -> Result<(), StoreError> {
        (**self).flush()
    }
}

impl<T: SnapshotStore + ?Sized> SnapshotStore for std::sync::Arc<T> {
    fn put_snapshot(&self, key: &str, bytes: Vec<u8>) -> Result<(), StoreError> {
        (**self).put_snapshot(key, bytes)
    }
    fn get_snapshot(&self, key: &str) -> Option<Vec<u8>> {
        (**self).get_snapshot(key)
    }
}

/// In-memory evidence + snapshot store.
///
/// Cheaply cloneable (shared interior); a clone held by the test harness
/// survives "crashing" the engine that wrote to it, modelling stable
/// storage.
///
/// # Example
///
/// ```
/// use b2b_evidence::{EvidenceKind, EvidenceRecord, EvidenceStore, MemStore, SnapshotStore};
/// use b2b_crypto::{PartyId, TimeMs};
///
/// let store = MemStore::new();
/// let rec = EvidenceRecord::new(
///     EvidenceKind::StatePropose, "obj", "run1", PartyId::new("p"),
///     vec![1], None, None, TimeMs(0),
/// );
/// let seq = store.append(rec).unwrap();
/// assert_eq!(seq, 0);
/// store.put_snapshot("obj", vec![9]).unwrap();
/// assert_eq!(store.get_snapshot("obj"), Some(vec![9]));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemStore {
    inner: Arc<RwLock<MemStoreInner>>,
}

#[derive(Debug, Default)]
struct MemStoreInner {
    records: Vec<EvidenceRecord>,
    snapshots: HashMap<String, Vec<u8>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl EvidenceStore for MemStore {
    fn append(&self, mut record: EvidenceRecord) -> Result<u64, StoreError> {
        let mut inner = self.inner.write();
        let seq = inner.records.len() as u64;
        record.seq = seq;
        inner.records.push(record);
        Ok(seq)
    }

    fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    fn get(&self, seq: u64) -> Option<EvidenceRecord> {
        self.inner.read().records.get(seq as usize).cloned()
    }

    fn records(&self) -> Vec<EvidenceRecord> {
        self.inner.read().records.clone()
    }
}

impl SnapshotStore for MemStore {
    fn put_snapshot(&self, key: &str, bytes: Vec<u8>) -> Result<(), StoreError> {
        self.inner.write().snapshots.insert(key.to_string(), bytes);
        Ok(())
    }

    fn get_snapshot(&self, key: &str) -> Option<Vec<u8>> {
        self.inner.read().snapshots.get(key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::EvidenceKind;
    use b2b_crypto::{PartyId, TimeMs};

    fn rec(run: &str) -> EvidenceRecord {
        EvidenceRecord::new(
            EvidenceKind::StatePropose,
            "obj",
            run,
            PartyId::new("p"),
            vec![],
            None,
            None,
            TimeMs(0),
        )
    }

    #[test]
    fn append_assigns_sequential_seqs() {
        let s = MemStore::new();
        assert!(s.is_empty());
        assert_eq!(s.append(rec("a")).unwrap(), 0);
        assert_eq!(s.append(rec("b")).unwrap(), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().run, "b");
        assert!(s.get(2).is_none());
    }

    #[test]
    fn records_for_run_filters() {
        let s = MemStore::new();
        s.append(rec("a")).unwrap();
        s.append(rec("b")).unwrap();
        s.append(rec("a")).unwrap();
        assert_eq!(s.records_for_run("a").len(), 2);
        assert_eq!(s.records_for_run("c").len(), 0);
    }

    #[test]
    fn clones_share_state() {
        let s = MemStore::new();
        let t = s.clone();
        s.append(rec("a")).unwrap();
        assert_eq!(t.len(), 1);
        t.put_snapshot("k", vec![1]).unwrap();
        assert_eq!(s.get_snapshot("k"), Some(vec![1]));
    }

    #[test]
    fn snapshot_replaces() {
        let s = MemStore::new();
        s.put_snapshot("k", vec![1]).unwrap();
        s.put_snapshot("k", vec![2]).unwrap();
        assert_eq!(s.get_snapshot("k"), Some(vec![2]));
        assert_eq!(s.get_snapshot("missing"), None);
    }
}
