//! Crash-safe file-backed evidence log and snapshot store.
//!
//! Format of `evidence.wal`: a sequence of frames, each
//! `[u32 big-endian body length][u32 big-endian CRC-32 of body][body]`
//! where the body is the JSON encoding of an [`EvidenceRecord`]. On open,
//! frames are replayed until the first truncated or CRC-corrupt frame —
//! a torn tail from a crash mid-append — which is discarded by truncating
//! the file, matching standard write-ahead-log recovery.
//!
//! Snapshots are stored as `snap-<hex(key)>.bin` files in the same
//! directory, written via a temp file + rename so a crash never leaves a
//! half-written checkpoint visible.

use crate::record::EvidenceRecord;
use crate::store::{EvidenceStore, SnapshotStore, StoreError};
use b2b_telemetry::{names, Telemetry};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE) over `data`, implemented locally to avoid a dependency.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

struct WalInner {
    file: File,
    records: Vec<EvidenceRecord>,
    /// Encoded frames awaiting the next group-commit flush (always empty in
    /// the default durable-per-append mode).
    pending: Vec<u8>,
}

/// File-backed [`EvidenceStore`] + [`SnapshotStore`].
///
/// # Example
///
/// ```no_run
/// use b2b_evidence::{EvidenceStore, FileStore};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let store = FileStore::open("/tmp/party-a-log")?;
/// assert!(store.is_empty());
/// # Ok(())
/// # }
/// ```
pub struct FileStore {
    dir: PathBuf,
    inner: Mutex<WalInner>,
    telemetry: Telemetry,
    group_commit: bool,
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FileStore({})", self.dir.display())
    }
}

impl FileStore {
    /// Opens (creating if necessary) the store in directory `dir`,
    /// replaying any existing log and discarding a torn tail.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory or log file cannot be created or
    /// read.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let wal_path = dir.join("evidence.wal");
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&wal_path)?;

        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let (records, valid_len) = replay(&bytes);
        if valid_len < bytes.len() as u64 {
            // Torn tail: truncate it away so future appends are clean.
            file.set_len(valid_len)?;
            file.seek(SeekFrom::End(0))?;
        }
        Ok(FileStore {
            dir,
            inner: Mutex::new(WalInner {
                file,
                records,
                pending: Vec::new(),
            }),
            telemetry: Telemetry::default(),
            group_commit: false,
        })
    }

    /// Attaches an observability handle; every successful append then bumps
    /// the `wal_appends` counter in its registry.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> FileStore {
        self.telemetry = telemetry;
        self
    }

    /// Selects group-commit mode (default `false`: durable per append).
    ///
    /// In group-commit mode, appends buffer their encoded frames in memory
    /// and [`EvidenceStore::flush`] writes the whole batch with a single
    /// write + flush at a protocol-step boundary. A crash between appends
    /// and the flush loses only that unflushed batch — the log on disk
    /// still ends at a frame boundary (or in a torn tail that reopen
    /// truncates), exactly the standard WAL recovery already in place.
    /// Durability weakens from per-record to per-step; detection and
    /// audit semantics over flushed records are unchanged.
    pub fn group_commit(mut self, enabled: bool) -> FileStore {
        self.group_commit = enabled;
        self
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snapshot_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("snap-{}.bin", hex::encode(key)))
    }
}

/// Replays frames from `bytes`, returning the decoded records and the byte
/// length of the valid prefix.
fn replay(bytes: &[u8]) -> (Vec<EvidenceRecord>, u64) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        if offset + 8 > bytes.len() {
            break;
        }
        let len =
            u32::from_be_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let body_start = offset + 8;
        let body_end = body_start + len;
        if body_end > bytes.len() {
            break; // truncated frame
        }
        let body = &bytes[body_start..body_end];
        if crc32(body) != crc {
            break; // corrupt frame: stop at last good prefix
        }
        match serde_json::from_slice::<EvidenceRecord>(body) {
            Ok(rec) => records.push(rec),
            Err(_) => break,
        }
        offset = body_end;
    }
    (records, offset as u64)
}

impl EvidenceStore for FileStore {
    fn append(&self, mut record: EvidenceRecord) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock();
        let seq = inner.records.len() as u64;
        record.seq = seq;
        let body = serde_json::to_vec(&record).map_err(|e| StoreError::Codec(e.to_string()))?;
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(&body).to_be_bytes());
        frame.extend_from_slice(&body);
        if self.group_commit {
            inner.pending.extend_from_slice(&frame);
        } else {
            inner.file.write_all(&frame)?;
            inner.file.flush()?;
            self.telemetry.inc(names::WAL_FLUSHES);
        }
        inner.records.push(record);
        self.telemetry.inc(names::WAL_APPENDS);
        Ok(seq)
    }

    fn flush(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        if inner.pending.is_empty() {
            return Ok(());
        }
        let pending = std::mem::take(&mut inner.pending);
        inner.file.write_all(&pending)?;
        inner.file.flush()?;
        self.telemetry.inc(names::WAL_FLUSHES);
        Ok(())
    }

    fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    fn get(&self, seq: u64) -> Option<EvidenceRecord> {
        self.inner.lock().records.get(seq as usize).cloned()
    }

    fn records(&self) -> Vec<EvidenceRecord> {
        self.inner.lock().records.clone()
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // Best-effort final flush of a group-commit batch on clean close;
        // a crash (no Drop) is the case the torn-tail recovery covers.
        let _ = EvidenceStore::flush(self);
    }
}

impl SnapshotStore for FileStore {
    fn put_snapshot(&self, key: &str, bytes: Vec<u8>) -> Result<(), StoreError> {
        let path = self.snapshot_path(key);
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn get_snapshot(&self, key: &str) -> Option<Vec<u8>> {
        std::fs::read(self.snapshot_path(key)).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::EvidenceKind;
    use b2b_crypto::{PartyId, TimeMs};

    fn rec(run: &str, payload: Vec<u8>) -> EvidenceRecord {
        EvidenceRecord::new(
            EvidenceKind::StateRespond,
            "obj",
            run,
            PartyId::new("p"),
            payload,
            None,
            None,
            TimeMs(7),
        )
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("b2b-wal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 (IEEE check value).
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_reopen_recovers_records() {
        let dir = temp_dir("reopen");
        {
            let store = FileStore::open(&dir).unwrap();
            store.append(rec("r1", vec![1])).unwrap();
            store.append(rec("r2", vec![2, 3])).unwrap();
        }
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(0).unwrap().run, "r1");
        assert_eq!(store.get(1).unwrap().payload, vec![2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_on_reopen() {
        let dir = temp_dir("torn");
        {
            let store = FileStore::open(&dir).unwrap();
            store.append(rec("good", vec![1])).unwrap();
        }
        // Simulate a crash mid-append: write a partial frame.
        let wal = dir.join("evidence.wal");
        let mut f = OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[0, 0, 0, 99, 1, 2]).unwrap(); // truncated header+body
        drop(f);

        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "good prefix survives, torn tail dropped");
        // And the store is appendable again.
        store.append(rec("after", vec![9])).unwrap();
        drop(store);
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1).unwrap().run, "after");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = temp_dir("crc");
        {
            let store = FileStore::open(&dir).unwrap();
            store.append(rec("a", vec![1])).unwrap();
            store.append(rec("b", vec![2])).unwrap();
        }
        // Flip a byte inside the second frame's body.
        let wal = dir.join("evidence.wal");
        let mut bytes = std::fs::read(&wal).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xff;
        std::fs::write(&wal, &bytes).unwrap();

        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(0).unwrap().run, "a");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshots_roundtrip_and_replace() {
        let dir = temp_dir("snap");
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.get_snapshot("obj"), None);
        store.put_snapshot("obj", vec![1, 2]).unwrap();
        store.put_snapshot("obj", vec![3]).unwrap();
        assert_eq!(store.get_snapshot("obj"), Some(vec![3]));
        // Keys with path-hostile characters are safe (hex-encoded).
        store.put_snapshot("../evil", vec![9]).unwrap();
        assert_eq!(store.get_snapshot("../evil"), Some(vec![9]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_are_counted_into_telemetry() {
        let dir = temp_dir("telemetry");
        let tel = Telemetry::new();
        let store = FileStore::open(&dir).unwrap().with_telemetry(tel.clone());
        store.append(rec("a", vec![1])).unwrap();
        store.append(rec("b", vec![2])).unwrap();
        assert_eq!(tel.metrics().snapshot().counter(names::WAL_APPENDS), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_batches_until_flush() {
        let dir = temp_dir("group");
        let tel = Telemetry::new();
        let store = FileStore::open(&dir)
            .unwrap()
            .with_telemetry(tel.clone())
            .group_commit(true);
        store.append(rec("a", vec![1])).unwrap();
        store.append(rec("b", vec![2])).unwrap();
        store.append(rec("c", vec![3])).unwrap();
        // Nothing on disk yet; reads still see the appended records.
        assert_eq!(std::fs::read(dir.join("evidence.wal")).unwrap().len(), 0);
        assert_eq!(store.len(), 3);
        assert_eq!(tel.metrics().snapshot().counter(names::WAL_FLUSHES), 0);
        store.flush().unwrap();
        assert_eq!(tel.metrics().snapshot().counter(names::WAL_FLUSHES), 1);
        assert!(!std::fs::read(dir.join("evidence.wal")).unwrap().is_empty());
        // A second flush with nothing pending is a no-op.
        store.flush().unwrap();
        assert_eq!(tel.metrics().snapshot().counter(names::WAL_FLUSHES), 1);
        drop(store);
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(2).unwrap().run, "c");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_batch_is_lost_on_crash_but_log_stays_well_formed() {
        let dir = temp_dir("group-crash");
        let store = FileStore::open(&dir).unwrap().group_commit(true);
        store.append(rec("flushed", vec![1])).unwrap();
        store.flush().unwrap();
        store.append(rec("lost", vec![2])).unwrap();
        // Simulate a crash: the process dies before the step-boundary
        // flush, so the on-disk log holds only the flushed prefix.
        let on_disk = std::fs::read(dir.join("evidence.wal")).unwrap();
        let (records, valid) = replay(&on_disk);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].run, "flushed");
        assert_eq!(valid, on_disk.len() as u64, "log ends at a frame boundary");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_mode_flushes_every_append() {
        let dir = temp_dir("durable-count");
        let tel = Telemetry::new();
        let store = FileStore::open(&dir).unwrap().with_telemetry(tel.clone());
        store.append(rec("a", vec![1])).unwrap();
        store.append(rec("b", vec![2])).unwrap();
        assert_eq!(tel.metrics().snapshot().counter(names::WAL_FLUSHES), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seq_numbers_continue_after_reopen() {
        let dir = temp_dir("seq");
        {
            let store = FileStore::open(&dir).unwrap();
            assert_eq!(store.append(rec("a", vec![])).unwrap(), 0);
        }
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.append(rec("b", vec![])).unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
