//! Evidence records: the unit of a party's non-repudiation log.

use b2b_crypto::{PartyId, Signature, TimeMs, TimeStamp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which protocol action a record evidences.
///
/// One variant per evidence-bearing message of the coordination protocols
/// (paper §4.3 and §4.5), plus local events that matter for recovery and
/// arbitration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvidenceKind {
    /// m1 of state coordination: a signed state-transition proposal.
    StatePropose,
    /// m2: a recipient's signed receipt + validity decision.
    StateRespond,
    /// m3: the proposer's aggregated decision with revealed authenticator.
    StateDecide,
    /// Initial request from a prospective member to the sponsor.
    ConnectRequest,
    /// Sponsor's relay of a connection proposal to current members.
    ConnectPropose,
    /// A member's signed decision on a connection request.
    ConnectRespond,
    /// Sponsor's aggregated connection decision.
    ConnectDecide,
    /// Sponsor's welcome to an admitted member (carries agreed state).
    ConnectWelcome,
    /// Sponsor's signed immediate rejection of a connection request.
    ConnectReject,
    /// A member's request for voluntary disconnection or an eviction
    /// proposal.
    DisconnectRequest,
    /// Sponsor's relay of a disconnection/eviction proposal.
    DisconnectPropose,
    /// A member's signed decision on a disconnection/eviction.
    DisconnectRespond,
    /// Sponsor's aggregated disconnection decision.
    DisconnectDecide,
    /// Final acknowledgement to a voluntarily departing member.
    DisconnectAck,
    /// Sponsor's signed rejection notice to a voluntary leaver whose run
    /// failed a consistency check at a polled member.
    DisconnectReject,
    /// A locally installed checkpoint of newly validated object state.
    Checkpoint,
    /// A locally detected misbehaviour or inconsistency (diagnostics).
    Misbehaviour,
    /// A TTP-certified abort of a blocked run (§7 termination extension).
    TtpAbort,
}

impl EvidenceKind {
    /// Short stable name used in exported logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            EvidenceKind::StatePropose => "state-propose",
            EvidenceKind::StateRespond => "state-respond",
            EvidenceKind::StateDecide => "state-decide",
            EvidenceKind::ConnectRequest => "connect-request",
            EvidenceKind::ConnectPropose => "connect-propose",
            EvidenceKind::ConnectRespond => "connect-respond",
            EvidenceKind::ConnectDecide => "connect-decide",
            EvidenceKind::ConnectWelcome => "connect-welcome",
            EvidenceKind::ConnectReject => "connect-reject",
            EvidenceKind::DisconnectRequest => "disconnect-request",
            EvidenceKind::DisconnectPropose => "disconnect-propose",
            EvidenceKind::DisconnectRespond => "disconnect-respond",
            EvidenceKind::DisconnectDecide => "disconnect-decide",
            EvidenceKind::DisconnectAck => "disconnect-ack",
            EvidenceKind::DisconnectReject => "disconnect-reject",
            EvidenceKind::Checkpoint => "checkpoint",
            EvidenceKind::Misbehaviour => "misbehaviour",
            EvidenceKind::TtpAbort => "ttp-abort",
        }
    }
}

impl fmt::Display for EvidenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry in a party's non-repudiation log.
///
/// The `payload` holds the canonical bytes of the evidenced (signed)
/// content; `signature` is the originator's signature over exactly those
/// bytes, and `timestamp` is the TSA's token over them (§4.2 requires all
/// signed evidence to be time-stamped).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvidenceRecord {
    /// Log sequence number, assigned by the store on append.
    pub seq: u64,
    /// The protocol action evidenced.
    pub kind: EvidenceKind,
    /// The shared object (coordination alias) the action concerns.
    pub object: String,
    /// Hex-rendered identifier of the protocol run the action belongs to.
    pub run: String,
    /// The party whose action this record evidences (the signer).
    pub origin: PartyId,
    /// Canonical bytes of the evidenced content.
    pub payload: Vec<u8>,
    /// The originator's signature over `payload` (absent for purely local
    /// events such as checkpoints).
    pub signature: Option<Signature>,
    /// TSA token over `payload`.
    pub timestamp: Option<TimeStamp>,
    /// Local time at which the record was appended.
    pub logged_at: TimeMs,
}

impl EvidenceRecord {
    /// Creates a record awaiting a store-assigned sequence number.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: EvidenceKind,
        object: impl Into<String>,
        run: impl Into<String>,
        origin: PartyId,
        payload: Vec<u8>,
        signature: Option<Signature>,
        timestamp: Option<TimeStamp>,
        logged_at: TimeMs,
    ) -> EvidenceRecord {
        EvidenceRecord {
            seq: 0,
            kind,
            object: object.into(),
            run: run.into(),
            origin,
            payload,
            signature,
            timestamp,
            logged_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_unique() {
        use EvidenceKind::*;
        let kinds = [
            StatePropose,
            StateRespond,
            StateDecide,
            ConnectRequest,
            ConnectPropose,
            ConnectRespond,
            ConnectDecide,
            ConnectWelcome,
            ConnectReject,
            DisconnectRequest,
            DisconnectPropose,
            DisconnectRespond,
            DisconnectDecide,
            DisconnectAck,
            DisconnectReject,
            Checkpoint,
            Misbehaviour,
            TtpAbort,
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn record_serde_roundtrip() {
        let rec = EvidenceRecord::new(
            EvidenceKind::StatePropose,
            "order-1",
            "abcd",
            PartyId::new("customer"),
            vec![1, 2, 3],
            None,
            None,
            TimeMs(42),
        );
        let json = serde_json::to_string(&rec).unwrap();
        let back: EvidenceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(EvidenceKind::StateDecide.to_string(), "state-decide");
    }
}
