//! Property-based tests of the file WAL: arbitrary record batches survive
//! reopen, and arbitrary corruption of the tail never corrupts the valid
//! prefix.

use b2b_crypto::{PartyId, TimeMs};
use b2b_evidence::{EvidenceKind, EvidenceRecord, EvidenceStore, FileStore};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_dir(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "b2b-wal-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn record(run: &str, payload: Vec<u8>) -> EvidenceRecord {
    EvidenceRecord::new(
        EvidenceKind::StatePropose,
        "obj",
        run,
        PartyId::new("p"),
        payload,
        None,
        None,
        TimeMs(1),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sequence of appended payloads is read back identically after
    /// reopen, in order, with sequential sequence numbers.
    #[test]
    fn wal_roundtrips_arbitrary_batches(
        tag in 0u64..1_000_000,
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 1..20),
    ) {
        let dir = temp_dir(tag);
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = FileStore::open(&dir).unwrap();
            for (i, p) in payloads.iter().enumerate() {
                let seq = store.append(record(&format!("r{i}"), p.clone())).unwrap();
                prop_assert_eq!(seq, i as u64);
            }
        }
        let store = FileStore::open(&dir).unwrap();
        prop_assert_eq!(store.len(), payloads.len());
        for (i, p) in payloads.iter().enumerate() {
            let rec = store.get(i as u64).unwrap();
            prop_assert_eq!(&rec.payload, p);
            prop_assert_eq!(rec.seq, i as u64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncating the file at any point, or appending arbitrary garbage,
    /// loses at most the torn tail: every fully-written prefix record
    /// whose frame survives is recovered intact.
    #[test]
    fn wal_survives_arbitrary_tail_damage(
        tag in 1_000_000u64..2_000_000,
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 2..10),
        cut_fraction in 0.0f64..1.0,
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let dir = temp_dir(tag);
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = FileStore::open(&dir).unwrap();
            for (i, p) in payloads.iter().enumerate() {
                store.append(record(&format!("r{i}"), p.clone())).unwrap();
            }
        }
        let wal = dir.join("evidence.wal");
        let mut bytes = std::fs::read(&wal).unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        bytes.truncate(cut);
        bytes.extend_from_slice(&garbage);
        std::fs::write(&wal, &bytes).unwrap();

        let store = FileStore::open(&dir).unwrap();
        // Every recovered record matches the original at its index.
        for (i, original) in payloads.iter().enumerate().take(store.len()) {
            let rec = store.get(i as u64).unwrap();
            prop_assert_eq!(&rec.payload, original);
        }
        // And the store accepts new appends cleanly after damage.
        let seq = store.append(record("after", vec![1])).unwrap();
        prop_assert_eq!(seq as usize, store.len() - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Snapshots: last write wins for arbitrary key/value sequences.
    #[test]
    fn snapshots_last_write_wins(
        tag in 2_000_000u64..3_000_000,
        writes in proptest::collection::vec(("key[a-c]", proptest::collection::vec(any::<u8>(), 0..64)), 1..12),
    ) {
        use b2b_evidence::SnapshotStore;
        let dir = temp_dir(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        let mut expected: std::collections::HashMap<String, Vec<u8>> = Default::default();
        for (k, v) in &writes {
            store.put_snapshot(k, v.clone()).unwrap();
            expected.insert(k.clone(), v.clone());
        }
        for (k, v) in &expected {
            let got = store.get_snapshot(k);
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
