//! Randomized tests of the file WAL: arbitrary record batches survive
//! reopen, and arbitrary corruption of the tail never corrupts the valid
//! prefix.
//!
//! These were property-based (proptest) tests; the offline build vendors no
//! proptest, so each property runs as a seeded deterministic loop instead.

use b2b_crypto::{PartyId, TimeMs};
use b2b_evidence::{EvidenceKind, EvidenceRecord, EvidenceStore, FileStore};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;

const CASES: u64 = 16;

fn temp_dir(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "b2b-wal-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn record(run: &str, payload: Vec<u8>) -> EvidenceRecord {
    EvidenceRecord::new(
        EvidenceKind::StatePropose,
        "obj",
        run,
        PartyId::new("p"),
        payload,
        None,
        None,
        TimeMs(1),
    )
}

fn bytes(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(min_len..=max_len);
    (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect()
}

/// Any sequence of appended payloads is read back identically after
/// reopen, in order, with sequential sequence numbers.
#[test]
fn wal_roundtrips_arbitrary_batches() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3A15EED ^ case);
        let n = rng.gen_range(1..20usize);
        let payloads: Vec<Vec<u8>> = (0..n).map(|_| bytes(&mut rng, 0, 512)).collect();

        let dir = temp_dir(case);
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = FileStore::open(&dir).unwrap();
            for (i, p) in payloads.iter().enumerate() {
                let seq = store.append(record(&format!("r{i}"), p.clone())).unwrap();
                assert_eq!(seq, i as u64);
            }
        }
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.len(), payloads.len());
        for (i, p) in payloads.iter().enumerate() {
            let rec = store.get(i as u64).unwrap();
            assert_eq!(&rec.payload, p);
            assert_eq!(rec.seq, i as u64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Truncating the file at any point, or appending arbitrary garbage,
/// loses at most the torn tail: every fully-written prefix record
/// whose frame survives is recovered intact.
#[test]
fn wal_survives_arbitrary_tail_damage() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xDA3A6E ^ case);
        let n = rng.gen_range(2..10usize);
        let payloads: Vec<Vec<u8>> = (0..n).map(|_| bytes(&mut rng, 1, 64)).collect();
        let cut_fraction = rng.gen_range(0..=1000u64) as f64 / 1000.0;
        let garbage = bytes(&mut rng, 0, 64);

        let dir = temp_dir(1_000_000 + case);
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = FileStore::open(&dir).unwrap();
            for (i, p) in payloads.iter().enumerate() {
                store.append(record(&format!("r{i}"), p.clone())).unwrap();
            }
        }
        let wal = dir.join("evidence.wal");
        let mut damaged = std::fs::read(&wal).unwrap();
        let cut = ((damaged.len() as f64) * cut_fraction) as usize;
        damaged.truncate(cut);
        damaged.extend_from_slice(&garbage);
        std::fs::write(&wal, &damaged).unwrap();

        let store = FileStore::open(&dir).unwrap();
        // Every recovered record matches the original at its index.
        for (i, original) in payloads.iter().enumerate().take(store.len()) {
            let rec = store.get(i as u64).unwrap();
            assert_eq!(&rec.payload, original);
        }
        // And the store accepts new appends cleanly after damage.
        let seq = store.append(record("after", vec![1])).unwrap();
        assert_eq!(seq as usize, store.len() - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Group-commit torn-tail recovery: with record batches flushed at known
/// byte boundaries, truncating the log at **every** byte offset spanning
/// a batch boundary (from inside the last frame of the first batch to the
/// end of the second) recovers exactly the records whose frames are
/// complete at the cut — never a partial record — and a batch whose flush
/// completed before the cut is recovered in full.
#[test]
fn group_commit_torn_tail_recovers_exactly_flushed_frames() {
    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x70C0FFEE ^ case);
        let batch_sizes: Vec<usize> = (0..2).map(|_| rng.gen_range(1..=3usize)).collect();
        let payloads: Vec<Vec<Vec<u8>>> = batch_sizes
            .iter()
            .map(|&k| (0..k).map(|_| bytes(&mut rng, 0, 24)).collect())
            .collect();

        let dir = temp_dir(3_000_000 + case);
        let _ = std::fs::remove_dir_all(&dir);
        let wal = dir.join("evidence.wal");
        let mut flush_points = Vec::new();
        {
            let store = FileStore::open(&dir).unwrap().group_commit(true);
            let mut i = 0;
            for batch in &payloads {
                for p in batch {
                    store.append(record(&format!("r{i}"), p.clone())).unwrap();
                    i += 1;
                }
                store.flush().unwrap();
                flush_points.push(std::fs::metadata(&wal).unwrap().len() as usize);
            }
        }
        let full = std::fs::read(&wal).unwrap();
        assert_eq!(full.len(), *flush_points.last().unwrap());

        // Frame boundaries from the on-disk layout:
        // [u32 BE body len][u32 BE crc32][body].
        let mut frame_ends = Vec::new();
        let mut off = 0usize;
        while off < full.len() {
            let len = u32::from_be_bytes(full[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + len;
            frame_ends.push(off);
        }
        let flat: Vec<&Vec<u8>> = payloads.iter().flatten().collect();
        assert_eq!(frame_ends.len(), flat.len());
        // A flush lands exactly on a frame boundary — a torn group write
        // can only ever tear frames, not interleave them.
        for fp in &flush_points {
            assert!(frame_ends.contains(fp), "flush point {fp} mid-frame");
        }

        let start = flush_points[0].saturating_sub(12);
        for cut in start..=full.len() {
            std::fs::write(&wal, &full[..cut]).unwrap();
            let store = FileStore::open(&dir).unwrap();
            let want = frame_ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(
                store.len(),
                want,
                "case {case} cut {cut}: recovered record count"
            );
            for (i, original) in flat.iter().take(want).enumerate() {
                let rec = store.get(i as u64).unwrap();
                assert_eq!(
                    &&rec.payload, original,
                    "case {case} cut {cut}: record {i} intact"
                );
                assert_eq!(rec.seq, i as u64);
            }
            // Durability of a completed flush: every batch whose flush
            // point lies at or before the cut is recovered in full.
            for (b, fp) in flush_points.iter().enumerate() {
                if *fp <= cut {
                    let batch_records: usize = batch_sizes[..=b].iter().sum();
                    assert!(
                        store.len() >= batch_records,
                        "case {case} cut {cut}: flushed batch {b} lost records"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Snapshots: last write wins for arbitrary key/value sequences.
#[test]
fn snapshots_last_write_wins() {
    use b2b_evidence::SnapshotStore;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5A45 ^ case);
        let n = rng.gen_range(1..12usize);
        let writes: Vec<(String, Vec<u8>)> = (0..n)
            .map(|_| {
                let key = format!("key{}", (b'a' + rng.gen_range(0..3u32) as u8) as char);
                (key, bytes(&mut rng, 0, 64))
            })
            .collect();

        let dir = temp_dir(2_000_000 + case);
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        let mut expected: std::collections::HashMap<String, Vec<u8>> = Default::default();
        for (k, v) in &writes {
            store.put_snapshot(k, v.clone()).unwrap();
            expected.insert(k.clone(), v.clone());
        }
        for (k, v) in &expected {
            let got = store.get_snapshot(k);
            assert_eq!(got.as_ref(), Some(v));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
