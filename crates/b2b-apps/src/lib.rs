#![warn(missing_docs)]

//! Proof-of-concept applications for the B2BObjects middleware (paper §5
//! and the §2 scenarios).
//!
//! * [`tictactoe`] — the two-party turn-taking game of §5.1 (Figure 5),
//!   representative of symmetric-rule shared state.
//! * [`order`] — the order-processing application of §5.2 (Figure 7):
//!   asymmetric per-role validation, in two-party (customer/supplier) and
//!   four-party (plus approver and dispatcher) variants.
//! * [`auction`] — the distributed auction service of §2 scenario 3:
//!   auction houses jointly operating a regulated market place.
//! * [`oss`] — dispersal of operational support to the customer (§2
//!   scenario 2): shared service configuration with customer- and
//!   provider-controlled aspects.
//! * [`whiteboard`] — a shared whiteboard, the other turn-taking example
//!   class §5.1 mentions.
//! * [`ttp`] — trusted-third-party interposition (Figure 1b / Figure 6):
//!   playing through a TTP that validates moves before disclosure, and a
//!   bridge agent for indirect interaction.

pub mod auction;
pub mod order;
pub mod oss;
pub mod tictactoe;
pub mod ttp;
pub mod whiteboard;

pub use auction::{Auction, AuctionObject, Bid};
pub use order::{Order, OrderLine, OrderObject, OrderRoles, OrderUpdate};
pub use oss::{FaultTicket, OssObject, ServiceConfig};
pub use tictactoe::{Board, GameObject, Mark, MoveError, Players};
pub use ttp::{lenient_game_object, BridgeAgent};
pub use whiteboard::{Stroke, Whiteboard, WhiteboardObject};
