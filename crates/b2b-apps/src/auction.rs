//! The distributed auction service of §2, scenario 3.
//!
//! "Autonomous, geographically dispersed auction houses wish to collaborate
//! to deliver a trusted, distributed auction service to their clients …
//! The clients act upon the state of an auction through servers that are
//! controlled by the auction houses. These servers share and update
//! auction state. The clients expect the service to guarantee the same
//! chance of a successful outcome irrespective of which individual server
//! is used."
//!
//! Every auction house holds a replica of the [`Auction`]; a client's bid
//! is submitted through its local house and validated by every house:
//! monotonically increasing bids, no bids below the reserve, no bids after
//! closing, and only the opening house may close.

use b2b_core::{B2BObject, Decision};
use b2b_crypto::PartyId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bid by a client, placed through an auction house.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bid {
    /// The bidding client (opaque to the middleware).
    pub bidder: String,
    /// The house through which the bid was placed.
    pub via_house: PartyId,
    /// The amount.
    pub amount: u64,
}

/// The shared auction state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Auction {
    /// What is being sold.
    pub item: String,
    /// The house that opened the auction (only it may close).
    pub opened_by: PartyId,
    /// The reserve price.
    pub reserve: u64,
    /// Full bid history, in acceptance order.
    pub bids: Vec<Bid>,
    /// Whether the auction is closed.
    pub closed: bool,
}

impl Auction {
    /// Opens an auction for `item` with the given reserve.
    pub fn open(item: impl Into<String>, opened_by: PartyId, reserve: u64) -> Auction {
        Auction {
            item: item.into(),
            opened_by,
            reserve,
            bids: Vec::new(),
            closed: false,
        }
    }

    /// The current best bid.
    pub fn best_bid(&self) -> Option<&Bid> {
        self.bids.last()
    }

    /// The winner once closed.
    pub fn winner(&self) -> Option<&Bid> {
        if self.closed {
            self.best_bid()
        } else {
            None
        }
    }

    /// Appends a bid locally (house-side tentative action).
    pub fn place_bid(&mut self, bidder: impl Into<String>, via_house: PartyId, amount: u64) {
        self.bids.push(Bid {
            bidder: bidder.into(),
            via_house,
            amount,
        });
    }

    /// Serialises for coordination.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("auction serialises")
    }

    /// Parses from coordinated bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Auction> {
        serde_json::from_slice(bytes).ok()
    }
}

impl fmt::Display for Auction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "auction[{}] reserve {}: best {} ({})",
            self.item,
            self.reserve,
            self.best_bid()
                .map(|b| format!("{} by {}", b.amount, b.bidder))
                .unwrap_or_else(|| "none".into()),
            if self.closed { "closed" } else { "open" }
        )
    }
}

/// The shared auction object held by each house.
pub struct AuctionObject {
    auction: Auction,
}

impl AuctionObject {
    /// Wraps an opened auction.
    pub fn new(auction: Auction) -> AuctionObject {
        AuctionObject { auction }
    }

    /// The current auction state.
    pub fn auction(&self) -> &Auction {
        &self.auction
    }

    fn check(&self, proposer: &PartyId, cur: &Auction, next: &Auction) -> Option<String> {
        if next.item != cur.item || next.reserve != cur.reserve || next.opened_by != cur.opened_by {
            return Some("auction terms are immutable".into());
        }
        if cur.closed {
            return Some("the auction is closed".into());
        }
        match (next.bids.len(), next.closed) {
            // Close with no new bid: only the opening house.
            (n, true) if n == cur.bids.len() => {
                if proposer != &cur.opened_by {
                    return Some("only the opening house may close".into());
                }
                if next.bids != cur.bids {
                    return Some("closing may not rewrite bid history".into());
                }
                None
            }
            // One new bid, still open.
            (n, false) if n == cur.bids.len() + 1 => {
                if next.bids[..cur.bids.len()] != cur.bids[..] {
                    return Some("bid history may not be rewritten".into());
                }
                let bid = next.bids.last().expect("one new bid");
                if &bid.via_house != proposer {
                    return Some("a house may only submit its own clients' bids".into());
                }
                if bid.amount < cur.reserve {
                    return Some(format!(
                        "bid {} is below the reserve {}",
                        bid.amount, cur.reserve
                    ));
                }
                if let Some(best) = cur.best_bid() {
                    if bid.amount <= best.amount {
                        return Some(format!(
                            "bid {} does not beat the best bid {}",
                            bid.amount, best.amount
                        ));
                    }
                }
                None
            }
            _ => Some("a transition is one bid or one close".into()),
        }
    }
}

impl B2BObject for AuctionObject {
    fn get_state(&self) -> Vec<u8> {
        self.auction.to_bytes()
    }

    fn apply_state(&mut self, state: &[u8]) {
        if let Some(a) = Auction::from_bytes(state) {
            self.auction = a;
        }
    }

    fn validate_state(&self, proposer: &PartyId, current: &[u8], proposed: &[u8]) -> Decision {
        let (Some(cur), Some(next)) = (Auction::from_bytes(current), Auction::from_bytes(proposed))
        else {
            return Decision::reject("undecodable auction");
        };
        match self.check(proposer, &cur, &next) {
            None => Decision::accept(),
            Some(reason) => Decision::reject(reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn house(i: usize) -> PartyId {
        PartyId::new(format!("house{i}"))
    }

    fn object() -> AuctionObject {
        AuctionObject::new(Auction::open("painting", house(0), 100))
    }

    fn validate(obj: &AuctionObject, who: &PartyId, cur: &Auction, next: &Auction) -> Decision {
        obj.validate_state(who, &cur.to_bytes(), &next.to_bytes())
    }

    #[test]
    fn increasing_bids_accepted() {
        let obj = object();
        let s0 = obj.auction().clone();
        let mut s1 = s0.clone();
        s1.place_bid("alice", house(1), 100);
        assert!(validate(&obj, &house(1), &s0, &s1).is_accept());
        let mut s2 = s1.clone();
        s2.place_bid("bob", house(2), 150);
        assert!(validate(&obj, &house(2), &s1, &s2).is_accept());
    }

    #[test]
    fn non_increasing_or_below_reserve_rejected() {
        let obj = object();
        let mut s0 = obj.auction().clone();
        s0.place_bid("alice", house(1), 120);
        let mut low = s0.clone();
        low.place_bid("bob", house(2), 120);
        assert!(!validate(&obj, &house(2), &s0, &low).is_accept());
        let empty = obj.auction().clone();
        let mut below = empty.clone();
        below.place_bid("bob", house(2), 50);
        let d = validate(&obj, &house(2), &empty, &below);
        assert!(!d.is_accept());
        assert!(d.reason.unwrap().contains("reserve"));
    }

    #[test]
    fn houses_cannot_submit_for_other_houses() {
        let obj = object();
        let s0 = obj.auction().clone();
        let mut s1 = s0.clone();
        s1.place_bid("alice", house(2), 150);
        // house1 proposes a bid claiming it came via house2.
        assert!(!validate(&obj, &house(1), &s0, &s1).is_accept());
    }

    #[test]
    fn only_opener_closes_and_closed_is_final() {
        let obj = object();
        let mut s0 = obj.auction().clone();
        s0.place_bid("alice", house(1), 150);
        let mut closed = s0.clone();
        closed.closed = true;
        assert!(!validate(&obj, &house(1), &s0, &closed).is_accept());
        assert!(validate(&obj, &house(0), &s0, &closed).is_accept());
        // Nothing after close.
        let mut late = closed.clone();
        late.place_bid("carol", house(2), 500);
        late.closed = false;
        assert!(!validate(&obj, &house(2), &closed, &late).is_accept());
        assert_eq!(closed.winner().unwrap().bidder, "alice");
    }

    #[test]
    fn history_rewrites_rejected() {
        let obj = object();
        let mut s0 = obj.auction().clone();
        s0.place_bid("alice", house(1), 150);
        let mut rewritten = s0.clone();
        rewritten.bids[0].amount = 1;
        rewritten.place_bid("bob", house(1), 2);
        assert!(!validate(&obj, &house(1), &s0, &rewritten).is_accept());
        // Tampering with terms.
        let mut cheaper = s0.clone();
        cheaper.reserve = 1;
        cheaper.place_bid("bob", house(1), 160);
        assert!(!validate(&obj, &house(1), &s0, &cheaper).is_accept());
    }

    #[test]
    fn display_summarises() {
        let mut a = Auction::open("vase", house(0), 10);
        assert!(a.to_string().contains("none"));
        a.place_bid("alice", house(1), 20);
        a.closed = true;
        assert!(a.to_string().contains("20 by alice"));
        assert!(a.to_string().contains("closed"));
    }
}
