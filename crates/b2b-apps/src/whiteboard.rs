//! A shared whiteboard — §5.1's other example of the turn-taking class:
//! "Turn-taking access to shared state is characteristic of other
//! applications such as shared white boards."
//!
//! Parties take round-robin turns adding strokes; nobody may erase or
//! modify another party's strokes.

use b2b_core::{B2BObject, Decision};
use b2b_crypto::PartyId;
use serde::{Deserialize, Serialize};

/// One stroke on the board.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stroke {
    /// The drawing party.
    pub author: PartyId,
    /// Polyline points as `(x, y)` pairs.
    pub points: Vec<(i32, i32)>,
    /// Colour name.
    pub colour: String,
}

/// The shared whiteboard state: an append-only stroke list.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Whiteboard {
    /// Strokes in drawing order.
    pub strokes: Vec<Stroke>,
}

impl Whiteboard {
    /// An empty board.
    pub fn new() -> Whiteboard {
        Whiteboard::default()
    }

    /// Appends a stroke locally.
    pub fn draw(&mut self, stroke: Stroke) {
        self.strokes.push(stroke);
    }

    /// Serialises for coordination.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("whiteboard serialises")
    }

    /// Parses from coordinated bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Whiteboard> {
        serde_json::from_slice(bytes).ok()
    }
}

/// The shared whiteboard object with round-robin turn enforcement.
pub struct WhiteboardObject {
    board: Whiteboard,
    /// Turn order (round-robin).
    turn_order: Vec<PartyId>,
}

impl WhiteboardObject {
    /// Creates a whiteboard drawn on by `turn_order`, in that rotation.
    pub fn new(turn_order: Vec<PartyId>) -> WhiteboardObject {
        WhiteboardObject {
            board: Whiteboard::new(),
            turn_order,
        }
    }

    /// The current board.
    pub fn board(&self) -> &Whiteboard {
        &self.board
    }

    /// Whose turn it is after `n` strokes.
    pub fn turn_after(&self, n: usize) -> &PartyId {
        &self.turn_order[n % self.turn_order.len()]
    }
}

impl B2BObject for WhiteboardObject {
    fn get_state(&self) -> Vec<u8> {
        self.board.to_bytes()
    }

    fn apply_state(&mut self, state: &[u8]) {
        if let Some(b) = Whiteboard::from_bytes(state) {
            self.board = b;
        }
    }

    fn validate_state(&self, proposer: &PartyId, current: &[u8], proposed: &[u8]) -> Decision {
        let (Some(cur), Some(next)) = (
            Whiteboard::from_bytes(current),
            Whiteboard::from_bytes(proposed),
        ) else {
            return Decision::reject("undecodable whiteboard");
        };
        if next.strokes.len() != cur.strokes.len() + 1
            || next.strokes[..cur.strokes.len()] != cur.strokes[..]
        {
            return Decision::reject("a transition is exactly one appended stroke");
        }
        let stroke = next.strokes.last().expect("one appended stroke");
        if &stroke.author != proposer {
            return Decision::reject("strokes must be signed by their author");
        }
        let expected = self.turn_after(cur.strokes.len());
        if expected != proposer {
            return Decision::reject(format!("it is {expected}'s turn, not {proposer}'s"));
        }
        if stroke.points.is_empty() {
            return Decision::reject("empty stroke");
        }
        Decision::accept()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parties() -> Vec<PartyId> {
        vec![PartyId::new("a"), PartyId::new("b"), PartyId::new("c")]
    }

    fn stroke(author: &str) -> Stroke {
        Stroke {
            author: PartyId::new(author),
            points: vec![(0, 0), (1, 1)],
            colour: "red".into(),
        }
    }

    fn validate(
        obj: &WhiteboardObject,
        who: &str,
        cur: &Whiteboard,
        next: &Whiteboard,
    ) -> Decision {
        obj.validate_state(&PartyId::new(who), &cur.to_bytes(), &next.to_bytes())
    }

    #[test]
    fn round_robin_turns_enforced() {
        let obj = WhiteboardObject::new(parties());
        let s0 = Whiteboard::new();
        let mut s1 = s0.clone();
        s1.draw(stroke("a"));
        assert!(validate(&obj, "a", &s0, &s1).is_accept());
        // b out of turn on the empty board.
        let mut wrong = s0.clone();
        wrong.draw(stroke("b"));
        assert!(!validate(&obj, "b", &s0, &wrong).is_accept());
        // After a's stroke it is b's turn, not c's.
        let mut s2 = s1.clone();
        s2.draw(stroke("c"));
        assert!(!validate(&obj, "c", &s1, &s2).is_accept());
        let mut s2b = s1.clone();
        s2b.draw(stroke("b"));
        assert!(validate(&obj, "b", &s1, &s2b).is_accept());
    }

    #[test]
    fn authorship_cannot_be_forged() {
        let obj = WhiteboardObject::new(parties());
        let s0 = Whiteboard::new();
        let mut s1 = s0.clone();
        s1.draw(stroke("b")); // a proposes a stroke claiming b drew it
        assert!(!validate(&obj, "a", &s0, &s1).is_accept());
    }

    #[test]
    fn erasure_and_rewrites_rejected() {
        let obj = WhiteboardObject::new(parties());
        let mut s0 = Whiteboard::new();
        s0.draw(stroke("a"));
        // Erase.
        let empty = Whiteboard::new();
        assert!(!validate(&obj, "b", &s0, &empty).is_accept());
        // Modify an existing stroke while appending.
        let mut s1 = s0.clone();
        s1.strokes[0].colour = "blue".into();
        s1.draw(stroke("b"));
        assert!(!validate(&obj, "b", &s0, &s1).is_accept());
        // Empty stroke.
        let mut s2 = s0.clone();
        s2.draw(Stroke {
            author: PartyId::new("b"),
            points: vec![],
            colour: "red".into(),
        });
        assert!(!validate(&obj, "b", &s0, &s2).is_accept());
    }

    #[test]
    fn state_roundtrip() {
        let mut obj = WhiteboardObject::new(parties());
        let mut b = Whiteboard::new();
        b.draw(stroke("a"));
        obj.apply_state(&b.to_bytes());
        assert_eq!(obj.board().strokes.len(), 1);
        assert_eq!(obj.get_state(), b.to_bytes());
    }

    #[test]
    fn turn_after_wraps() {
        let obj = WhiteboardObject::new(parties());
        assert_eq!(obj.turn_after(0).as_str(), "a");
        assert_eq!(obj.turn_after(2).as_str(), "c");
        assert_eq!(obj.turn_after(3).as_str(), "a");
    }
}
