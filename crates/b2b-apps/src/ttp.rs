//! Trusted-third-party interposition (Figure 1b and Figure 6).
//!
//! Two instruments:
//!
//! * **TTP as group member** (Figure 6): "it may be desirable to validate
//!   moves at a TTP in order to guarantee that they are encoded and
//!   observed correctly". The TTP joins the object group holding the
//!   *reference* rule encoding; player servers may hold corrupted or
//!   lenient encodings, and the TTP's veto still protects the honest
//!   player. [`lenient_game_object`] builds the deliberately rule-free
//!   player object used to demonstrate this.
//!
//! * **Trusted agent bridging** (Figure 1a vs 1b): organisations that do
//!   not interact directly each share an object with a trusted agent; the
//!   [`BridgeAgent`] relays validated state between the two groups through
//!   a *conditional disclosure* filter, so "state disclosure is
//!   conditional and interaction is conducted via trusted agents".

use crate::tictactoe::{Board, Players};
use b2b_core::controller::CoordAccess;
use b2b_core::{B2BObject, CoordError, Decision, ObjectId};
use b2b_net::NodeCtx;

/// A game object that *fails to encode the rules*: it accepts any board
/// transition. Represents a player server whose rule encoding cannot be
/// trusted — the reason Figure 6 routes validation through a TTP.
pub fn lenient_game_object(players: Players) -> Box<dyn B2BObject> {
    struct Lenient {
        board: Board,
        _players: Players,
    }
    impl B2BObject for Lenient {
        fn get_state(&self) -> Vec<u8> {
            self.board.to_bytes()
        }
        fn apply_state(&mut self, state: &[u8]) {
            if let Some(b) = Board::from_bytes(state) {
                self.board = b;
            }
        }
        fn validate_state(
            &self,
            _proposer: &b2b_crypto::PartyId,
            _current: &[u8],
            proposed: &[u8],
        ) -> Decision {
            // No rules at all beyond decodability.
            if Board::from_bytes(proposed).is_some() {
                Decision::accept()
            } else {
                Decision::reject("undecodable board")
            }
        }
    }
    Box::new(Lenient {
        board: Board::new(),
        _players: players,
    })
}

/// A trusted agent bridging two object groups (Figure 1b).
///
/// The agent is a member of both groups. After each completed run on the
/// source object, calling [`BridgeAgent::pump`] applies the disclosure
/// filter to the source's agreed state and, if the filter discloses
/// something new, proposes it on the destination object — where the
/// destination group's own validation still applies.
pub struct BridgeAgent {
    source: ObjectId,
    destination: ObjectId,
    #[allow(clippy::type_complexity)]
    filter: Box<dyn Fn(&[u8]) -> Option<Vec<u8>> + Send>,
}

impl std::fmt::Debug for BridgeAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BridgeAgent({} → {})", self.source, self.destination)
    }
}

impl BridgeAgent {
    /// Creates an agent relaying `source` state into `destination` through
    /// `filter` (return `None` to withhold disclosure).
    pub fn new(
        source: ObjectId,
        destination: ObjectId,
        filter: impl Fn(&[u8]) -> Option<Vec<u8>> + Send + 'static,
    ) -> BridgeAgent {
        BridgeAgent {
            source,
            destination,
            filter: Box::new(filter),
        }
    }

    /// Relays once using direct coordinator access (simulator-style
    /// drivers). Returns `true` if a proposal was initiated.
    ///
    /// # Errors
    ///
    /// Propagates coordinator errors from the destination proposal.
    pub fn pump_with(
        &self,
        coordinator: &mut b2b_core::Coordinator,
        ctx: &mut NodeCtx,
    ) -> Result<bool, CoordError> {
        let Some(src_state) = coordinator.agreed_state(&self.source) else {
            return Err(CoordError::UnknownObject(self.source.clone()));
        };
        let Some(disclosed) = (self.filter)(&src_state) else {
            return Ok(false); // disclosure withheld
        };
        let Some(dst_state) = coordinator.agreed_state(&self.destination) else {
            return Err(CoordError::UnknownObject(self.destination.clone()));
        };
        if disclosed == dst_state {
            return Ok(false); // nothing new to disclose
        }
        coordinator.propose_overwrite(&self.destination, disclosed, ctx)?;
        Ok(true)
    }

    /// Relays once through a [`CoordAccess`] handle (works on both network
    /// drivers). Returns `true` if a proposal was initiated.
    ///
    /// # Errors
    ///
    /// Propagates coordinator errors from the destination proposal.
    pub fn pump<A: CoordAccess>(&self, access: &A) -> Result<bool, CoordError> {
        access.with(|c, ctx| self.pump_with(c, ctx))
    }

    /// The source object.
    pub fn source(&self) -> &ObjectId {
        &self.source
    }

    /// The destination object.
    pub fn destination(&self) -> &ObjectId {
        &self.destination
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tictactoe::Mark;
    use b2b_crypto::PartyId;

    fn players() -> Players {
        Players {
            cross: PartyId::new("cross"),
            nought: PartyId::new("nought"),
        }
    }

    #[test]
    fn lenient_object_accepts_anything_decodable() {
        let obj = lenient_game_object(players());
        let cur = Board::new();
        let mut cheat = cur.clone();
        cheat.cheat_set(Mark::O, 0, 0);
        cheat.cheat_set(Mark::O, 0, 1);
        assert!(obj
            .validate_state(&PartyId::new("cross"), &cur.to_bytes(), &cheat.to_bytes())
            .is_accept());
        assert!(!obj
            .validate_state(&PartyId::new("cross"), &cur.to_bytes(), b"junk")
            .is_accept());
    }

    #[test]
    fn lenient_object_roundtrips_state() {
        let mut obj = lenient_game_object(players());
        let mut b = Board::new();
        b.play(Mark::X, 0, 0).unwrap();
        obj.apply_state(&b.to_bytes());
        assert_eq!(obj.get_state(), b.to_bytes());
    }

    #[test]
    fn bridge_agent_reports_its_objects() {
        let agent = BridgeAgent::new(ObjectId::new("a"), ObjectId::new("b"), |s| Some(s.to_vec()));
        assert_eq!(agent.source().as_str(), "a");
        assert_eq!(agent.destination().as_str(), "b");
        assert!(format!("{agent:?}").contains("a → b"));
    }
}
