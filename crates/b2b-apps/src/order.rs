//! The order-processing application of §5.2 (Figure 7).
//!
//! "A customer and supplier share the state of an order. Asymmetric
//! validation rules apply to state changes. The customer is allowed to add
//! items and the quantity required to an order but is not allowed to price
//! the items. The supplier can price items but cannot amend the order in
//! any other way."
//!
//! The alternative instantiation the paper sketches — "an approver to
//! sanction the items ordered by the customer and a dispatcher to commit
//! to delivery terms … shared between four parties" — is supported through
//! the optional roles of [`OrderRoles`].

use b2b_core::{B2BObject, Decision};
use b2b_crypto::PartyId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One line of an order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderLine {
    /// The item ordered.
    pub item: String,
    /// Quantity required (set by the customer).
    pub qty: u32,
    /// Unit price (set by the supplier).
    pub unit_price: Option<u32>,
    /// Whether the approver has sanctioned the line (four-party variant).
    pub approved: bool,
}

impl OrderLine {
    /// A new unpriced, unapproved line.
    pub fn new(item: impl Into<String>, qty: u32) -> OrderLine {
        OrderLine {
            item: item.into(),
            qty,
            unit_price: None,
            approved: false,
        }
    }
}

/// The shared order state.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Order {
    /// The order lines, in entry order.
    pub lines: Vec<OrderLine>,
    /// Delivery terms committed by the dispatcher (four-party variant).
    pub delivery_terms: Option<String>,
}

impl Order {
    /// An empty order.
    pub fn new() -> Order {
        Order::default()
    }

    /// The line for `item`, if present.
    pub fn line(&self, item: &str) -> Option<&OrderLine> {
        self.lines.iter().find(|l| l.item == item)
    }

    /// Adds or replaces the quantity for `item` (a customer action).
    pub fn set_quantity(&mut self, item: &str, qty: u32) {
        match self.lines.iter_mut().find(|l| l.item == item) {
            Some(line) => line.qty = qty,
            None => self.lines.push(OrderLine::new(item, qty)),
        }
    }

    /// Prices `item` (a supplier action). Returns `false` if absent.
    pub fn set_price(&mut self, item: &str, unit_price: u32) -> bool {
        match self.lines.iter_mut().find(|l| l.item == item) {
            Some(line) => {
                line.unit_price = Some(unit_price);
                true
            }
            None => false,
        }
    }

    /// Approves `item` (an approver action). Returns `false` if absent.
    pub fn approve(&mut self, item: &str) -> bool {
        match self.lines.iter_mut().find(|l| l.item == item) {
            Some(line) => {
                line.approved = true;
                true
            }
            None => false,
        }
    }

    /// Serialises the order (JSON) for coordination.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("order serialises")
    }

    /// Parses an order from coordinated state bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Order> {
        serde_json::from_slice(bytes).ok()
    }
}

impl fmt::Display for Order {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            " {:10} | {:>4} | {:>6} | {:>8}",
            "item", "qty", "price", "approved"
        )?;
        for l in &self.lines {
            writeln!(
                f,
                " {:10} | {:>4} | {:>6} | {:>8}",
                l.item,
                l.qty,
                l.unit_price
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
                if l.approved { "yes" } else { "-" }
            )?;
        }
        if let Some(terms) = &self.delivery_terms {
            writeln!(f, " delivery: {terms}")?;
        }
        Ok(())
    }
}

/// An update-style delta (§4.3.1) on an order: one role action, applied
/// to whatever state the group currently agrees on at validation time —
/// so concurrent deltas from different organisations *compose* (and can
/// coalesce into one batched round) instead of overwriting each other,
/// as a whole-state proposal would.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderUpdate {
    /// Add `item`, or set its quantity (a customer action).
    SetQuantity {
        /// The item ordered.
        item: String,
        /// The new quantity.
        qty: u32,
    },
    /// Price `item` (a supplier action).
    SetPrice {
        /// The item priced.
        item: String,
        /// The unit price.
        unit_price: u32,
    },
    /// Approve `item` (an approver action, four-party variant).
    Approve {
        /// The item approved.
        item: String,
    },
    /// Commit delivery terms (a dispatcher action, four-party variant).
    SetDeliveryTerms {
        /// The committed terms.
        terms: String,
    },
}

impl OrderUpdate {
    /// Serialises the delta (JSON) for coordination.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("order update serialises")
    }

    /// Parses a delta from update bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<OrderUpdate> {
        serde_json::from_slice(bytes).ok()
    }

    /// Applies the delta to `order`.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the delta no longer applies (e.g.
    /// pricing an item that was never ordered).
    pub fn apply(&self, order: &mut Order) -> Result<(), String> {
        match self {
            OrderUpdate::SetQuantity { item, qty } => {
                order.set_quantity(item, *qty);
                Ok(())
            }
            OrderUpdate::SetPrice { item, unit_price } => {
                if !order.set_price(item, *unit_price) {
                    return Err(format!("no line for item {item}"));
                }
                Ok(())
            }
            OrderUpdate::Approve { item } => {
                if !order.approve(item) {
                    return Err(format!("no line for item {item}"));
                }
                Ok(())
            }
            OrderUpdate::SetDeliveryTerms { terms } => {
                order.delivery_terms = Some(terms.clone());
                Ok(())
            }
        }
    }
}

/// The party-to-role assignment for an order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderRoles {
    /// May add items and set quantities.
    pub customer: PartyId,
    /// May price items, and nothing else.
    pub supplier: PartyId,
    /// Four-party variant: may flip lines to approved, and nothing else.
    pub approver: Option<PartyId>,
    /// Four-party variant: may commit delivery terms, and nothing else.
    pub dispatcher: Option<PartyId>,
}

impl OrderRoles {
    /// The classic two-party customer/supplier assignment (§5.2).
    pub fn two_party(customer: PartyId, supplier: PartyId) -> OrderRoles {
        OrderRoles {
            customer,
            supplier,
            approver: None,
            dispatcher: None,
        }
    }

    /// The four-party variant with approver and dispatcher.
    pub fn four_party(
        customer: PartyId,
        supplier: PartyId,
        approver: PartyId,
        dispatcher: PartyId,
    ) -> OrderRoles {
        OrderRoles {
            customer,
            supplier,
            approver: Some(approver),
            dispatcher: Some(dispatcher),
        }
    }
}

/// The shared order object: state + the asymmetric role rules.
pub struct OrderObject {
    order: Order,
    roles: OrderRoles,
}

impl OrderObject {
    /// Creates the shared order for the given role assignment.
    pub fn new(roles: OrderRoles) -> OrderObject {
        OrderObject {
            order: Order::new(),
            roles,
        }
    }

    /// The current order.
    pub fn order(&self) -> &Order {
        &self.order
    }

    /// Checks one transition under the proposer's role. Returns the first
    /// violation, if any.
    fn check(&self, proposer: &PartyId, cur: &Order, next: &Order) -> Option<String> {
        let is_customer = proposer == &self.roles.customer;
        let is_supplier = proposer == &self.roles.supplier;
        let is_approver = self.roles.approver.as_ref() == Some(proposer);
        let is_dispatcher = self.roles.dispatcher.as_ref() == Some(proposer);
        if !(is_customer || is_supplier || is_approver || is_dispatcher) {
            return Some(format!("{proposer} has no role on this order"));
        }

        // Delivery terms: dispatcher only, write-once.
        if next.delivery_terms != cur.delivery_terms {
            if !is_dispatcher {
                return Some("only the dispatcher may set delivery terms".into());
            }
            if cur.delivery_terms.is_some() {
                return Some("delivery terms are already committed".into());
            }
        }
        if is_dispatcher && next.lines != cur.lines {
            return Some("the dispatcher may not amend order lines".into());
        }

        // Lines may only be appended, never removed or reordered.
        if next.lines.len() < cur.lines.len() {
            return Some("order lines may not be removed".into());
        }
        for (i, new_line) in next.lines.iter().enumerate() {
            let old_line = cur.lines.get(i);
            match old_line {
                None => {
                    // A new line: customers only, unpriced and unapproved.
                    if !is_customer {
                        return Some(format!(
                            "only the customer may add items ({} added {})",
                            proposer, new_line.item
                        ));
                    }
                    if new_line.unit_price.is_some() {
                        return Some("the customer may not price items".into());
                    }
                    if new_line.approved {
                        return Some("the customer may not approve items".into());
                    }
                }
                Some(old) => {
                    if new_line.item != old.item {
                        return Some("items may not be renamed".into());
                    }
                    if new_line.qty != old.qty && !is_customer {
                        return Some(format!(
                            "only the customer may change quantities ({} touched {})",
                            proposer, new_line.item
                        ));
                    }
                    if new_line.unit_price != old.unit_price && !is_supplier {
                        return Some(format!(
                            "only the supplier may price items ({} priced {})",
                            proposer, new_line.item
                        ));
                    }
                    if new_line.approved != old.approved {
                        if self.roles.approver.is_none() {
                            return Some("no approver role on this order".into());
                        }
                        if !is_approver {
                            return Some("only the approver may approve items".into());
                        }
                        if old.approved {
                            return Some("approval may not be revoked".into());
                        }
                    }
                    // Role exclusivity: each role touches only its fields.
                    if is_customer && new_line.unit_price != old.unit_price {
                        return Some("the customer may not price items".into());
                    }
                    if is_supplier && (new_line.qty != old.qty || new_line.approved != old.approved)
                    {
                        return Some("the supplier may not amend the order".into());
                    }
                    if is_approver
                        && (new_line.qty != old.qty || new_line.unit_price != old.unit_price)
                    {
                        return Some("the approver may only approve".into());
                    }
                }
            }
        }
        None
    }
}

impl B2BObject for OrderObject {
    fn get_state(&self) -> Vec<u8> {
        self.order.to_bytes()
    }

    fn apply_state(&mut self, state: &[u8]) {
        if let Some(o) = Order::from_bytes(state) {
            self.order = o;
        }
    }

    fn validate_state(&self, proposer: &PartyId, current: &[u8], proposed: &[u8]) -> Decision {
        let (Some(cur), Some(next)) = (Order::from_bytes(current), Order::from_bytes(proposed))
        else {
            return Decision::reject("undecodable order");
        };
        match self.check(proposer, &cur, &next) {
            None => Decision::accept(),
            Some(reason) => Decision::reject(reason),
        }
    }

    fn apply_update(&self, current: &[u8], update: &[u8]) -> Result<Vec<u8>, String> {
        // Updates arrive either as an [`OrderUpdate`] delta — replayed
        // against whatever state the group agrees on when the round
        // runs, so concurrent compatible actions compose — or as a
        // whole-state `Order` (the scoped enter/update/leave path),
        // which keeps last-writer-proposes semantics and lets the
        // validators veto stale snapshots.
        if let Some(delta) = OrderUpdate::from_bytes(update) {
            let mut order =
                Order::from_bytes(current).ok_or_else(|| "undecodable order state".to_string())?;
            delta.apply(&mut order)?;
            return Ok(order.to_bytes());
        }
        if Order::from_bytes(update).is_some() {
            return Ok(update.to_vec());
        }
        Err("undecodable order update".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> PartyId {
        PartyId::new("customer")
    }
    fn supplier() -> PartyId {
        PartyId::new("supplier")
    }

    fn two_party_object() -> OrderObject {
        OrderObject::new(OrderRoles::two_party(customer(), supplier()))
    }

    fn validate(obj: &OrderObject, who: &PartyId, cur: &Order, next: &Order) -> Decision {
        obj.validate_state(who, &cur.to_bytes(), &next.to_bytes())
    }

    #[test]
    fn figure7_script_validations() {
        let obj = two_party_object();
        // Customer orders 2 widget1s: valid.
        let s0 = Order::new();
        let mut s1 = s0.clone();
        s1.set_quantity("widget1", 2);
        assert!(validate(&obj, &customer(), &s0, &s1).is_accept());
        // Supplier prices widget1 at 10: valid.
        let mut s2 = s1.clone();
        assert!(s2.set_price("widget1", 10));
        assert!(validate(&obj, &supplier(), &s1, &s2).is_accept());
        // Customer orders 10 widget2s: valid.
        let mut s3 = s2.clone();
        s3.set_quantity("widget2", 10);
        assert!(validate(&obj, &customer(), &s2, &s3).is_accept());
        // Supplier prices widget2 AND changes the quantity: invalid.
        let mut s4 = s3.clone();
        assert!(s4.set_price("widget2", 7));
        s4.set_quantity("widget2", 99);
        let d = validate(&obj, &supplier(), &s3, &s4);
        assert!(!d.is_accept());
        let reason = d.reason.unwrap();
        assert!(
            reason.contains("only the customer may change quantities"),
            "unexpected reason: {reason}"
        );
    }

    #[test]
    fn customer_cannot_price() {
        let obj = two_party_object();
        let mut s0 = Order::new();
        s0.set_quantity("w", 1);
        let mut s1 = s0.clone();
        s1.set_price("w", 5);
        let d = validate(&obj, &customer(), &s0, &s1);
        assert!(!d.is_accept());
        // Nor add a pre-priced line.
        let s0 = Order::new();
        let mut s1 = s0.clone();
        s1.lines.push(OrderLine {
            item: "w".into(),
            qty: 1,
            unit_price: Some(3),
            approved: false,
        });
        assert!(!validate(&obj, &customer(), &s0, &s1).is_accept());
    }

    #[test]
    fn supplier_cannot_add_or_remove_items() {
        let obj = two_party_object();
        let s0 = Order::new();
        let mut s1 = s0.clone();
        s1.set_quantity("w", 1);
        assert!(!validate(&obj, &supplier(), &s0, &s1).is_accept());
        // Removal by anyone is rejected.
        let mut s2 = Order::new();
        s2.set_quantity("w", 1);
        let s3 = Order::new();
        assert!(!validate(&obj, &customer(), &s2, &s3).is_accept());
    }

    #[test]
    fn stranger_has_no_role() {
        let obj = two_party_object();
        let s0 = Order::new();
        let mut s1 = s0.clone();
        s1.set_quantity("w", 1);
        let d = validate(&obj, &PartyId::new("mallory"), &s0, &s1);
        assert!(!d.is_accept());
        assert!(d.reason.unwrap().contains("no role"));
    }

    #[test]
    fn four_party_approval_and_delivery() {
        let approver = PartyId::new("approver");
        let dispatcher = PartyId::new("dispatcher");
        let obj = OrderObject::new(OrderRoles::four_party(
            customer(),
            supplier(),
            approver.clone(),
            dispatcher.clone(),
        ));
        let mut s0 = Order::new();
        s0.set_quantity("w", 2);
        // Approver approves: valid.
        let mut s1 = s0.clone();
        assert!(s1.approve("w"));
        assert!(validate(&obj, &approver, &s0, &s1).is_accept());
        // Supplier trying to approve: invalid.
        assert!(!validate(&obj, &supplier(), &s0, &s1).is_accept());
        // Dispatcher commits delivery terms: valid, write-once.
        let mut s2 = s1.clone();
        s2.delivery_terms = Some("48h courier".into());
        assert!(validate(&obj, &dispatcher, &s1, &s2).is_accept());
        let mut s3 = s2.clone();
        s3.delivery_terms = Some("never".into());
        assert!(!validate(&obj, &dispatcher, &s2, &s3).is_accept());
        // Customer cannot set delivery terms.
        let mut s4 = s1.clone();
        s4.delivery_terms = Some("tomorrow".into());
        assert!(!validate(&obj, &customer(), &s1, &s4).is_accept());
        // Approval cannot be revoked, even by the approver.
        let mut s5 = s1.clone();
        s5.lines[0].approved = false;
        assert!(!validate(&obj, &approver, &s1, &s5).is_accept());
    }

    #[test]
    fn approval_rejected_in_two_party_orders() {
        let obj = two_party_object();
        let mut s0 = Order::new();
        s0.set_quantity("w", 2);
        let mut s1 = s0.clone();
        s1.approve("w");
        let d = validate(&obj, &customer(), &s0, &s1);
        assert!(!d.is_accept());
    }

    #[test]
    fn order_display_shows_lines() {
        let mut o = Order::new();
        o.set_quantity("widget1", 2);
        o.set_price("widget1", 10);
        let text = o.to_string();
        assert!(text.contains("widget1"));
        assert!(text.contains("10"));
    }

    #[test]
    fn order_bytes_roundtrip() {
        let mut o = Order::new();
        o.set_quantity("a", 1);
        o.set_price("a", 2);
        assert_eq!(Order::from_bytes(&o.to_bytes()).unwrap(), o);
        assert!(Order::from_bytes(b"junk").is_none());
    }

    #[test]
    fn update_bytes_roundtrip_and_disambiguation() {
        let u = OrderUpdate::SetPrice { item: "a".into(), unit_price: 7 };
        assert_eq!(OrderUpdate::from_bytes(&u.to_bytes()).unwrap(), u);
        // A delta never parses as a whole order, and vice versa — the
        // two update encodings stay unambiguous on the wire.
        assert!(Order::from_bytes(&u.to_bytes()).is_none());
        assert!(OrderUpdate::from_bytes(&Order::new().to_bytes()).is_none());
    }

    #[test]
    fn delta_updates_compose_against_the_live_state() {
        // Two concurrent deltas derived from the same base state chain
        // cleanly through apply_update: the second applies on top of the
        // first's result instead of overwriting it.
        let obj = two_party_object();
        let base = Order::new().to_bytes();
        let add_a = OrderUpdate::SetQuantity { item: "a".into(), qty: 2 };
        let add_b = OrderUpdate::SetQuantity { item: "b".into(), qty: 3 };
        let after_a = obj.apply_update(&base, &add_a.to_bytes()).unwrap();
        let after_ab = obj.apply_update(&after_a, &add_b.to_bytes()).unwrap();
        let order = Order::from_bytes(&after_ab).unwrap();
        assert_eq!(order.lines.len(), 2);
        // And the chained transition still passes role validation.
        assert!(obj
            .validate_update(&customer(), &after_a, &add_b.to_bytes())
            .is_accept());
    }

    #[test]
    fn delta_updates_surface_inapplicability() {
        let obj = two_party_object();
        let base = Order::new().to_bytes();
        let price = OrderUpdate::SetPrice { item: "ghost".into(), unit_price: 1 };
        let err = obj.apply_update(&base, &price.to_bytes()).unwrap_err();
        assert!(err.contains("no line for item"), "{err}");
        assert!(obj.apply_update(&base, b"junk").is_err());
        // Whole-state updates still pass through untouched.
        let mut o = Order::new();
        o.set_quantity("w", 1);
        assert_eq!(obj.apply_update(&base, &o.to_bytes()).unwrap(), o.to_bytes());
    }

    #[test]
    fn delta_updates_still_veto_role_violations() {
        // A supplier delta that *applies* cleanly can still be vetoed by
        // role validation: only the customer adds lines.
        let obj = two_party_object();
        let base = Order::new().to_bytes();
        let add = OrderUpdate::SetQuantity { item: "w".into(), qty: 1 };
        let d = obj.validate_update(&supplier(), &base, &add.to_bytes());
        assert!(!d.is_accept());
    }
}
