//! The Tic-Tac-Toe application of §5.1.
//!
//! "An object that implements the B2BObject interface represents the state
//! of the game and encapsulates the rules. Servers representing each
//! player share the object and coordinate the object state." The rules are
//! symmetric: players take turns; a vacant square is claimed with the
//! player's own mark; no square may be overwritten; play stops once the
//! game is decided.
//!
//! Figure 5's cheating attempt — Cross marking a square with a *zero* to
//! pre-empt Nought — is exactly the class of invalid transition the
//! [`GameObject`] validator vetoes.

use b2b_core::{B2BObject, Decision};
use b2b_crypto::PartyId;
use serde::{Deserialize, Serialize};
use std::fmt;
use thiserror::Error;

/// A player's mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mark {
    /// Cross. Moves first.
    X,
    /// Nought.
    O,
}

impl Mark {
    /// The opposing mark.
    pub fn other(self) -> Mark {
        match self {
            Mark::X => Mark::O,
            Mark::O => Mark::X,
        }
    }
}

impl fmt::Display for Mark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mark::X => "X",
            Mark::O => "O",
        })
    }
}

/// Why a local move is not playable.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum MoveError {
    /// The square is already claimed.
    #[error("square ({0}, {1}) is already claimed")]
    Occupied(usize, usize),
    /// It is the other player's turn.
    #[error("not {0}'s turn")]
    NotYourTurn(Mark),
    /// The game has already been decided.
    #[error("the game is over")]
    GameOver,
    /// Coordinates outside the 3×3 board.
    #[error("coordinates ({0}, {1}) out of range")]
    OutOfRange(usize, usize),
}

/// The 3×3 game board (the shared state).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Board {
    cells: [[Option<Mark>; 3]; 3],
}

impl Board {
    /// An empty board.
    pub fn new() -> Board {
        Board::default()
    }

    /// The mark at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> Option<Mark> {
        self.cells[row][col]
    }

    /// Number of marks on the board.
    pub fn marks(&self) -> usize {
        self.cells.iter().flatten().filter(|c| c.is_some()).count()
    }

    /// Whose turn it is (X moves first), or `None` if the game is over.
    pub fn turn(&self) -> Option<Mark> {
        if self.winner().is_some() || self.marks() == 9 {
            return None;
        }
        let x = self
            .cells
            .iter()
            .flatten()
            .filter(|c| **c == Some(Mark::X))
            .count();
        let o = self
            .cells
            .iter()
            .flatten()
            .filter(|c| **c == Some(Mark::O))
            .count();
        Some(if x == o { Mark::X } else { Mark::O })
    }

    /// The winning mark, if a line is complete.
    pub fn winner(&self) -> Option<Mark> {
        let lines: [[(usize, usize); 3]; 8] = [
            [(0, 0), (0, 1), (0, 2)],
            [(1, 0), (1, 1), (1, 2)],
            [(2, 0), (2, 1), (2, 2)],
            [(0, 0), (1, 0), (2, 0)],
            [(0, 1), (1, 1), (2, 1)],
            [(0, 2), (1, 2), (2, 2)],
            [(0, 0), (1, 1), (2, 2)],
            [(0, 2), (1, 1), (2, 0)],
        ];
        for line in lines {
            let [a, b, c] = line.map(|(r, q)| self.cells[r][q]);
            if a.is_some() && a == b && b == c {
                return a;
            }
        }
        None
    }

    /// Plays `mark` at `(row, col)`, enforcing the rules locally.
    ///
    /// # Errors
    ///
    /// Returns a [`MoveError`] when the move is illegal. (A *cheating*
    /// client bypasses this method and proposes a hand-crafted board —
    /// which the opponent's validator then vetoes.)
    pub fn play(&mut self, mark: Mark, row: usize, col: usize) -> Result<(), MoveError> {
        if row > 2 || col > 2 {
            return Err(MoveError::OutOfRange(row, col));
        }
        match self.turn() {
            None => return Err(MoveError::GameOver),
            Some(t) if t != mark => return Err(MoveError::NotYourTurn(mark)),
            _ => {}
        }
        if self.cells[row][col].is_some() {
            return Err(MoveError::Occupied(row, col));
        }
        self.cells[row][col] = Some(mark);
        Ok(())
    }

    /// Force-sets a cell without rule checks — the "cheat" entry point
    /// used to reproduce Figure 5's invalid move.
    pub fn cheat_set(&mut self, mark: Mark, row: usize, col: usize) {
        self.cells[row][col] = Some(mark);
    }

    /// Serialises the board (JSON) for coordination.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("board serialises")
    }

    /// Parses a board from coordinated state bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Board> {
        serde_json::from_slice(bytes).ok()
    }

    /// The single differing cell between `self` and `next`, if exactly one
    /// cell changed from vacant to a mark.
    fn single_new_mark(&self, next: &Board) -> Option<(usize, usize, Mark)> {
        let mut found = None;
        for r in 0..3 {
            for c in 0..3 {
                match (self.cells[r][c], next.cells[r][c]) {
                    (a, b) if a == b => {}
                    (None, Some(m)) => {
                        if found.is_some() {
                            return None; // more than one new mark
                        }
                        found = Some((r, c, m));
                    }
                    _ => return None, // overwrite or erasure
                }
            }
        }
        found
    }
}

impl fmt::Display for Board {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, row) in self.cells.iter().enumerate() {
            let cells: Vec<String> = row
                .iter()
                .map(|c| c.map(|m| m.to_string()).unwrap_or_else(|| " ".into()))
                .collect();
            writeln!(f, " {} ", cells.join(" | "))?;
            if i < 2 {
                writeln!(f, "---+---+---")?;
            }
        }
        Ok(())
    }
}

/// The assignment of parties to marks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Players {
    /// The party playing Cross.
    pub cross: PartyId,
    /// The party playing Nought.
    pub nought: PartyId,
}

impl Players {
    /// The mark `party` plays, if they are a player (a TTP is neither).
    pub fn mark_of(&self, party: &PartyId) -> Option<Mark> {
        if party == &self.cross {
            Some(Mark::X)
        } else if party == &self.nought {
            Some(Mark::O)
        } else {
            None
        }
    }
}

/// The shared game object: board state + the encoded rules (§5.1).
pub struct GameObject {
    board: Board,
    players: Players,
}

impl GameObject {
    /// Creates the shared game for the given player assignment.
    pub fn new(players: Players) -> GameObject {
        GameObject {
            board: Board::new(),
            players,
        }
    }

    /// The current board.
    pub fn board(&self) -> &Board {
        &self.board
    }
}

impl B2BObject for GameObject {
    fn get_state(&self) -> Vec<u8> {
        self.board.to_bytes()
    }

    fn apply_state(&mut self, state: &[u8]) {
        if let Some(b) = Board::from_bytes(state) {
            self.board = b;
        }
    }

    fn validate_state(&self, proposer: &PartyId, current: &[u8], proposed: &[u8]) -> Decision {
        let (Some(cur), Some(next)) = (Board::from_bytes(current), Board::from_bytes(proposed))
        else {
            return Decision::reject("undecodable board");
        };
        let Some(mover_mark) = self.players.mark_of(proposer) else {
            return Decision::reject(format!("{proposer} is not a player"));
        };
        if cur.turn().is_none() {
            return Decision::reject("the game is over");
        }
        let Some((row, col, mark)) = cur.single_new_mark(&next) else {
            return Decision::reject("not a single mark on a vacant square");
        };
        if mark != mover_mark {
            return Decision::reject(format!(
                "{proposer} plays {mover_mark} but placed {mark} at ({row}, {col})"
            ));
        }
        if cur.turn() != Some(mover_mark) {
            return Decision::reject(format!("it is not {mover_mark}'s turn"));
        }
        Decision::accept()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn players() -> Players {
        Players {
            cross: PartyId::new("cross"),
            nought: PartyId::new("nought"),
        }
    }

    #[test]
    fn turns_alternate_starting_with_x() {
        let mut b = Board::new();
        assert_eq!(b.turn(), Some(Mark::X));
        b.play(Mark::X, 1, 1).unwrap();
        assert_eq!(b.turn(), Some(Mark::O));
        assert_eq!(b.play(Mark::X, 0, 0), Err(MoveError::NotYourTurn(Mark::X)));
    }

    #[test]
    fn occupied_and_out_of_range_rejected() {
        let mut b = Board::new();
        b.play(Mark::X, 1, 1).unwrap();
        assert_eq!(b.play(Mark::O, 1, 1), Err(MoveError::Occupied(1, 1)));
        assert_eq!(b.play(Mark::O, 3, 0), Err(MoveError::OutOfRange(3, 0)));
    }

    #[test]
    fn winner_detection_all_line_kinds() {
        // Row
        let mut b = Board::new();
        for (m, r, c) in [
            (Mark::X, 0, 0),
            (Mark::O, 1, 0),
            (Mark::X, 0, 1),
            (Mark::O, 1, 1),
            (Mark::X, 0, 2),
        ] {
            b.play(m, r, c).unwrap();
        }
        assert_eq!(b.winner(), Some(Mark::X));
        assert_eq!(b.turn(), None);
        assert_eq!(b.play(Mark::O, 2, 2), Err(MoveError::GameOver));
        // Diagonal
        let mut b = Board::new();
        for (m, r, c) in [
            (Mark::X, 0, 0),
            (Mark::O, 0, 1),
            (Mark::X, 1, 1),
            (Mark::O, 0, 2),
            (Mark::X, 2, 2),
        ] {
            b.play(m, r, c).unwrap();
        }
        assert_eq!(b.winner(), Some(Mark::X));
    }

    #[test]
    fn draw_ends_game() {
        let mut b = Board::new();
        // X O X / X O O / O X X — no winner.
        let seq = [
            (Mark::X, 0, 0),
            (Mark::O, 0, 1),
            (Mark::X, 0, 2),
            (Mark::O, 1, 1),
            (Mark::X, 1, 0),
            (Mark::O, 1, 2),
            (Mark::X, 2, 1),
            (Mark::O, 2, 0),
            (Mark::X, 2, 2),
        ];
        for (m, r, c) in seq {
            b.play(m, r, c).unwrap();
        }
        assert_eq!(b.winner(), None);
        assert_eq!(b.turn(), None);
    }

    #[test]
    fn validator_accepts_legal_move() {
        let game = GameObject::new(players());
        let cur = Board::new();
        let mut next = cur.clone();
        next.play(Mark::X, 1, 1).unwrap();
        let d = game.validate_state(&PartyId::new("cross"), &cur.to_bytes(), &next.to_bytes());
        assert!(d.is_accept());
    }

    #[test]
    fn validator_vetoes_fig5_cheat_wrong_mark() {
        // Figure 5: Cross attempts to mark a square with a zero.
        let game = GameObject::new(players());
        let mut cur = Board::new();
        cur.play(Mark::X, 1, 1).unwrap();
        cur.play(Mark::O, 0, 0).unwrap();
        cur.play(Mark::X, 1, 2).unwrap();
        let mut next = cur.clone();
        next.cheat_set(Mark::O, 2, 1); // Cross writes a zero
        let d = game.validate_state(&PartyId::new("cross"), &cur.to_bytes(), &next.to_bytes());
        assert!(!d.is_accept());
        assert!(d.reason.unwrap().contains("plays X"));
    }

    #[test]
    fn validator_vetoes_out_of_turn_and_multi_mark() {
        let game = GameObject::new(players());
        let cur = Board::new();
        // Nought moving first.
        let mut next = cur.clone();
        next.cheat_set(Mark::O, 0, 0);
        assert!(!game
            .validate_state(&PartyId::new("nought"), &cur.to_bytes(), &next.to_bytes())
            .is_accept());
        // Two marks at once.
        let mut next2 = cur.clone();
        next2.cheat_set(Mark::X, 0, 0);
        next2.cheat_set(Mark::X, 0, 1);
        assert!(!game
            .validate_state(&PartyId::new("cross"), &cur.to_bytes(), &next2.to_bytes())
            .is_accept());
    }

    #[test]
    fn validator_vetoes_overwrite_and_nonplayer() {
        let game = GameObject::new(players());
        let mut cur = Board::new();
        cur.play(Mark::X, 1, 1).unwrap();
        // Overwrite of X with O.
        let mut next = cur.clone();
        next.cheat_set(Mark::O, 1, 1);
        assert!(!game
            .validate_state(&PartyId::new("nought"), &cur.to_bytes(), &next.to_bytes())
            .is_accept());
        // A stranger proposing.
        let mut next2 = cur.clone();
        next2.cheat_set(Mark::O, 0, 0);
        let d = game.validate_state(&PartyId::new("mallory"), &cur.to_bytes(), &next2.to_bytes());
        assert!(!d.is_accept());
        assert!(d.reason.unwrap().contains("not a player"));
    }

    #[test]
    fn board_renders_like_figure_5() {
        let mut b = Board::new();
        b.play(Mark::X, 1, 1).unwrap();
        b.play(Mark::O, 0, 0).unwrap();
        b.play(Mark::X, 1, 2).unwrap();
        let rendered = b.to_string();
        assert!(rendered.contains("O |   |"));
        assert!(rendered.contains("| X | X"));
    }

    #[test]
    fn object_state_roundtrip() {
        let mut game = GameObject::new(players());
        let mut b = Board::new();
        b.play(Mark::X, 2, 0).unwrap();
        game.apply_state(&b.to_bytes());
        assert_eq!(game.board().at(2, 0), Some(Mark::X));
        assert_eq!(game.get_state(), b.to_bytes());
    }
}
