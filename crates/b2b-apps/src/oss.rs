//! Dispersal of operational support to the customer (§2, scenario 2).
//!
//! "In the telecommunications industry, Operational Support Systems (OSS)
//! manage service configuration and fault-handling on the customer's
//! behalf … the customer needs to be able to tailor their complete
//! service. This requires the 'dispersal of OSS' so that the customer
//! controls the aspects that logically belong to them."
//!
//! The shared object is a service configuration split into
//! customer-controlled aspects (feature toggles, routing preferences) and
//! provider-controlled aspects (capacity, maintenance windows), plus a
//! fault-ticket queue both may act on under role rules: customers open
//! tickets, providers resolve them.

use b2b_core::{B2BObject, Decision};
use b2b_crypto::PartyId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fault ticket raised by the customer and resolved by the provider.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTicket {
    /// Ticket number (assigned by the customer, ascending).
    pub id: u32,
    /// Free-form fault description.
    pub description: String,
    /// The provider's resolution, once any.
    pub resolution: Option<String>,
}

/// The shared service configuration.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Customer-controlled: named feature toggles.
    pub features: BTreeMap<String, bool>,
    /// Customer-controlled: preferred routing policy.
    pub routing_policy: String,
    /// Provider-controlled: provisioned capacity units.
    pub capacity: u32,
    /// Provider-controlled: maintenance window (free-form).
    pub maintenance_window: String,
    /// Jointly worked fault queue.
    pub tickets: Vec<FaultTicket>,
}

impl ServiceConfig {
    /// A fresh configuration.
    pub fn new() -> ServiceConfig {
        ServiceConfig::default()
    }

    /// Opens a ticket (customer action); returns its id.
    pub fn open_ticket(&mut self, description: impl Into<String>) -> u32 {
        let id = self.tickets.last().map(|t| t.id + 1).unwrap_or(1);
        self.tickets.push(FaultTicket {
            id,
            description: description.into(),
            resolution: None,
        });
        id
    }

    /// Resolves a ticket (provider action). Returns `false` if absent.
    pub fn resolve_ticket(&mut self, id: u32, resolution: impl Into<String>) -> bool {
        match self.tickets.iter_mut().find(|t| t.id == id) {
            Some(t) => {
                t.resolution = Some(resolution.into());
                true
            }
            None => false,
        }
    }

    /// Serialises for coordination.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("service config serialises")
    }

    /// Parses from coordinated bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<ServiceConfig> {
        serde_json::from_slice(bytes).ok()
    }
}

/// The shared OSS object: configuration + the dispersal-of-control rules.
pub struct OssObject {
    config: ServiceConfig,
    customer: PartyId,
    provider: PartyId,
}

impl OssObject {
    /// Creates the shared configuration for a customer/provider pair.
    pub fn new(customer: PartyId, provider: PartyId) -> OssObject {
        OssObject {
            config: ServiceConfig::new(),
            customer,
            provider,
        }
    }

    /// The current configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn check(&self, who: &PartyId, cur: &ServiceConfig, next: &ServiceConfig) -> Option<String> {
        let is_customer = who == &self.customer;
        let is_provider = who == &self.provider;
        if !is_customer && !is_provider {
            return Some(format!("{who} has no role in this service"));
        }
        // Customer-controlled aspects.
        let customer_changed =
            next.features != cur.features || next.routing_policy != cur.routing_policy;
        if customer_changed && !is_customer {
            return Some("only the customer controls features and routing".into());
        }
        // Provider-controlled aspects.
        let provider_changed =
            next.capacity != cur.capacity || next.maintenance_window != cur.maintenance_window;
        if provider_changed && !is_provider {
            return Some("only the provider controls capacity and maintenance".into());
        }
        // Fault queue: append-only; customers open, providers resolve.
        if next.tickets.len() < cur.tickets.len() {
            return Some("tickets may not be deleted".into());
        }
        for (i, t) in next.tickets.iter().enumerate() {
            match cur.tickets.get(i) {
                None => {
                    if !is_customer {
                        return Some("only the customer opens fault tickets".into());
                    }
                    if t.resolution.is_some() {
                        return Some("new tickets cannot be pre-resolved".into());
                    }
                    let expected = cur.tickets.last().map(|p| p.id + 1).unwrap_or(1)
                        + (i - cur.tickets.len()) as u32;
                    if t.id != expected {
                        return Some("ticket ids must be sequential".into());
                    }
                }
                Some(old) => {
                    if t.id != old.id || t.description != old.description {
                        return Some("existing tickets may not be rewritten".into());
                    }
                    if t.resolution != old.resolution {
                        if !is_provider {
                            return Some("only the provider resolves tickets".into());
                        }
                        if old.resolution.is_some() {
                            return Some("resolutions are final".into());
                        }
                    }
                }
            }
        }
        None
    }
}

impl B2BObject for OssObject {
    fn get_state(&self) -> Vec<u8> {
        self.config.to_bytes()
    }

    fn apply_state(&mut self, state: &[u8]) {
        if let Some(c) = ServiceConfig::from_bytes(state) {
            self.config = c;
        }
    }

    fn validate_state(&self, proposer: &PartyId, current: &[u8], proposed: &[u8]) -> Decision {
        let (Some(cur), Some(next)) = (
            ServiceConfig::from_bytes(current),
            ServiceConfig::from_bytes(proposed),
        ) else {
            return Decision::reject("undecodable service configuration");
        };
        match self.check(proposer, &cur, &next) {
            None => Decision::accept(),
            Some(reason) => Decision::reject(reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> PartyId {
        PartyId::new("customer")
    }
    fn provider() -> PartyId {
        PartyId::new("telco")
    }
    fn object() -> OssObject {
        OssObject::new(customer(), provider())
    }
    fn validate(
        obj: &OssObject,
        who: &PartyId,
        cur: &ServiceConfig,
        next: &ServiceConfig,
    ) -> Decision {
        obj.validate_state(who, &cur.to_bytes(), &next.to_bytes())
    }

    #[test]
    fn customer_controls_their_aspects() {
        let obj = object();
        let cur = ServiceConfig::new();
        let mut next = cur.clone();
        next.features.insert("call-forwarding".into(), true);
        next.routing_policy = "low-latency".into();
        assert!(validate(&obj, &customer(), &cur, &next).is_accept());
        // The provider touching customer aspects is vetoed.
        assert!(!validate(&obj, &provider(), &cur, &next).is_accept());
    }

    #[test]
    fn provider_controls_their_aspects() {
        let obj = object();
        let cur = ServiceConfig::new();
        let mut next = cur.clone();
        next.capacity = 100;
        next.maintenance_window = "sun 02:00-04:00".into();
        assert!(validate(&obj, &provider(), &cur, &next).is_accept());
        assert!(!validate(&obj, &customer(), &cur, &next).is_accept());
    }

    #[test]
    fn ticket_lifecycle_roles() {
        let obj = object();
        let cur = ServiceConfig::new();
        // Customer opens.
        let mut opened = cur.clone();
        let id = opened.open_ticket("no dial tone");
        assert_eq!(id, 1);
        assert!(validate(&obj, &customer(), &cur, &opened).is_accept());
        // Provider cannot open.
        assert!(!validate(&obj, &provider(), &cur, &opened).is_accept());
        // Provider resolves.
        let mut resolved = opened.clone();
        assert!(resolved.resolve_ticket(1, "line card replaced"));
        assert!(validate(&obj, &provider(), &opened, &resolved).is_accept());
        // Customer cannot resolve.
        assert!(!validate(&obj, &customer(), &opened, &resolved).is_accept());
        // Resolutions are final.
        let mut rewritten = resolved.clone();
        rewritten.tickets[0].resolution = Some("actually not".into());
        assert!(!validate(&obj, &provider(), &resolved, &rewritten).is_accept());
    }

    #[test]
    fn tickets_are_append_only_with_sequential_ids() {
        let obj = object();
        let mut cur = ServiceConfig::new();
        cur.open_ticket("a");
        // Deleting is rejected.
        let empty = ServiceConfig::new();
        assert!(!validate(&obj, &customer(), &cur, &empty).is_accept());
        // Wrong id is rejected.
        let mut bad = cur.clone();
        bad.tickets.push(FaultTicket {
            id: 7,
            description: "b".into(),
            resolution: None,
        });
        assert!(!validate(&obj, &customer(), &cur, &bad).is_accept());
        // Rewriting a description is rejected.
        let mut rewrite = cur.clone();
        rewrite.tickets[0].description = "tampered".into();
        rewrite.open_ticket("b");
        assert!(!validate(&obj, &customer(), &cur, &rewrite).is_accept());
    }

    #[test]
    fn strangers_have_no_role() {
        let obj = object();
        let cur = ServiceConfig::new();
        let mut next = cur.clone();
        next.capacity = 5;
        let d = validate(&obj, &PartyId::new("mallory"), &cur, &next);
        assert!(!d.is_accept());
        assert!(d.reason.unwrap().contains("no role"));
    }

    #[test]
    fn state_roundtrip() {
        let mut obj = object();
        let mut c = ServiceConfig::new();
        c.open_ticket("x");
        c.capacity = 3;
        obj.apply_state(&c.to_bytes());
        assert_eq!(obj.config(), &c);
        assert_eq!(obj.get_state(), c.to_bytes());
    }
}
