//! Decisions, outcomes and coordination events.
//!
//! §4.2: "a decision is accept or reject plus optional diagnostic
//! information" — [`Decision`]. A completed protocol run yields an
//! [`Outcome`]; the coordinator reports progress to the application through
//! [`CoordEvent`]s (the paper's `coordCallback`).

use crate::ids::{ObjectId, RunId, StateId};
use b2b_crypto::{CanonicalEncode, Encoder, PartyId, TimeMs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Accept or reject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The transition (or membership change) is locally valid.
    Accept,
    /// The transition is vetoed.
    Reject,
}

/// A party's decision on the validity of a proposal, with optional
/// diagnostics.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// Accept or reject.
    pub verdict: Verdict,
    /// Optional human-readable diagnostic (carried in evidence).
    pub reason: Option<String>,
}

impl Decision {
    /// An accepting decision.
    pub fn accept() -> Decision {
        Decision {
            verdict: Verdict::Accept,
            reason: None,
        }
    }

    /// A rejecting decision with a diagnostic reason.
    pub fn reject(reason: impl Into<String>) -> Decision {
        Decision {
            verdict: Verdict::Reject,
            reason: Some(reason.into()),
        }
    }

    /// A rejecting decision attributing the fault to one update inside a
    /// batched proposal. The index travels in the signed response's
    /// diagnostic, so the proposer (and any later auditor of the evidence
    /// log) learns *which* update sank the batch, not merely that one did.
    pub fn reject_update(index: usize, reason: impl Into<String>) -> Decision {
        Decision {
            verdict: Verdict::Reject,
            reason: Some(format!("batch[{index}]: {}", reason.into())),
        }
    }

    /// Returns `true` for an accepting decision.
    pub fn is_accept(&self) -> bool {
        self.verdict == Verdict::Accept
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.verdict, &self.reason) {
            (Verdict::Accept, _) => write!(f, "accept"),
            (Verdict::Reject, None) => write!(f, "reject"),
            (Verdict::Reject, Some(r)) => write!(f, "reject: {r}"),
        }
    }
}

impl CanonicalEncode for Decision {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self.verdict {
            Verdict::Accept => 1,
            Verdict::Reject => 0,
        });
        self.reason.encode(enc);
    }
}

/// The final result of a coordination run, as seen by one party.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Unanimously agreed: the new state (or membership) was installed.
    Installed {
        /// Identifier of the newly agreed state.
        state: StateId,
    },
    /// Vetoed: the proposal was invalidated and replicas keep (or roll
    /// back to) the last agreed state.
    Invalidated {
        /// Every rejecting party with its diagnostic.
        vetoers: Vec<(PartyId, String)>,
    },
    /// Aborted on detected inconsistency or misbehaviour before a group
    /// decision could be computed.
    Aborted {
        /// Description of what was detected.
        reason: String,
    },
}

impl Outcome {
    /// Returns `true` if the run installed new state.
    pub fn is_installed(&self) -> bool {
        matches!(self, Outcome::Installed { .. })
    }
}

/// A progress or completion notification delivered to the application
/// (the `coordCallback` upcall of the paper's API, Figure 4).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordEvent {
    /// The object concerned.
    pub object: ObjectId,
    /// The run concerned.
    pub run: RunId,
    /// What happened.
    pub event: CoordEventKind,
    /// Local time of the event.
    pub at: TimeMs,
}

/// The kinds of coordination progress events.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordEventKind {
    /// A proposal was dispatched to the group.
    Proposed,
    /// A response was received (progress information).
    ResponseReceived {
        /// The responding party.
        from: PartyId,
        /// Their verdict.
        verdict: Verdict,
    },
    /// The run completed with the given outcome.
    Completed {
        /// The outcome.
        outcome: Outcome,
    },
    /// Membership changed (a connection/disconnection run completed).
    MembershipChanged {
        /// The new member list in join order.
        members: Vec<PartyId>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_crypto::sha256;

    #[test]
    fn decision_constructors() {
        assert!(Decision::accept().is_accept());
        let d = Decision::reject("not your turn");
        assert!(!d.is_accept());
        assert_eq!(d.to_string(), "reject: not your turn");
        assert_eq!(Decision::accept().to_string(), "accept");
    }

    #[test]
    fn reject_update_carries_batch_index() {
        let d = Decision::reject_update(3, "hash chain mismatch");
        assert!(!d.is_accept());
        assert_eq!(d.to_string(), "reject: batch[3]: hash chain mismatch");
    }

    #[test]
    fn decision_canonical_distinguishes_verdicts() {
        assert_ne!(
            Decision::accept().canonical_bytes(),
            Decision {
                verdict: Verdict::Reject,
                reason: None
            }
            .canonical_bytes()
        );
    }

    #[test]
    fn outcome_is_installed() {
        let st = StateId {
            seq: 1,
            rand_hash: sha256(b"r"),
            state_hash: sha256(b"s"),
        };
        assert!(Outcome::Installed { state: st }.is_installed());
        assert!(!Outcome::Invalidated { vetoers: vec![] }.is_installed());
        assert!(!Outcome::Aborted { reason: "x".into() }.is_installed());
    }
}
