//! The [`B2BObject`] trait — the application-facing half of the paper's
//! API (Figure 4) — plus generic implementations: [`SharedCell`] for typed
//! application state and [`CompositeObject`] for coordinating the states of
//! multiple objects through a single coordination event (§4: "the
//! discussion … applies just as well to the use of a composite object to
//! coordinate the states of multiple objects").

use crate::decision::{CoordEvent, Decision};
use b2b_crypto::PartyId;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

/// The interface a shared application object exposes to the middleware.
///
/// The application programmer implements this for each shared object — by
/// writing a new object, extending an existing one, or wrapping one (§5).
/// State crosses the interface as opaque bytes; the implementation chooses
/// its own encoding (see [`SharedCell`] for a serde-based wrapper).
///
/// # Contract
///
/// * `get_state`/`apply_state` must round-trip: applying a state returned
///   by `get_state` reproduces the same observable object.
/// * `validate_*` must be deterministic functions of their arguments and
///   local policy only — they embody "locally determined, evaluated and
///   enforced policy" (§2).
/// * `apply_update` must be a pure function of `(current, update)` so that
///   every replica computes the identical successor state.
pub trait B2BObject: Send {
    /// Serialises the object's current state.
    fn get_state(&self) -> Vec<u8>;

    /// Installs `state`, replacing the object's current state. Called for
    /// newly validated states, rollbacks and recovery.
    fn apply_state(&mut self, state: &[u8]);

    /// Application-specific validation of a proposed state overwrite
    /// (the `validateState` upcall).
    fn validate_state(&self, proposer: &PartyId, current: &[u8], proposed: &[u8]) -> Decision;

    /// Computes the successor state from `current` and an `update` delta
    /// (§4.3.1). The default treats updates as whole-state replacements.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic string when the update cannot be applied; the
    /// proposal is then rejected with that diagnostic.
    fn apply_update(&self, current: &[u8], update: &[u8]) -> Result<Vec<u8>, String> {
        let _ = current;
        Ok(update.to_vec())
    }

    /// Application-specific validation of a proposed update (the
    /// `validateUpdate` upcall). The default applies the update and
    /// delegates to [`B2BObject::validate_state`].
    fn validate_update(&self, proposer: &PartyId, current: &[u8], update: &[u8]) -> Decision {
        match self.apply_update(current, update) {
            Ok(next) => self.validate_state(proposer, current, &next),
            Err(reason) => Decision::reject(reason),
        }
    }

    /// Validation of a connection request from `subject` (the
    /// `validateConnect` upcall). Default: accept.
    fn validate_connect(&self, subject: &PartyId) -> Decision {
        let _ = subject;
        Decision::accept()
    }

    /// Validation of a disconnection/eviction of `subject` (the
    /// `validateDisconnect` upcall). Default: accept.
    fn validate_disconnect(&self, subject: &PartyId, eviction: bool) -> Decision {
        let _ = (subject, eviction);
        Decision::accept()
    }

    /// Progress/completion notification (the `coordCallback` upcall).
    fn coord_callback(&mut self, event: &CoordEvent) {
        let _ = event;
    }
}

/// A typed shared object: any serde-serialisable value plus validation
/// closures.
///
/// This is the Rust idiom for the paper's observation that "given knowledge
/// of an application object's state access operations, the wrapper methods
/// … could be generated automatically" (§5): `SharedCell` generates the
/// byte-level plumbing, the application supplies typed rules.
///
/// # Example
///
/// ```
/// use b2b_core::{Decision, SharedCell};
/// use b2b_crypto::PartyId;
///
/// // A shared counter that may only grow.
/// let cell = SharedCell::new(0u64)
///     .with_validator(|_who, old: &u64, new: &u64| {
///         if new >= old { Decision::accept() } else { Decision::reject("counter may only grow") }
///     });
/// assert_eq!(*cell.value(), 0);
/// ```
pub struct SharedCell<T> {
    value: T,
    #[allow(clippy::type_complexity)]
    validator: Box<dyn Fn(&PartyId, &T, &T) -> Decision + Send>,
}

impl<T: fmt::Debug> fmt::Debug for SharedCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedCell({:?})", self.value)
    }
}

impl<T> SharedCell<T>
where
    T: Serialize + DeserializeOwned + Send + 'static,
{
    /// Wraps `value` with accept-everything validation.
    pub fn new(value: T) -> SharedCell<T> {
        SharedCell {
            value,
            validator: Box::new(|_, _, _| Decision::accept()),
        }
    }

    /// Sets the typed validation rule applied to proposed transitions:
    /// `(proposer, current, proposed) -> Decision`.
    pub fn with_validator(
        mut self,
        validator: impl Fn(&PartyId, &T, &T) -> Decision + Send + 'static,
    ) -> SharedCell<T> {
        self.validator = Box::new(validator);
        self
    }

    /// The current typed value.
    pub fn value(&self) -> &T {
        &self.value
    }

    fn decode(bytes: &[u8]) -> Result<T, String> {
        serde_json::from_slice(bytes).map_err(|e| format!("undecodable state: {e}"))
    }
}

impl<T> B2BObject for SharedCell<T>
where
    T: Serialize + DeserializeOwned + Send + 'static,
{
    fn get_state(&self) -> Vec<u8> {
        serde_json::to_vec(&self.value).expect("SharedCell state serialises")
    }

    fn apply_state(&mut self, state: &[u8]) {
        if let Ok(v) = Self::decode(state) {
            self.value = v;
        }
    }

    fn validate_state(&self, proposer: &PartyId, current: &[u8], proposed: &[u8]) -> Decision {
        let (cur, next) = match (Self::decode(current), Self::decode(proposed)) {
            (Ok(c), Ok(n)) => (c, n),
            (_, Err(e)) | (Err(e), _) => return Decision::reject(e),
        };
        (self.validator)(proposer, &cur, &next)
    }
}

/// One constituent of a [`CompositeObject`].
struct Component {
    name: String,
    object: Box<dyn B2BObject>,
}

/// Coordinates the states of several objects as one unit: a state change
/// to any component is validated and installed atomically with the others.
///
/// The composite state is the JSON map `{component name → component state
/// bytes}`; validation asks every component to validate its own slice and
/// accepts only if all accept.
pub struct CompositeObject {
    components: Vec<Component>,
}

impl fmt::Debug for CompositeObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.components.iter().map(|c| c.name.as_str()).collect();
        write!(f, "CompositeObject({names:?})")
    }
}

impl CompositeObject {
    /// Creates an empty composite.
    pub fn new() -> CompositeObject {
        CompositeObject {
            components: Vec::new(),
        }
    }

    /// Adds a named component.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used.
    pub fn with_component(
        mut self,
        name: impl Into<String>,
        object: impl B2BObject + 'static,
    ) -> CompositeObject {
        let name = name.into();
        assert!(
            self.components.iter().all(|c| c.name != name),
            "duplicate component name {name}"
        );
        self.components.push(Component {
            name,
            object: Box::new(object),
        });
        self
    }

    /// The names of the components, in insertion order.
    pub fn component_names(&self) -> Vec<&str> {
        self.components.iter().map(|c| c.name.as_str()).collect()
    }

    fn decode_map(bytes: &[u8]) -> Result<std::collections::BTreeMap<String, Vec<u8>>, String> {
        serde_json::from_slice(bytes).map_err(|e| format!("undecodable composite state: {e}"))
    }
}

impl Default for CompositeObject {
    fn default() -> Self {
        CompositeObject::new()
    }
}

impl B2BObject for CompositeObject {
    fn get_state(&self) -> Vec<u8> {
        let map: std::collections::BTreeMap<&str, Vec<u8>> = self
            .components
            .iter()
            .map(|c| (c.name.as_str(), c.object.get_state()))
            .collect();
        serde_json::to_vec(&map).expect("composite state serialises")
    }

    fn apply_state(&mut self, state: &[u8]) {
        if let Ok(map) = Self::decode_map(state) {
            for c in &mut self.components {
                if let Some(bytes) = map.get(&c.name) {
                    c.object.apply_state(bytes);
                }
            }
        }
    }

    /// Updates are JSON maps `{component name → delta bytes}`; each named
    /// component applies its own delta, the rest keep their state. This is
    /// how a composite "rolls up" partial updates into one coordination
    /// event.
    fn apply_update(&self, current: &[u8], update: &[u8]) -> Result<Vec<u8>, String> {
        let mut cur = Self::decode_map(current)?;
        let deltas: std::collections::BTreeMap<String, Vec<u8>> =
            serde_json::from_slice(update).map_err(|e| format!("undecodable update: {e}"))?;
        for (name, delta) in deltas {
            let component = self
                .components
                .iter()
                .find(|c| c.name == name)
                .ok_or_else(|| format!("update names unknown component {name}"))?;
            let empty = Vec::new();
            let slice = cur.get(&name).unwrap_or(&empty);
            let next = component.object.apply_update(slice, &delta)?;
            cur.insert(name, next);
        }
        serde_json::to_vec(&cur).map_err(|e| e.to_string())
    }

    fn validate_state(&self, proposer: &PartyId, current: &[u8], proposed: &[u8]) -> Decision {
        let (cur, next) = match (Self::decode_map(current), Self::decode_map(proposed)) {
            (Ok(c), Ok(n)) => (c, n),
            (_, Err(e)) | (Err(e), _) => return Decision::reject(e),
        };
        if next.len() != self.components.len()
            || !self.components.iter().all(|c| next.contains_key(&c.name))
        {
            return Decision::reject("composite state has wrong component set");
        }
        for c in &self.components {
            let empty = Vec::new();
            let cur_slice = cur.get(&c.name).unwrap_or(&empty);
            let next_slice = &next[&c.name];
            let d = c.object.validate_state(proposer, cur_slice, next_slice);
            if !d.is_accept() {
                return Decision::reject(format!(
                    "component {}: {}",
                    c.name,
                    d.reason.unwrap_or_default()
                ));
            }
        }
        Decision::accept()
    }

    fn coord_callback(&mut self, event: &CoordEvent) {
        for c in &mut self.components {
            c.object.coord_callback(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn who() -> PartyId {
        PartyId::new("p")
    }

    #[test]
    fn shared_cell_roundtrips_state() {
        let mut cell = SharedCell::new(vec![1u32, 2, 3]);
        let bytes = cell.get_state();
        cell.apply_state(&serde_json::to_vec(&vec![9u32]).unwrap());
        assert_eq!(*cell.value(), vec![9]);
        cell.apply_state(&bytes);
        assert_eq!(*cell.value(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_cell_validator_enforces_rule() {
        let cell = SharedCell::new(10u64).with_validator(|_w, old, new| {
            if new > old {
                Decision::accept()
            } else {
                Decision::reject("must increase")
            }
        });
        let cur = cell.get_state();
        let ok = serde_json::to_vec(&11u64).unwrap();
        let bad = serde_json::to_vec(&5u64).unwrap();
        assert!(cell.validate_state(&who(), &cur, &ok).is_accept());
        assert!(!cell.validate_state(&who(), &cur, &bad).is_accept());
    }

    #[test]
    fn shared_cell_rejects_garbage_state() {
        let cell = SharedCell::new(0u64);
        let cur = cell.get_state();
        let d = cell.validate_state(&who(), &cur, b"not json");
        assert!(!d.is_accept());
    }

    #[test]
    fn default_update_is_overwrite() {
        let cell = SharedCell::new(1u64);
        let cur = cell.get_state();
        let upd = serde_json::to_vec(&2u64).unwrap();
        assert_eq!(cell.apply_update(&cur, &upd).unwrap(), upd);
        assert!(cell.validate_update(&who(), &cur, &upd).is_accept());
    }

    #[test]
    fn composite_validates_all_components() {
        let comp = CompositeObject::new()
            .with_component(
                "grower",
                SharedCell::new(0u64).with_validator(|_w, o, n| {
                    if n >= o {
                        Decision::accept()
                    } else {
                        Decision::reject("shrank")
                    }
                }),
            )
            .with_component("free", SharedCell::new(String::new()));
        let cur = comp.get_state();

        let mut next_map = CompositeObject::decode_map(&cur).unwrap();
        next_map.insert("grower".into(), serde_json::to_vec(&5u64).unwrap());
        let good = serde_json::to_vec(&next_map).unwrap();
        assert!(comp.validate_state(&who(), &cur, &good).is_accept());

        next_map.insert("grower".into(), serde_json::to_vec(&0u64).unwrap());
        let _same = serde_json::to_vec(&next_map).unwrap();
        next_map.insert("grower".into(), serde_json::to_vec(&u64::MAX).unwrap());
        // now break it: remove a component
        next_map.remove("free");
        let broken = serde_json::to_vec(&next_map).unwrap();
        assert!(!comp.validate_state(&who(), &cur, &broken).is_accept());
    }

    #[test]
    fn composite_apply_state_routes_slices() {
        let mut comp = CompositeObject::new()
            .with_component("a", SharedCell::new(1u64))
            .with_component("b", SharedCell::new(2u64));
        let mut map = CompositeObject::decode_map(&comp.get_state()).unwrap();
        map.insert("a".into(), serde_json::to_vec(&42u64).unwrap());
        comp.apply_state(&serde_json::to_vec(&map).unwrap());
        let got = CompositeObject::decode_map(&comp.get_state()).unwrap();
        assert_eq!(got["a"], serde_json::to_vec(&42u64).unwrap());
        assert_eq!(got["b"], serde_json::to_vec(&2u64).unwrap());
    }

    #[test]
    fn composite_update_routes_component_deltas() {
        // Components with append-semantics updates: byte-blob appenders.
        struct Appender(Vec<u8>);
        impl B2BObject for Appender {
            fn get_state(&self) -> Vec<u8> {
                self.0.clone()
            }
            fn apply_state(&mut self, s: &[u8]) {
                self.0 = s.to_vec();
            }
            fn validate_state(&self, _w: &PartyId, _c: &[u8], _p: &[u8]) -> Decision {
                Decision::accept()
            }
            fn apply_update(&self, current: &[u8], update: &[u8]) -> Result<Vec<u8>, String> {
                let mut next = current.to_vec();
                next.extend_from_slice(update);
                Ok(next)
            }
        }
        let comp = CompositeObject::new()
            .with_component("a", Appender(vec![1]))
            .with_component("b", Appender(vec![9]));
        let cur = comp.get_state();
        let update: std::collections::BTreeMap<String, Vec<u8>> =
            [("a".to_string(), vec![2, 3])].into_iter().collect();
        let next = comp
            .apply_update(&cur, &serde_json::to_vec(&update).unwrap())
            .unwrap();
        let map = CompositeObject::decode_map(&next).unwrap();
        assert_eq!(map["a"], vec![1, 2, 3], "named component applied its delta");
        assert_eq!(map["b"], vec![9], "unnamed component unchanged");

        // Unknown component names are rejected.
        let bad: std::collections::BTreeMap<String, Vec<u8>> =
            [("zzz".to_string(), vec![0])].into_iter().collect();
        assert!(comp
            .apply_update(&cur, &serde_json::to_vec(&bad).unwrap())
            .is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate component name")]
    fn composite_rejects_duplicate_names() {
        let _ = CompositeObject::new()
            .with_component("a", SharedCell::new(0u64))
            .with_component("a", SharedCell::new(1u64));
    }

    #[test]
    fn composite_rejects_component_veto_with_name_in_reason() {
        let comp = CompositeObject::new().with_component(
            "strict",
            SharedCell::new(0u64).with_validator(|_w, _o, _n| Decision::reject("no")),
        );
        let cur = comp.get_state();
        let mut map = CompositeObject::decode_map(&cur).unwrap();
        map.insert("strict".into(), serde_json::to_vec(&1u64).unwrap());
        let next = serde_json::to_vec(&map).unwrap();
        let d = comp.validate_state(&who(), &cur, &next);
        assert!(!d.is_accept());
        assert!(d.reason.unwrap().contains("strict"));
    }
}
