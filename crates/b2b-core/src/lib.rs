#![warn(missing_docs)]

//! # B2BObjects middleware core
//!
//! The primary contribution of *"Distributed Object Middleware to Support
//! Dependable Information Sharing between Organisations"* (DSN 2002):
//! non-repudiable coordination of the state of object replicas shared
//! between mutually distrusting organisations.
//!
//! * [`Coordinator`] — the per-party protocol engine (`B2BCoordinator`):
//!   state coordination (§4.3), connection/disconnection (§4.5), evidence
//!   logging, checkpointing and crash recovery.
//! * [`B2BObject`] — the trait application objects implement (Figure 4),
//!   with [`SharedCell`] and [`CompositeObject`] as generic
//!   implementations.
//! * [`controller`] — the programmer-facing `B2BObjectController`:
//!   `enter`/`examine`/`overwrite`/`update`/`leave` scoping and the
//!   synchronous, deferred-synchronous and asynchronous modes (§5).
//! * [`dispute`] — the offline arbiter consuming non-repudiation logs.
//!
//! # Quickstart
//!
//! ```
//! use b2b_core::{Coordinator, ObjectId, SharedCell};
//! use b2b_crypto::{KeyPair, KeyRing, PartyId, Signer};
//! use b2b_net::{NodeCtx, SimNet};
//! use b2b_crypto::TimeMs;
//!
//! // One organisation sharing a counter with itself (a singleton group):
//! let kp = KeyPair::generate_from_seed(1);
//! let mut ring = KeyRing::new();
//! ring.register(PartyId::new("org"), kp.public_key());
//! let mut coord = Coordinator::builder(PartyId::new("org"), kp)
//!     .ring(ring)
//!     .seed(7)
//!     .build();
//! coord
//!     .register_object(ObjectId::new("counter"), Box::new(|| Box::new(SharedCell::new(0u64))))
//!     .unwrap();
//!
//! let mut ctx = NodeCtx::new(TimeMs(0));
//! let run = coord
//!     .propose_overwrite(&ObjectId::new("counter"), serde_json::to_vec(&1u64).unwrap(), &mut ctx)
//!     .unwrap();
//! assert!(coord.outcome_of(&run).unwrap().is_installed());
//! # drop(SimNet::<Coordinator>::new(0));
//! ```

pub mod config;
pub mod controller;
pub mod coordinator;
pub mod decision;
pub mod detect;
pub mod dispute;
pub mod error;
pub mod ids;
pub mod messages;
pub mod object;
mod proto_member;
mod proto_state;
pub mod replica;
mod termination;

pub use config::{CoordinatorConfig, DecisionRule, MutationFlags};
pub use controller::{Controller, CoordAccess, CoordTicket, Scope, SimAccess, TicketStatus};
pub use coordinator::{
    ConnectStatus, Coordinator, CoordinatorBuilder, ObjectFactory, TicketId, TicketState,
};
pub use decision::{CoordEvent, CoordEventKind, Decision, Outcome, Verdict};
pub use detect::Misbehaviour;
pub use dispute::{Arbiter, Claim, Ruling};
pub use error::CoordError;
pub use ids::{members_digest, GroupId, ObjectId, RunId, StateId};
pub use object::{B2BObject, CompositeObject, SharedCell};
